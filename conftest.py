"""Repo-level pytest options shared by ``tests/`` and ``benchmarks/``.

Lives at the rootdir so the ``--jobs`` option is defined exactly once no
matter which suite (or combination of suites) a run collects.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the parallel-simulation suites "
             "(0 = one per CPU, 1 = serial)",
    )


@pytest.fixture
def jobs(request):
    """The requested worker count; ``None`` means one per CPU."""
    value = request.config.getoption("--jobs")
    if value < 0:
        raise pytest.UsageError("--jobs must be >= 0")
    return value or None
