"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
fully offline environments (legacy editable installs need no ``wheel``
package or network access to build isolation dependencies).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Pure-Python reproduction of STONNE: cycle-level microarchitectural "
        "simulation for DNN inference accelerators (IISWC 2021)"
    ),
    license="MIT",
    python_requires=">=3.9",
    install_requires=["numpy>=1.20"],
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["stonne=repro.ui.cli:main"]},
)
