"""Fig. 1c: SIGMA-like sparse execution vs the analytical model.

Paper claim: perfect match at 0 % sparsity; divergence grows with the
sparsity ratio (up to ~92 % at 90 %), because the actual distribution of
zeros sets the dynamic cluster sizes.
"""

import numpy as np

from benchmarks.conftest import print_section
from repro.experiments.fig1 import SPARSITY_LEVELS, run_fig1c
from repro.experiments.runner import format_table


def test_fig1c_sigma_sparsity_sweep(run_once):
    rows = run_once(run_fig1c)
    print_section(
        "Fig. 1c — 128-MS SIGMA-like: STONNE vs analytical across sparsity"
    )
    print(format_table(rows))
    print()
    for sparsity in SPARSITY_LEVELS:
        ratios = [r["st_over_am"] for r in rows if r["sparsity"] == sparsity]
        print(f"sparsity={sparsity:.1f}: mean ST/AM = {np.mean(ratios):.2f}, "
              f"max = {np.max(ratios):.2f}")

    dense = np.mean([r["st_over_am"] for r in rows if r["sparsity"] == 0.0])
    sparse = [r["st_over_am"] for r in rows if r["sparsity"] == 0.9]
    assert dense < 1.10
    assert max(sparse) > 1.5
