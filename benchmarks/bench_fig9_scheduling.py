"""Fig. 9: static filter scheduling on a 256-MS SIGMA-like accelerator.

Paper claims: (a) LFF is ~7 % faster than No-Scheduling on average (1-11 %
per model) while Random gains nothing; (b) energy savings are small
(1-6 %); (c) ResNet-50 layers split into low / medium / high LFF
sensitivity groups.
"""

import numpy as np

from benchmarks.conftest import print_section
from repro.experiments.fig9 import run_fig9, run_fig9c
from repro.experiments.runner import format_table


def test_fig9ab_scheduling_policies(run_once):
    rows = run_once(run_fig9)
    print_section("Fig. 9a/9b — normalized runtime & energy per policy")
    print(format_table(rows, [
        "model", "policy", "cycles", "normalized_runtime",
        "normalized_energy", "ms_mapping_utilization",
    ]))
    lff = [r["normalized_runtime"] for r in rows if r["policy"] == "LFF"]
    rdm = [r["normalized_runtime"] for r in rows if r["policy"] == "RDM"]
    print(f"\naverage LFF runtime gain: {1 - np.mean(lff):.1%} (paper: ~7%)")
    print(f"average RDM runtime gain: {1 - np.mean(rdm):.1%} (paper: ~0%)")
    assert np.mean(lff) < 0.97
    assert abs(np.mean(rdm) - 1.0) < 0.03


def test_fig9c_resnet_layer_sensitivity(run_once):
    layers = run_once(run_fig9c)
    print_section("Fig. 9c — per-layer LFF sensitivity, 14 ResNet-50 layers")
    print(format_table(layers, [
        "label", "layer", "ns_cycles", "lff_cycles",
        "normalized_runtime", "normalized_energy",
    ]))
    runtimes = [r["normalized_runtime"] for r in layers]
    assert min(runtimes) < 0.95
    assert max(runtimes) >= 0.999
