"""Ablation: swapping one network building block at a time.

The paper's thesis is that accelerators decompose into interchangeable
DN / MN / RN blocks. These ablations quantify what each block choice
buys, holding everything else constant:

- **Reduction network**: ART (3:1 adders, with accumulators) vs FAN
  (2:1) vs plain RT vs linear accumulators — same fabric, same layer.
- **Distribution network**: Tree vs Benes multicast cost.
- **Multiplier forwarding**: LMN vs DMN on a sliding-window convolution.
"""

from benchmarks.conftest import print_section
from repro.config import ConvLayerSpec, maeri_like
from repro.config.hardware import DistributionKind, MultiplierKind, ReductionKind
from repro.engine.accelerator import Accelerator
from repro.experiments.runner import format_table

LAYER = ConvLayerSpec(r=3, s=3, c=16, k=16, x=18, y=18, name="ablation-conv")


def _run(config):
    acc = Accelerator(config)
    tile = acc.mapper.tile_for_conv(LAYER)
    result = acc.dense_controller.run_conv(LAYER, tile)
    energy = acc.report.config and None
    return acc, result


def test_ablation_reduction_networks(run_once):
    def sweep():
        rows = []
        for kind in (ReductionKind.ART, ReductionKind.FAN, ReductionKind.RT,
                     ReductionKind.LINEAR):
            config = maeri_like(64, 32, reduction=kind,
                                accumulation_buffer=kind is not ReductionKind.RT)
            acc = Accelerator(config)
            tile = acc.mapper.tile_for_conv(LAYER)
            result = acc.dense_controller.run_conv(LAYER, tile)
            from repro.engine.energy import EnergyTable, energy_report

            table = EnergyTable.for_config(config.technology_nm, config.dtype)
            energy = energy_report(acc.rn.counters, table)
            rows.append({
                "reduction": kind.value,
                "cycles": result.cycles,
                "rn_energy_uj": round(energy.by_group_uj.get("RN", 0.0), 4),
                "utilization": round(result.multiplier_utilization, 3),
            })
        return rows

    rows = run_once(sweep)
    print_section("Ablation — reduction network choice (64 MS, bw 32)")
    print(format_table(rows))
    by_kind = {r["reduction"]: r for r in rows}
    # the linear RN serializes cluster accumulation: strictly slower
    assert by_kind["LRN"]["cycles"] > by_kind["ART"]["cycles"]
    # RT's power-of-two restriction never helps (ties are possible when
    # both mappers settle on the same channel-sliced tile)
    assert by_kind["RT"]["cycles"] >= by_kind["ART"]["cycles"] - 2
    # FAN's 2:1 adders are cheaper per reduction than ART's 3:1 switches
    assert by_kind["FAN"]["rn_energy_uj"] < by_kind["ART"]["rn_energy_uj"]


def test_ablation_distribution_networks(run_once):
    def sweep():
        rows = []
        for kind in (DistributionKind.TREE, DistributionKind.BENES):
            config = maeri_like(64, 16, distribution=kind)
            acc = Accelerator(config)
            tile = acc.mapper.tile_for_conv(LAYER)
            result = acc.dense_controller.run_conv(LAYER, tile)
            rows.append({
                "distribution": kind.value,
                "cycles": result.cycles,
                "dn_switch_traversals": acc.dn.counters["dn_switch_traversals"],
            })
        return rows

    rows = run_once(sweep)
    print_section("Ablation — distribution network choice (64 MS, bw 16)")
    print(format_table(rows))
    by_kind = {r["distribution"]: r for r in rows}
    # both are non-blocking multicast fabrics: same timing...
    assert by_kind["TN"]["cycles"] == by_kind["BN"]["cycles"]
    # ...but the Benes pays more switch activity per element
    assert (by_kind["BN"]["dn_switch_traversals"]
            > by_kind["TN"]["dn_switch_traversals"])


def test_ablation_forwarding_links(run_once):
    def sweep():
        # hold a window-style mapping fixed so the ablation isolates the
        # links (sliding-window reuse only exists for spatial tiles)
        from repro.config import TileConfig

        tile = TileConfig(t_r=3, t_s=3, t_c=4)
        rows = []
        for kind in (MultiplierKind.LINEAR, MultiplierKind.DISABLED):
            config = maeri_like(64, 16, multiplier=kind)
            acc = Accelerator(config)
            result = acc.dense_controller.run_conv(LAYER, tile)
            rows.append({
                "multiplier_network": kind.value,
                "cycles": result.cycles,
                "gb_reads": acc.gb.counters["gb_reads"],
            })
        return rows

    rows = run_once(sweep)
    print_section("Ablation — LMN forwarding vs DMN on a sliding-window conv")
    print(format_table(rows))
    lmn, dmn = rows
    # sliding-window reuse cuts both runtime and GB read traffic
    assert lmn["cycles"] <= dmn["cycles"]
    assert lmn["gb_reads"] < dmn["gb_reads"]
