"""Fig. 1a: cycle-level vs analytical model on OS systolic arrays.

Paper claim: for rigid systolic fabrics the two agree almost exactly
across 16x16 / 32x32 / 64x64 PE arrays.
"""

import numpy as np

from benchmarks.conftest import print_section
from repro.experiments.fig1 import run_fig1a
from repro.experiments.runner import format_table


def test_fig1a_systolic_vs_analytical(run_once):
    rows = run_once(run_fig1a)
    print_section("Fig. 1a — OS systolic array: STONNE (ST) vs analytical (AM)")
    print(format_table(rows))
    diffs = [abs(r["diff_pct"]) for r in rows]
    print(f"\naverage |ST-AM| difference: {np.mean(diffs):.2f}% "
          f"(paper: near-identical)")
    assert np.mean(diffs) < 5.0
