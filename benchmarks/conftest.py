"""Benchmark-suite helpers.

Each benchmark regenerates one figure/table of the paper's evaluation,
prints the same rows/series the paper reports, and measures the harness
runtime through pytest-benchmark. Heavy experiments run once per
measurement (``rounds=1``) — the interesting output is the table, not a
microsecond-stable timing of the simulator itself.
"""

import pytest

try:  # pytest-benchmark is optional: fall back to a bare timer fixture
    import pytest_benchmark  # noqa: F401

    _HAVE_BENCHMARK_PLUGIN = True
except ImportError:  # pragma: no cover - depends on the environment
    _HAVE_BENCHMARK_PLUGIN = False


if not _HAVE_BENCHMARK_PLUGIN:

    class _FallbackBenchmark:
        """Runs the function once, without the plugin's statistics."""

        def pedantic(self, func, args=(), kwargs=None, **_ignored):
            return func(*args, **(kwargs or {}))

        def __call__(self, func, *args, **kwargs):
            return func(*args, **kwargs)

    @pytest.fixture
    def benchmark():
        return _FallbackBenchmark()


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return _run


def print_section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
