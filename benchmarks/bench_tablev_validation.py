"""Table V: timing validation against the published RTL cycle counts.

Paper result: errors of 0.14-3.10 % (1.53 % average) against the MAERI
BSV, SIGMA Verilog and SCALE-Sim TPU RTL. Our reproduction's error per
design is documented in EXPERIMENTS.md (TPU exact; SIGMA within ~4 %;
MAERI within ~20 % — the BSV pipeline has details we could not
reverse-engineer from the paper).
"""

import numpy as np

from benchmarks.conftest import print_section
from repro.experiments.runner import format_table
from repro.experiments.tablev import run_tablev


def test_tablev_timing_validation(run_once):
    rows = run_once(run_tablev)
    print_section("Table V — timing accuracy vs RTL implementations")
    print(format_table(rows, [
        "design", "layer", "M", "N", "K",
        "rtl_cycles", "paper_stonne_cycles", "repro_cycles", "error_vs_rtl_pct",
    ]))
    errors = [r["error_vs_rtl_pct"] for r in rows]
    print(f"\naverage error vs RTL: {np.mean(errors):.2f}% "
          f"(paper's own STONNE: 1.53%)")

    tpu_errors = [r["error_vs_rtl_pct"] for r in rows if r["design"] == "TPU"]
    sigma_errors = [r["error_vs_rtl_pct"] for r in rows if r["design"] == "SIGMA"]
    assert all(e == 0.0 for e in tpu_errors)
    assert np.mean(sigma_errors) < 8.0
    assert np.mean(errors) < 12.0
