"""Ablations of the reproduction's extension features.

- **Systolic dataflow**: weight-stationary vs output-stationary tile
  schedules cross over with the GEMM aspect ratio (the TPUv1-vs-SCALE-Sim
  design argument).
- **Dual-sided sparsity**: SIGMA exploiting activation zeros on top of
  weight zeros — the "weights and/or activation sparsity" capability the
  paper's use case 3 references.
"""

import numpy as np

from benchmarks.conftest import print_section
from repro.analytical.sigma_model import uniform_sparse_matrix
from repro.config import sigma_like, tpu_like
from repro.config.hardware import Dataflow
from repro.engine.accelerator import Accelerator
from repro.experiments.runner import format_table


def test_ablation_systolic_dataflow(run_once):
    def sweep():
        rng = np.random.default_rng(0)
        shapes = [
            ("tall-skinny (512x16x16)", 512, 16, 16),
            ("square (64x64x64)", 64, 64, 64),
            ("deep-reduction (16x1024x16)", 16, 1024, 16),
        ]
        rows = []
        for label, m, k, n in shapes:
            a = rng.standard_normal((m, k)).astype(np.float32)
            b = rng.standard_normal((k, n)).astype(np.float32)
            _, os_result = Accelerator(tpu_like(256)).systolic.run_gemm(a, b)
            ws_engine = Accelerator(
                tpu_like(256, dataflow=Dataflow.WEIGHT_STATIONARY)
            ).systolic
            _, ws_result = ws_engine.run_gemm(a, b)
            rows.append({
                "gemm": label,
                "os_cycles": os_result.cycles,
                "ws_cycles": ws_result.cycles,
                "ws_over_os": round(ws_result.cycles / os_result.cycles, 2),
            })
        return rows

    rows = run_once(sweep)
    print_section("Ablation — systolic dataflow (16x16 array)")
    print(format_table(rows))
    by_shape = {r["gemm"]: r for r in rows}
    assert by_shape["tall-skinny (512x16x16)"]["ws_over_os"] < 1.0
    assert by_shape["deep-reduction (16x1024x16)"]["ws_over_os"] > 1.0


def test_ablation_dual_sided_sparsity(run_once):
    def sweep():
        stationary = uniform_sparse_matrix(64, 128, 0.8, seed=1)
        rows = []
        for label, act_sparsity in (("dense activations", 0.0),
                                    ("50% activation zeros", 0.5),
                                    ("80% activation zeros", 0.8)):
            streaming = uniform_sparse_matrix(128, 64, act_sparsity, seed=2)
            acc = Accelerator(sigma_like(num_ms=128, bandwidth=32))
            result = acc.sparse_controller.run_spmm(
                stationary, 64, streaming=streaming
            )
            rows.append({
                "activations": label,
                "cycles": result.cycles,
                "effective_macs": result.effective_macs,
                "ops_saved_vs_dense_gemm": f"{result.ops_saved_fraction:.0%}",
            })
        return rows

    rows = run_once(sweep)
    print_section("Ablation — SIGMA dual-sided sparsity (128 MS, bw 32)")
    print(format_table(rows))
    cycles = [r["cycles"] for r in rows]
    macs = [r["effective_macs"] for r in rows]
    assert cycles[0] >= cycles[1] >= cycles[2]
    assert macs[0] > macs[1] > macs[2]
