"""Ablation: mapping choices (tiles, dataflow ordering, scheduling seeds).

Quantifies the design decisions the dense controller and mapper make:

- the mRNA-style bandwidth-aware tile search vs the naive
  biggest-cluster tile;
- phase (weight-stationary with psum round trips) vs fold-inner
  (accumulator-resident psums) loop ordering on a folding layer;
- sensitivity of the Fig. 9 scheduling result to the RDM seed.
"""

import numpy as np

from benchmarks.conftest import print_section
from repro.config import ConvLayerSpec, TileConfig, maeri_like, sigma_like
from repro.engine.accelerator import Accelerator
from repro.experiments.runner import format_table
from repro.opts.scheduling import random_rounds

FOLDING_LAYER = ConvLayerSpec(r=3, s=3, c=64, k=32, x=10, y=10, name="folding-conv")


def test_ablation_tile_search(run_once):
    def sweep():
        rows = []
        for bw in (64, 16):
            acc = Accelerator(maeri_like(64, bw))
            auto_tile = acc.mapper.tile_for_conv(FOLDING_LAYER)
            auto = acc.dense_controller.run_conv(FOLDING_LAYER, auto_tile)
            # the naive choice: one biggest-possible cluster
            naive_tile = TileConfig(t_r=3, t_s=3, t_c=4)
            acc2 = Accelerator(maeri_like(64, bw))
            naive = acc2.dense_controller.run_conv(FOLDING_LAYER, naive_tile)
            rows.append({
                "bandwidth": bw,
                "auto_tile": f"cs={auto_tile.cluster_size} nc={auto_tile.num_clusters}",
                "auto_cycles": auto.cycles,
                "naive_cycles": naive.cycles,
                "speedup": round(naive.cycles / auto.cycles, 2),
            })
        return rows

    rows = run_once(sweep)
    print_section("Ablation — bandwidth-aware tile search vs naive tile")
    print(format_table(rows))
    assert all(r["auto_cycles"] <= r["naive_cycles"] for r in rows)


def test_ablation_fold_ordering(run_once):
    """Fold-inner ordering with accumulators vs forced psum round trips."""
    from repro.config.hardware import ReductionKind

    def sweep():
        with_acc = Accelerator(maeri_like(64, 16))
        tile = with_acc.mapper.tile_for_conv(FOLDING_LAYER)
        fold_inner = with_acc.dense_controller.run_conv(FOLDING_LAYER, tile)
        no_acc = Accelerator(
            maeri_like(64, 16, reduction=ReductionKind.RT,
                       accumulation_buffer=False)
        )
        tile2 = TileConfig(t_r=1, t_s=1, t_c=16, t_k=4)  # RT needs 2^n clusters
        roundtrip = no_acc.dense_controller.run_conv(FOLDING_LAYER, tile2)
        return [
            {"ordering": "fold-inner + accumulators",
             "cycles": fold_inner.cycles,
             "psum_spills": with_acc.mn.counters.get("mn_psum_injections")},
            {"ordering": "phase order + GB round trips",
             "cycles": roundtrip.cycles,
             "psum_spills": no_acc.mn.counters.get("mn_psum_injections")},
        ]

    rows = run_once(sweep)
    print_section("Ablation — fold psum handling on a folding layer")
    print(format_table(rows))
    # without accumulators every fold spills; with them the controller is
    # free to pick the cheaper ordering and never runs slower
    assert rows[1]["psum_spills"] > 0
    assert rows[0]["cycles"] <= rows[1]["cycles"]


def test_ablation_rdm_seed_sensitivity(run_once):
    """Fig. 9's RDM conclusion is seed-independent: random order never
    approaches LFF because packing quality needs size ordering."""
    from repro.opts.scheduling import largest_filter_first_rounds

    def sweep():
        rng = np.random.default_rng(0)
        sizes = rng.integers(2, 96, size=64)
        lff_rounds = len(largest_filter_first_rounds(sizes, 256))
        rows = []
        for seed in range(5):
            rdm_rounds = len(random_rounds(sizes, 256, seed=seed))
            rows.append({
                "seed": seed,
                "rdm_rounds": rdm_rounds,
                "lff_rounds": lff_rounds,
            })
        return rows

    rows = run_once(sweep)
    print_section("Ablation — RDM seed sensitivity vs LFF (round counts)")
    print(format_table(rows))
    assert all(r["rdm_rounds"] >= r["lff_rounds"] for r in rows)
