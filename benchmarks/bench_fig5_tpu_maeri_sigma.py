"""Fig. 5: full-model comparison of TPU-, MAERI- and SIGMA-like designs.

Paper claims: (a) MAERI ~20 % faster than the TPU on average (max on
MobileNets), SIGMA ~91 % faster than MAERI via sparsity; (b) the reduction
network dominates energy (84 / 58 / 43 % for TPU / MAERI / SIGMA) and
SIGMA is the most energy-efficient; (c) the GB SRAM dominates area
(70-82 %) and the TPU-like fabric is the smallest.
"""

import numpy as np

from benchmarks.conftest import print_section
from repro.experiments.fig5 import run_fig5, run_fig5c, summarize_speedups
from repro.experiments.runner import ascii_bar_chart, format_table


def test_fig5a_cycles(run_once):
    rows = run_once(run_fig5)
    print_section("Fig. 5a — full-model cycles per (model, architecture)")
    print(format_table(rows, ["model", "arch", "cycles"]))
    print()
    print(ascii_bar_chart(
        [f"{r['model']}/{r['arch']}" for r in rows],
        [r["cycles"] for r in rows],
        unit=" cycles",
    ))
    summary = summarize_speedups(rows)
    print(f"\nMAERI speedup over TPU: avg {summary['avg_maeri_speedup_over_tpu']:.2f}x"
          f" (max {summary['max_maeri_speedup_over_tpu']:.2f}x,"
          f" min {summary['min_maeri_speedup_over_tpu']:.2f}x)")
    print(f"SIGMA speedup over MAERI: avg {summary['avg_sigma_speedup_over_maeri']:.2f}x")
    assert summary["min_maeri_speedup_over_tpu"] > 1.0
    assert summary["avg_sigma_speedup_over_maeri"] > 1.5

    print_section("Fig. 5b — energy breakdown (uJ) per (model, architecture)")
    print(format_table(rows, [
        "model", "arch", "energy_gb_uj", "energy_dn_uj", "energy_mn_uj",
        "energy_rn_uj", "energy_total_uj",
    ]))
    for arch in ("tpu", "maeri", "sigma"):
        share = np.mean([r["energy_rn_share"] for r in rows if r["arch"] == arch])
        print(f"{arch}: average RN energy share = {share:.0%}")


def test_fig5c_area(run_once):
    rows = run_once(run_fig5c)
    print_section("Fig. 5c — area estimations (um^2)")
    print(format_table(rows, [
        "arch", "area_gb_um2", "area_dn_um2", "area_mn_um2", "area_rn_um2",
        "total_um2", "area_gb_share",
    ]))
    by_arch = {r["arch"]: r for r in rows}
    assert by_arch["tpu"]["total_um2"] < by_arch["sigma"]["total_um2"]
    assert by_arch["sigma"]["total_um2"] < by_arch["maeri"]["total_um2"]
