"""Analysis benches: the "why" behind Fig. 5, quantified.

Layer-kind cycle breakdown per architecture and average multiplier
utilization — the mechanisms (stranded PEs on rigid fabrics, factorized
convolutions) the paper's prose uses to explain its headline results.
"""

from benchmarks.conftest import print_section
from repro.experiments.analysis import (
    dominant_kind,
    run_layer_kind_breakdown,
    utilization_by_architecture,
)
from repro.experiments.runner import format_table

MODELS = ("mobilenets", "resnet50", "vgg16", "bert")


def test_layer_kind_breakdown(run_once):
    rows = run_once(run_layer_kind_breakdown, models=MODELS)
    print_section("Analysis — cycle share per (architecture, layer kind)")
    print(format_table(rows))
    for arch in ("tpu", "maeri", "sigma"):
        print(f"{arch}: dominant layer kind = {dominant_kind(rows, arch)}")
    # depthwise (factorized) convolutions weigh heavier on the rigid fabric
    def depthwise_share(arch):
        hits = [r["share"] for r in rows
                if r["arch"] == arch and r["layer_kind"] == "depthwise-conv"]
        return hits[0] if hits else 0.0

    assert depthwise_share("tpu") > depthwise_share("maeri")


def test_multiplier_utilization(run_once):
    rows = run_once(utilization_by_architecture, models=MODELS)
    print_section("Analysis — average multiplier utilization per architecture")
    print(format_table(rows))
    by_arch = {r["arch"]: r["avg_multiplier_utilization"] for r in rows}
    assert by_arch["maeri"] > by_arch["tpu"]
