"""Fig. 7: sparse filter statistics on a 256-MS flexible fabric.

Paper claims: (a) several entire filters map simultaneously for most
models, with AlexNet and BERT mapping the fewest (their filters are the
largest); (b) effective filter sizes vary widely within a layer — the
variability LFF scheduling exploits.
"""

import numpy as np

from benchmarks.conftest import print_section
from repro.experiments.fig7 import run_fig7a, run_fig7b
from repro.experiments.runner import format_table


def test_fig7a_filters_mappable(run_once):
    rows = run_once(run_fig7a)
    print_section("Fig. 7a — avg entire filters mappable on a 256-MS fabric")
    print(format_table(rows))
    by_model = {r["model"]: r["avg_filters_mappable"] for r in rows}
    ranked = sorted(by_model, key=by_model.get)
    assert set(ranked[:2]) == {"alexnet", "bert"}


def test_fig7b_filter_size_variability(run_once):
    sizes = run_once(run_fig7b)
    print_section("Fig. 7b — effective filter sizes, first layer of each model")
    rows = []
    for model, values in sizes.items():
        rows.append({
            "model": model,
            "filters": len(values),
            "min_size": int(np.min(values)),
            "mean_size": round(float(np.mean(values)), 1),
            "max_size": int(np.max(values)),
        })
    print(format_table(rows))
    for model, values in sizes.items():
        assert max(values) > min(values), model
