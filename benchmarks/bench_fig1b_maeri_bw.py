"""Fig. 1b: MAERI-like fabric under bandwidth pressure.

Paper claim: the analytical model matches at full bandwidth (1.03 % avg
difference) and underestimates by up to ~400 % at 32 elements/cycle.
"""

import numpy as np

from benchmarks.conftest import print_section
from repro.experiments.fig1 import MAERI_BANDWIDTHS, run_fig1b
from repro.experiments.runner import format_table


def test_fig1b_maeri_bandwidth_sweep(run_once):
    rows = run_once(run_fig1b)
    print_section(
        "Fig. 1b — 128-MS MAERI-like: STONNE vs analytical across GB bandwidth"
    )
    print(format_table(rows))
    print()
    for bw in MAERI_BANDWIDTHS:
        ratios = [r["st_over_am"] for r in rows if r["bandwidth"] == bw]
        print(f"bw={bw:3d}: mean ST/AM = {np.mean(ratios):.2f}, "
              f"max = {np.max(ratios):.2f}")

    full = np.mean([r["st_over_am"] for r in rows if r["bandwidth"] == 128])
    starved = [r["st_over_am"] for r in rows if r["bandwidth"] == 32]
    assert full < 1.10
    assert max(starved) > 2.0  # paper: up to ~4x on M-FC
