"""Fig. 6: SNAPEA vs its baseline on the four CNN models.

Paper claims: ~35 % average speedup (6a), ~21 % energy saving (6b), ~30 %
fewer operations (6c) and ~16 % fewer memory accesses (6d), with
SqueezeNet among the most improved models.
"""

import numpy as np

from benchmarks.conftest import print_section
from repro.experiments.fig6 import run_fig6
from repro.experiments.runner import format_table


def test_fig6_snapea(run_once):
    rows = run_once(run_fig6, num_images=4)
    print_section("Fig. 6a/6b — SNAPEA speedup and normalized energy")
    print(format_table(rows, ["model", "speedup", "normalized_energy"]))
    print_section("Fig. 6c — computed operations")
    print(format_table(rows, [
        "model", "baseline_ops", "snapea_ops", "ops_reduction",
    ]))
    print_section("Fig. 6d — memory accesses")
    print(format_table(rows, [
        "model", "baseline_mem", "snapea_mem", "mem_reduction",
    ]))
    print(f"\naverage speedup: {np.mean([r['speedup'] for r in rows]):.2f}x "
          f"(paper: ~1.35x)")
    print(f"average ops cut: {np.mean([r['ops_reduction'] for r in rows]):.1%} "
          f"(paper: ~30%)")

    assert all(r["speedup"] > 1.0 for r in rows)
    assert all(r["normalized_energy"] < 1.0 for r in rows)
    assert all(r["ops_reduction"] > 0 for r in rows)
    assert all(r["mem_reduction"] > 0 for r in rows)
