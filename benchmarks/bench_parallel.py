"""Wall-clock benchmark of parallel + cached whole-model simulation.

Sweeps every Table I model across timing-heavy dense hardware points
three ways:

1. **serial** — the classic layer-by-layer :func:`simulate` path;
2. **parallel cold** — :class:`~repro.parallel.ParallelModelRunner` with
   4 workers and an empty on-disk :class:`~repro.parallel.SimCache`
   (repeated shapes within the sweep are deduplicated and memoized);
3. **parallel warm** — the same sweep again against the now-populated
   disk cache, so only the functional pass and cache lookups remain.

4. **serial vector** — the serial sweep again with
   ``engine_mode=vector``, so the closed-form kernels of
   :mod:`repro.engine.vector` are timed against the cycle-stepped
   reference they replace (ROADMAP item 1).

Total cycles must be byte-identical across all four paths — the
benchmark asserts it — and the headline numbers are the warm-over-serial
and vector-over-serial speedups, recorded in ``BENCH_parallel.json`` at
the repo root. The vector speedup is Amdahl-bound by the functional
forward pass both engines share, so it is reported per hardware point:
timing-heavy cells (``tpu16``) show the kernel wins; timing-light cells
(``maeri256``) are frontend-dominated and sit near 1x.

``--jobs`` is clamped to the host's CPU count: worker processes beyond
the core count only add scheduling overhead, and a record produced that
way would attribute the slowdown to the parallel runner. A clamped run
is annotated with ``jobs_requested``/``oversubscribed``.

Beyond the aggregate totals the record carries:

- ``samples`` — per-(model, hardware) wall-clock seconds for every
  sweep, so a regression in a single cell is visible instead of being
  averaged away;
- ``stage_seconds`` / ``telemetry_overhead_pct`` — the warm sweep
  re-runs best-of-3 with host telemetry off and then on: the
  record/simulate/merge wall-clock breakdown and telemetry's own cost
  (asserted <5%, on best-of-3 so scheduler noise cancels);
- ``hotspots`` — a sampled squeezenet/tpu16 profile whose top component
  feeds ROADMAP item 1 (vectorize the cycle-level hot paths).

Standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--jobs N] [--out PATH]
"""

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from repro.config import EngineMode, maeri_like, tpu_like
from repro.engine.accelerator import Accelerator
from repro.frontend.models import build_model, model_input
from repro.frontend.simulated import detach_context, simulate, simulate_parallel
from repro.parallel import SimCache

MODELS = (
    "mobilenets", "squeezenet", "alexnet", "resnet50", "vgg16",
    "ssd-mobilenets", "bert",
)

DEFAULT_JOBS = 4


def hardware_points():
    """Dense (cacheable) configurations, biased toward timing-heavy ones."""
    return (
        ("tpu16", tpu_like(num_pes=16)),
        ("tpu256", tpu_like(num_pes=256)),
        ("maeri64", maeri_like(num_ms=64, bandwidth=32)),
        ("maeri256", maeri_like(num_ms=256, bandwidth=128)),
    )


def _model_run(name):
    model = build_model(name, seed=0)
    x = model_input(name, batch=1, seed=1)
    return model, x


def _serial_sweep(points, engine_mode=EngineMode.CYCLE):
    cycles = {}
    samples = {}
    start = time.perf_counter()
    for model_name in MODELS:
        model, x = _model_run(model_name)
        for hw_name, config in points:
            cell_start = time.perf_counter()
            acc = Accelerator(config.with_updates(engine_mode=engine_mode))
            simulate(model, acc)
            model(x)
            detach_context(model)
            cycles[(model_name, hw_name)] = acc.report.total_cycles
            samples[f"{model_name}/{hw_name}"] = round(
                time.perf_counter() - cell_start, 4
            )
    return time.perf_counter() - start, cycles, samples


def _parallel_sweep(points, jobs, cache_dir):
    cycles = {}
    samples = {}
    stats = {"simulated": 0, "cache_hits": 0, "deduplicated": 0, "fallbacks": 0}
    cache = SimCache(cache_dir)
    start = time.perf_counter()
    for model_name in MODELS:
        model, x = _model_run(model_name)
        for hw_name, config in points:
            cell_start = time.perf_counter()
            # pin the cycle-stepped engine so speedup_cold/speedup_warm
            # keep measuring the parallel runner and the cache, not the
            # vector kernels (those get their own sweep)
            acc = Accelerator(
                config.with_updates(engine_mode=EngineMode.CYCLE)
            )
            result = simulate_parallel(model, acc, x, jobs=jobs, cache=cache)
            cycles[(model_name, hw_name)] = acc.report.total_cycles
            samples[f"{model_name}/{hw_name}"] = round(
                time.perf_counter() - cell_start, 4
            )
            stats["simulated"] += result.simulated
            stats["cache_hits"] += result.cache_hits
            stats["deduplicated"] += result.deduplicated
            stats["fallbacks"] += result.fallbacks
    return time.perf_counter() - start, cycles, samples, stats


def _profile_hotspots(engine_mode=EngineMode.CYCLE, repeat=5, interval_s=0.001):
    """Sampled squeezenet/tpu16 profile: where host wall-clock goes."""
    from repro.observability.telemetry import profile_call

    model, x = _model_run("squeezenet")
    config = tpu_like(num_pes=16).with_updates(engine_mode=engine_mode)

    def _run():
        for _ in range(repeat):
            acc = Accelerator(config)
            simulate(model, acc)
            model(x)
            detach_context(model)

    _, report = profile_call(_run, interval_s=interval_s)
    return {
        "model": "squeezenet",
        "hardware": "tpu16",
        "engine_mode": engine_mode.value,
        "samples": report.samples,
        "attributed_fraction": round(report.attributed_fraction(), 4),
        "top_component": report.top_component(),
        "shares": {k: round(v, 4) for k, v in report.shares().items()},
    }


def _vector_speedup_by_hardware(points, serial_samples, vector_samples):
    """Per-hardware-point serial/vector wall-clock ratio (all models)."""
    speedups = {}
    for hw_name, _ in points:
        ref = sum(
            s for cell, s in serial_samples.items()
            if cell.endswith(f"/{hw_name}")
        )
        vec = sum(
            s for cell, s in vector_samples.items()
            if cell.endswith(f"/{hw_name}")
        )
        speedups[hw_name] = round(ref / vec, 3) if vec else 0.0
    return speedups


def run_benchmark(jobs=DEFAULT_JOBS, out_path=None, cache_dir=None):
    """Run the four-way sweep; returns (and optionally writes) the record."""
    points = hardware_points()
    jobs_requested = jobs
    # oversubscribing a small host only measures scheduler thrash; clamp
    # and annotate instead of publishing a misattributed slowdown
    jobs = max(1, min(jobs, os.cpu_count() or 1))
    owned_tmp = None
    if cache_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="stonne-simcache-")
        cache_dir = owned_tmp.name
    from repro.observability.telemetry import enable_telemetry

    try:
        # best-of-2 per cell: the serial/vector ratio gates CI, so one
        # scheduler hiccup in a sub-second cell must not decide it
        serial_s, serial_cycles, serial_samples = _serial_sweep(points)
        _, rerun_cycles, rerun_samples = _serial_sweep(points)
        assert rerun_cycles == serial_cycles
        serial_samples = {
            cell: min(s, rerun_samples[cell])
            for cell, s in serial_samples.items()
        }
        vector_s, vector_cycles, vector_samples = _serial_sweep(
            points, engine_mode=EngineMode.VECTOR
        )
        _, rerun_cycles, rerun_samples = _serial_sweep(
            points, engine_mode=EngineMode.VECTOR
        )
        assert rerun_cycles == vector_cycles
        vector_samples = {
            cell: min(s, rerun_samples[cell])
            for cell, s in vector_samples.items()
        }
        cold_s, cold_cycles, cold_samples, cold_stats = _parallel_sweep(
            points, jobs, cache_dir
        )
        warm_s, warm_cycles, warm_samples, warm_stats = _parallel_sweep(
            points, jobs, cache_dir
        )
        # Telemetry overhead: the warm sweep again, telemetry off vs on,
        # best-of-3 each so scheduler noise on a sub-second sweep does
        # not swamp the comparison. The headline parallel_warm_s stays
        # the first telemetry-off run above.
        warm_off_best = warm_s
        for _ in range(2):
            rerun_s, rerun_cycles, _, _ = _parallel_sweep(
                points, jobs, cache_dir
            )
            assert rerun_cycles == warm_cycles
            warm_off_best = min(warm_off_best, rerun_s)
        registry = enable_telemetry(True)
        try:
            warm_tel_best = None
            for _ in range(3):
                registry.reset()  # stage_seconds reflects one sweep
                warm_tel_s, warm_tel_cycles, _, _ = _parallel_sweep(
                    points, jobs, cache_dir
                )
                warm_tel_best = (
                    warm_tel_s if warm_tel_best is None
                    else min(warm_tel_best, warm_tel_s)
                )
            stage_hist = registry.get("stonne_stage_seconds")
            stage_seconds = {
                stage: round(stage_hist.sum(stage=stage), 4)
                for stage in ("record", "simulate", "merge")
            } if stage_hist is not None else {}
        finally:
            enable_telemetry(False)
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()

    hotspots = _profile_hotspots()
    hotspots_vector = _profile_hotspots(engine_mode=EngineMode.VECTOR)
    identical = (
        serial_cycles == vector_cycles == cold_cycles == warm_cycles
        == warm_tel_cycles
    )
    overhead_pct = (warm_tel_best - warm_off_best) / warm_off_best * 100.0
    record = {
        "benchmark": "parallel+cached whole-model simulation",
        "jobs": jobs,
        "jobs_requested": jobs_requested,
        "oversubscribed": jobs_requested > jobs,
        "cpu_count": os.cpu_count(),
        "models": list(MODELS),
        "hardware": [name for name, _ in points],
        "runs": len(MODELS) * len(points),
        "serial_s": round(serial_s, 4),
        "serial_vector_s": round(vector_s, 4),
        "parallel_cold_s": round(cold_s, 4),
        "parallel_warm_s": round(warm_s, 4),
        "parallel_warm_telemetry_s": round(warm_tel_best, 4),
        "telemetry_overhead_pct": round(overhead_pct, 2),
        "speedup_cold": round(serial_s / cold_s, 3),
        "speedup_warm": round(serial_s / warm_s, 3),
        "speedup_vector": round(serial_s / vector_s, 3),
        "speedup_vector_by_hardware": _vector_speedup_by_hardware(
            points, serial_samples, vector_samples
        ),
        "samples": {
            "serial": serial_samples,
            "serial_vector": vector_samples,
            "parallel_cold": cold_samples,
            "parallel_warm": warm_samples,
        },
        "stage_seconds": stage_seconds,
        "hotspots": hotspots,
        "hotspots_vector": hotspots_vector,
        "cold_stats": cold_stats,
        "warm_stats": warm_stats,
        "cycles_identical": identical,
    }
    if out_path is not None:
        Path(out_path).write_text(
            json.dumps(record, indent=2) + "\n", encoding="utf-8"
        )
    return record


def test_parallel_benchmark_speedup(jobs, tmp_path):
    """Cycles identical across paths; the warm cache beats serial >= 2x."""
    record = run_benchmark(
        jobs=jobs or DEFAULT_JOBS, cache_dir=str(tmp_path / "simcache")
    )
    print(json.dumps(record, indent=2))
    assert record["cycles_identical"]
    assert record["cold_stats"]["fallbacks"] == 0
    assert record["warm_stats"]["cache_hits"] > 0
    assert record["speedup_warm"] >= 2.0
    assert record["jobs"] <= (os.cpu_count() or 1)
    # the vector engine must clearly beat the stepped reference where
    # timing dominates the cell (tpu16 = many small tiles); the sweep
    # total is Amdahl-bound by the shared functional forward pass
    assert record["speedup_vector_by_hardware"]["tpu16"] >= 5.0
    assert record["speedup_vector"] > 1.0
    # every sweep carries one wall-clock sample per (model, hardware) cell
    for sweep in ("serial", "serial_vector", "parallel_cold", "parallel_warm"):
        assert len(record["samples"][sweep]) == record["runs"]
    assert record["telemetry_overhead_pct"] < 5.0
    for profile in ("hotspots", "hotspots_vector"):
        assert record[profile]["top_component"] is not None
        assert record[profile]["attributed_fraction"] >= 0.95


def _register_bench(record):
    """Append the bench record to the run registry; returns the run id.

    Only the standalone entry point registers (the pytest path must not
    touch any registry). The run id lands inside the JSON record so the
    committed numbers stay traceable to their full registry entry.
    """
    from repro.observability.registry import RunRegistry, registry_enabled

    if not registry_enabled(default=True):
        return None
    try:
        with RunRegistry() as registry:
            return registry.record_payload(
                "bench:parallel", dict(record), source="bench",
                wall_clock_s=record["serial_s"] + record["parallel_cold_s"]
                + record["parallel_warm_s"],
            )
    except OSError as exc:
        print(f"warning: bench run not registered: {exc}")
        return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_parallel.json"),
        help="where to write the benchmark record",
    )
    args = parser.parse_args(argv)
    record = run_benchmark(jobs=args.jobs)
    run_id = _register_bench(record)
    if run_id is not None:
        record["registry_run_id"] = run_id
    Path(args.out).write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(record, indent=2))
    print(f"\nwritten to {args.out}")
    return 0 if record["cycles_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
