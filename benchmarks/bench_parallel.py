"""Wall-clock benchmark of parallel + cached whole-model simulation.

Sweeps every Table I model across timing-heavy dense hardware points
three ways:

1. **serial** — the classic layer-by-layer :func:`simulate` path;
2. **parallel cold** — :class:`~repro.parallel.ParallelModelRunner` with
   4 workers and an empty on-disk :class:`~repro.parallel.SimCache`
   (repeated shapes within the sweep are deduplicated and memoized);
3. **parallel warm** — the same sweep again against the now-populated
   disk cache, so only the functional pass and cache lookups remain.

Total cycles must be byte-identical across all three paths — the
benchmark asserts it — and the headline number is the warm-over-serial
speedup, recorded in ``BENCH_parallel.json`` at the repo root.

Standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--jobs N] [--out PATH]
"""

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from repro.config import maeri_like, tpu_like
from repro.engine.accelerator import Accelerator
from repro.frontend.models import build_model, model_input
from repro.frontend.simulated import detach_context, simulate, simulate_parallel
from repro.parallel import SimCache

MODELS = (
    "mobilenets", "squeezenet", "alexnet", "resnet50", "vgg16",
    "ssd-mobilenets", "bert",
)

DEFAULT_JOBS = 4


def hardware_points():
    """Dense (cacheable) configurations, biased toward timing-heavy ones."""
    return (
        ("tpu16", tpu_like(num_pes=16)),
        ("tpu256", tpu_like(num_pes=256)),
        ("maeri64", maeri_like(num_ms=64, bandwidth=32)),
        ("maeri256", maeri_like(num_ms=256, bandwidth=128)),
    )


def _model_run(name):
    model = build_model(name, seed=0)
    x = model_input(name, batch=1, seed=1)
    return model, x


def _serial_sweep(points):
    cycles = {}
    start = time.perf_counter()
    for model_name in MODELS:
        model, x = _model_run(model_name)
        for hw_name, config in points:
            acc = Accelerator(config)
            simulate(model, acc)
            model(x)
            detach_context(model)
            cycles[(model_name, hw_name)] = acc.report.total_cycles
    return time.perf_counter() - start, cycles


def _parallel_sweep(points, jobs, cache_dir):
    cycles = {}
    stats = {"simulated": 0, "cache_hits": 0, "deduplicated": 0, "fallbacks": 0}
    cache = SimCache(cache_dir)
    start = time.perf_counter()
    for model_name in MODELS:
        model, x = _model_run(model_name)
        for hw_name, config in points:
            acc = Accelerator(config)
            result = simulate_parallel(model, acc, x, jobs=jobs, cache=cache)
            cycles[(model_name, hw_name)] = acc.report.total_cycles
            stats["simulated"] += result.simulated
            stats["cache_hits"] += result.cache_hits
            stats["deduplicated"] += result.deduplicated
            stats["fallbacks"] += result.fallbacks
    return time.perf_counter() - start, cycles, stats


def run_benchmark(jobs=DEFAULT_JOBS, out_path=None, cache_dir=None):
    """Run the three-way sweep; returns (and optionally writes) the record."""
    points = hardware_points()
    owned_tmp = None
    if cache_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="stonne-simcache-")
        cache_dir = owned_tmp.name
    try:
        serial_s, serial_cycles = _serial_sweep(points)
        cold_s, cold_cycles, cold_stats = _parallel_sweep(
            points, jobs, cache_dir
        )
        warm_s, warm_cycles, warm_stats = _parallel_sweep(
            points, jobs, cache_dir
        )
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()

    identical = serial_cycles == cold_cycles == warm_cycles
    record = {
        "benchmark": "parallel+cached whole-model simulation",
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "models": list(MODELS),
        "hardware": [name for name, _ in points],
        "runs": len(MODELS) * len(points),
        "serial_s": round(serial_s, 4),
        "parallel_cold_s": round(cold_s, 4),
        "parallel_warm_s": round(warm_s, 4),
        "speedup_cold": round(serial_s / cold_s, 3),
        "speedup_warm": round(serial_s / warm_s, 3),
        "cold_stats": cold_stats,
        "warm_stats": warm_stats,
        "cycles_identical": identical,
    }
    if out_path is not None:
        Path(out_path).write_text(
            json.dumps(record, indent=2) + "\n", encoding="utf-8"
        )
    return record


def test_parallel_benchmark_speedup(jobs, tmp_path):
    """Cycles identical across paths; the warm cache beats serial >= 2x."""
    record = run_benchmark(
        jobs=jobs or DEFAULT_JOBS, cache_dir=str(tmp_path / "simcache")
    )
    print(json.dumps(record, indent=2))
    assert record["cycles_identical"]
    assert record["cold_stats"]["fallbacks"] == 0
    assert record["warm_stats"]["cache_hits"] > 0
    assert record["speedup_warm"] >= 2.0


def _register_bench(record):
    """Append the bench record to the run registry; returns the run id.

    Only the standalone entry point registers (the pytest path must not
    touch any registry). The run id lands inside the JSON record so the
    committed numbers stay traceable to their full registry entry.
    """
    from repro.observability.registry import RunRegistry, registry_enabled

    if not registry_enabled(default=True):
        return None
    try:
        with RunRegistry() as registry:
            return registry.record_payload(
                "bench:parallel", dict(record), source="bench",
                wall_clock_s=record["serial_s"] + record["parallel_cold_s"]
                + record["parallel_warm_s"],
            )
    except OSError as exc:
        print(f"warning: bench run not registered: {exc}")
        return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_parallel.json"),
        help="where to write the benchmark record",
    )
    args = parser.parse_args(argv)
    record = run_benchmark(jobs=args.jobs)
    run_id = _register_bench(record)
    if run_id is not None:
        record["registry_run_id"] = run_id
    Path(args.out).write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(record, indent=2))
    print(f"\nwritten to {args.out}")
    return 0 if record["cycles_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
