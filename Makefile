# Convenience targets for the STONNE reproduction.

.PHONY: install test bench report examples validate trace-smoke \
	differential bench-parallel all clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# serial vs parallel vs cached execution must be byte-identical
differential:
	pytest tests/differential/ --jobs 4 -q

# three-way full-model sweep; writes BENCH_parallel.json at the repo root
bench-parallel:
	PYTHONPATH=src python benchmarks/bench_parallel.py --jobs 4

report:
	python -m repro.experiments.report evaluation_report.md

validate:
	stonne validate

# run a tiny traced conv through the CLI and validate the Chrome trace
trace-smoke:
	PYTHONPATH=src python -m repro.ui.cli conv -R 3 -S 3 -C 4 -K 4 \
		-X 6 -Y 6 --arch maeri --num-ms 16 --bw 8 \
		--trace /tmp/stonne-trace-smoke.json --metrics-every 16
	PYTHONPATH=src python -m repro.observability.validate \
		/tmp/stonne-trace-smoke.json \
		--expect "layer:" --expect "DN:" --expect "MN:" --expect "RN:"
	@echo "trace smoke OK"

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran"

all: install test bench

clean:
	rm -rf build src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
