# Convenience targets for the STONNE reproduction.

.PHONY: install test bench report examples validate trace-smoke \
	sentinel-smoke telemetry-smoke explain-smoke fabric-smoke \
	sanitize-smoke differential differential-vector coverage \
	bench-parallel lint typecheck all clean

install:
	pip install -e .

test:
	pytest tests/

# the in-repo static-analysis passes (see docs/STATIC_ANALYSIS.md);
# ratchets against the committed baseline and writes the JSON report
# that CI uploads as an artifact
lint:
	PYTHONPATH=src python -m repro.analysis.lint src/repro \
		--baseline tests/regression/lint_baseline.json \
		--format json --output stonne-lint.json > /dev/null
	PYTHONPATH=src python -m repro.analysis.lint src/repro

# dual-run perturbation harness: a reference simulation and one with an
# adversarial hash seed + reversed/shuffled submission order must
# produce byte-identical payloads (with per-window conservation checked
# in flight), and the seeded order-dependence mutant must be caught
sanitize-smoke:
	PYTHONPATH=src python -m repro.analysis.sanitize \
		--model squeezenet --arch tpu --num-ms 16 \
		--out stonne-sanitize.json
	@PYTHONPATH=src python -m repro.analysis.sanitize \
		--model squeezenet --arch tpu --num-ms 16 \
		--mutant float-order \
		--out /tmp/stonne-sanitize-mutant.json; \
	status=$$?; test $$status -eq 1 \
		|| { echo "seeded mutant not caught (exit $$status)"; exit 1; }
	@echo "sanitize smoke OK (mutant caught)"

# strict typing of the core packages; skips gracefully when mypy is absent
typecheck:
	@PYTHONPATH=src python -c "import mypy" 2>/dev/null \
		&& PYTHONPATH=src python -m mypy \
		|| echo "mypy not installed; skipping typecheck (CI runs it)"

bench:
	pytest benchmarks/ --benchmark-only

# serial vs parallel vs cached execution must be byte-identical
differential:
	pytest tests/differential/ --jobs 4 -q

# cycle-stepped reference vs closed-form vector engine, byte for byte
differential-vector:
	pytest tests/differential/test_vector_equivalence.py \
		tests/unit/test_vector_golden.py -q

# line-coverage gate; skips gracefully when pytest-cov is absent
coverage:
	@PYTHONPATH=src python -c "import pytest_cov" 2>/dev/null \
		&& PYTHONPATH=src python -m pytest -q --cov=repro \
			--cov-report=term --cov-report=xml --cov-fail-under=85 \
		|| echo "pytest-cov not installed; skipping coverage (CI runs it)"

# three-way full-model sweep; writes BENCH_parallel.json at the repo root
bench-parallel:
	PYTHONPATH=src python benchmarks/bench_parallel.py --jobs 4

report:
	python -m repro.experiments.report evaluation_report.md

validate:
	stonne validate

# run a tiny traced conv through the CLI and validate both exports
trace-smoke:
	PYTHONPATH=src python -m repro.ui.cli conv -R 3 -S 3 -C 4 -K 4 \
		-X 6 -Y 6 --arch maeri --num-ms 16 --bw 8 \
		--trace /tmp/stonne-trace-smoke.json --metrics-every 16 \
		--metrics /tmp/stonne-metrics-smoke.json --metrics-format json \
		--no-registry
	PYTHONPATH=src python -m repro.observability.validate \
		/tmp/stonne-trace-smoke.json \
		--expect "layer:" --expect "DN:" --expect "MN:" --expect "RN:"
	PYTHONPATH=src python -m repro.observability.validate \
		/tmp/stonne-metrics-smoke.json \
		--expect gb_reads --expect mn_multiplications
	@echo "trace smoke OK"

# register two Fig. 5 workloads and gate them against the committed baseline
sentinel-smoke:
	rm -rf /tmp/stonne-ci-runs
	PYTHONPATH=src python -m repro.ui.cli model squeezenet --arch tpu \
		--num-ms 256 --registry-dir /tmp/stonne-ci-runs > /dev/null
	PYTHONPATH=src python -m repro.ui.cli model squeezenet --arch maeri \
		--num-ms 256 --bw 128 --registry-dir /tmp/stonne-ci-runs > /dev/null
	PYTHONPATH=src python -m repro.observability.insight \
		--registry-dir /tmp/stonne-ci-runs \
		check --baseline tests/regression/baseline_runs.json
	PYTHONPATH=src python -m repro.observability.insight \
		--registry-dir /tmp/stonne-ci-runs \
		report latest -o /tmp/stonne-insight-report.html
	@echo "sentinel smoke OK"

# short --telemetry --live model run piped through a non-TTY (so the
# live renderer degrades to plain lines), then a sampled hotspot profile
telemetry-smoke:
	PYTHONPATH=src python -m repro.ui.cli model squeezenet --arch tpu \
		--num-ms 16 --live --telemetry \
		--telemetry-out /tmp/stonne-telemetry-smoke.prom \
		--progress-jsonl /tmp/stonne-progress-smoke.jsonl \
		--no-registry 2>&1 | cat
	PYTHONPATH=src python -c "import pathlib; \
		from repro.observability.telemetry import parse_prometheus; \
		families = parse_prometheus(pathlib.Path( \
			'/tmp/stonne-telemetry-smoke.prom').read_text()); \
		assert 'stonne_stage_seconds' in families, sorted(families); \
		assert 'stonne_pool_tasks_total' in families, sorted(families)"
	PYTHONPATH=src python -c "import json, pathlib; \
		events = [json.loads(l) for l in pathlib.Path( \
			'/tmp/stonne-progress-smoke.jsonl').read_text().splitlines()]; \
		assert events[0]['event'] == 'model_start'; \
		assert events[-1]['event'] == 'model_end', events[-1]"
	PYTHONPATH=src python -m repro.observability.insight hotspots \
		--model squeezenet --arch tpu --num-ms 16 --repeat 2 \
		--format json -o stonne-hotspots.json
	@echo "telemetry smoke OK"

# attributed model run into a scratch registry, then `insight explain`
# re-validates the conservation invariant (it exits 2 on violation) and
# writes the ledger JSON that CI uploads as an artifact
explain-smoke:
	rm -rf /tmp/stonne-explain-runs
	PYTHONPATH=src python -m repro.ui.cli model squeezenet --arch tpu \
		--num-ms 16 --stalls --registry-dir /tmp/stonne-explain-runs \
		> /dev/null
	PYTHONPATH=src python -m repro.observability.insight \
		--registry-dir /tmp/stonne-explain-runs explain latest
	PYTHONPATH=src python -m repro.observability.insight \
		--registry-dir /tmp/stonne-explain-runs \
		explain latest --format json -o stonne-explain.json
	PYTHONPATH=src python -c "import json; \
		d = json.load(open('stonne-explain.json')); \
		assert d['conservation']['ok'], d['conservation']; \
		assert sum(d['buckets'].values()) == d['total_cycles'], d; \
		assert d['coverage'] == 1.0, d['coverage']"
	@echo "explain smoke OK"

# fabric-instrumented model run into a scratch registry, then `insight
# fabric` re-validates the per-level consistency invariant (it exits 2
# on violation) and writes the fabric JSON + report HTML that CI
# uploads as artifacts
fabric-smoke:
	rm -rf /tmp/stonne-fabric-runs
	PYTHONPATH=src python -m repro.ui.cli model squeezenet --arch tpu \
		--num-ms 16 --fabric --registry-dir /tmp/stonne-fabric-runs \
		> /dev/null
	PYTHONPATH=src python -m repro.observability.insight \
		--registry-dir /tmp/stonne-fabric-runs fabric latest
	PYTHONPATH=src python -m repro.observability.insight \
		--registry-dir /tmp/stonne-fabric-runs \
		fabric latest --format json -o stonne-fabric.json
	PYTHONPATH=src python -m repro.observability.insight \
		--registry-dir /tmp/stonne-fabric-runs \
		report latest -o stonne-fabric-report.html
	PYTHONPATH=src python -c "import json; \
		d = json.load(open('stonne-fabric.json')); \
		assert d['consistency']['ok'], d['consistency']; \
		assert d['fabric']['tiers'], 'no fabric tier charged'; \
		assert d['hottest_links'], 'no per-link detail'; \
		assert d['coverage'] > 0.9, d['coverage']; \
		html = open('stonne-fabric-report.html').read(); \
		assert 'Fabric observatory' in html"
	@echo "fabric smoke OK"

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran"

all: install test bench

clean:
	rm -rf build src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
