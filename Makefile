# Convenience targets for the STONNE reproduction.

.PHONY: install test bench report examples validate all clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

report:
	python -m repro.experiments.report evaluation_report.md

validate:
	stonne validate

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran"

all: install test bench

clean:
	rm -rf build src/repro.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
