"""``stonne`` command-line interface.

Subcommands mirror how the original tool is driven:

- ``stonne conv`` / ``stonne gemm`` / ``stonne spmm`` — the *STONNE User
  Interface*: run a single layer with random tensors on a configured
  accelerator and print the JSON statistics.
- ``stonne model`` — full-model simulation of one Table I model on a
  Table IV architecture.
- ``stonne experiment`` — regenerate one of the paper's figures/tables.
- ``stonne mkconfig`` — write a preset hardware ``.cfg`` file to edit.

Examples::

    stonne conv -R 3 -S 3 -C 6 -K 6 -X 7 -Y 7 --arch maeri --num-ms 32 --bw 4
    stonne gemm -M 64 -N 128 -K 32 --arch sigma --sparsity 0.8
    stonne model resnet50 --arch sigma
    stonne experiment tablev
"""

from __future__ import annotations

import argparse
import json
import sqlite3
import sys
import time
from typing import Optional, Sequence

import numpy as np

from repro.config import (
    EngineMode,
    HardwareConfig,
    TileConfig,
    load_config,
    maeri_like,
    save_config,
    sigma_like,
    tpu_like,
)
from repro.engine.accelerator import Accelerator
from repro.errors import StonneError
from repro.observability import Observability
from repro.version import __version__


def _build_config(args: argparse.Namespace) -> HardwareConfig:
    if getattr(args, "config", None):
        config = load_config(args.config)
        if getattr(args, "engine_mode", None):
            config = config.with_updates(
                engine_mode=EngineMode(args.engine_mode)
            )
        return config
    presets = {"tpu": tpu_like, "maeri": maeri_like, "sigma": sigma_like}
    builder = presets[args.arch]
    kwargs = {}
    if args.arch == "tpu":
        kwargs["num_pes"] = args.num_ms
        if args.bw:
            kwargs["bandwidth"] = args.bw
    else:
        kwargs["num_ms"] = args.num_ms
        kwargs["bandwidth"] = args.bw or max(1, args.num_ms // 2)
    config = builder(**kwargs)
    if getattr(args, "engine_mode", None):
        config = config.with_updates(engine_mode=EngineMode(args.engine_mode))
    return config


def _add_hw_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--arch", choices=("tpu", "maeri", "sigma"), default="maeri",
        help="Table IV preset to instantiate",
    )
    parser.add_argument("--num-ms", type=int, default=256,
                        help="multiplier switches / PEs")
    parser.add_argument("--bw", type=int, default=0,
                        help="GB bandwidth in elements/cycle (0 = preset default)")
    parser.add_argument("--config", help="hardware .cfg file (overrides presets)")
    parser.add_argument(
        "--engine-mode", choices=tuple(m.value for m in EngineMode),
        default=None, dest="engine_mode",
        help="dense hot-path implementation: the cycle-stepped reference, "
             "the byte-identical closed-form kernels, or auto (default: "
             "the preset's mode; STONNE_ENGINE_MODE also overrides)",
    )
    parser.add_argument("--seed", type=int, default=0, help="tensor RNG seed")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON statistics report")
    parser.add_argument("--trace", metavar="PATH",
                        help="write a cycle-level event trace to PATH")
    parser.add_argument("--trace-format", choices=("chrome", "jsonl"),
                        default="chrome",
                        help="trace format: chrome://tracing JSON or JSONL")
    parser.add_argument("--metrics", metavar="PATH",
                        help="write the counter time series to PATH")
    parser.add_argument("--metrics-format", choices=("csv", "json"),
                        default="csv",
                        help="metrics export format (json is validatable "
                             "with repro.observability.validate)")
    parser.add_argument("--metrics-every", type=int, default=0, metavar="N",
                        help="sample counters every N cycles "
                             "(default 64 when --metrics is given)")
    parser.add_argument("--profile", action="store_true",
                        help="print a wall-clock phase profile of the simulator")
    parser.add_argument("--stalls", action="store_true",
                        help="attribute every simulated cycle to a stall "
                             "bucket; inspect with 'stonne insight explain' "
                             "(bypasses the simulation cache)")
    parser.add_argument("--fabric", action="store_true",
                        help="record spatially-resolved DN/MN/RN utilization "
                             "and FIFO occupancy; inspect with 'stonne "
                             "insight fabric' (bypasses the simulation cache)")
    parser.add_argument("--telemetry", action="store_true",
                        help="collect host-side telemetry (cache/pool/registry "
                             "metrics); printed to stderr unless "
                             "--telemetry-out is given")
    parser.add_argument("--telemetry-out", metavar="PATH", default=None,
                        help="write the telemetry snapshot to PATH "
                             "(implies --telemetry)")
    parser.add_argument("--telemetry-format", choices=("prom", "jsonl"),
                        default="prom",
                        help="telemetry output format: Prometheus text "
                             "exposition or a JSONL snapshot")
    _add_registry_args(parser)


def _add_registry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--registry", action="store_true", dest="registry",
                        default=None,
                        help="record this run in the run registry "
                             "(default: on; STONNE_REGISTRY=0 disables)")
    parser.add_argument("--no-registry", action="store_false", dest="registry",
                        help="do not record this run in the run registry")
    parser.add_argument("--registry-dir", metavar="DIR", default=None,
                        help="registry location (default ~/.stonne_runs, "
                             "or $STONNE_RUNS_DIR)")


def _parse_tile(text: Optional[str]) -> Optional[TileConfig]:
    """Parse ``T_R,T_S,T_C,T_G,T_K,T_N,T_X,T_Y`` (paper tile notation)."""
    if not text:
        return None
    values = [int(v) for v in text.split(",")]
    if len(values) != 8:
        raise StonneError(
            "tile must have 8 comma-separated values: T_R,T_S,T_C,T_G,T_K,T_N,T_X,T_Y"
        )
    keys = ("t_r", "t_s", "t_c", "t_g", "t_k", "t_n", "t_x", "t_y")
    return TileConfig(**dict(zip(keys, values)))


def _telemetry_wanted(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "telemetry", False)
        or getattr(args, "telemetry_out", None)
    )


def _start_telemetry(args: argparse.Namespace) -> None:
    if _telemetry_wanted(args):
        from repro.observability.telemetry import enable_telemetry

        enable_telemetry(True)


def _finish_telemetry(args: argparse.Namespace) -> None:
    """Emit the collected telemetry (stderr, or --telemetry-out)."""
    if not _telemetry_wanted(args):
        return
    from repro.observability.telemetry import (
        telemetry,
        to_prometheus,
        write_telemetry,
    )

    out = getattr(args, "telemetry_out", None)
    if out:
        try:
            write_telemetry(telemetry(), out, format=args.telemetry_format)
        except OSError as exc:
            raise StonneError(f"cannot write telemetry to {out}: {exc}")
        print(f"telemetry written to {out}", file=sys.stderr)
    else:
        print(to_prometheus(telemetry()), file=sys.stderr, end="")


def _make_observability(args: argparse.Namespace) -> Observability:
    """Build the observability context the run flags ask for."""
    metrics_every = args.metrics_every
    if args.metrics and not metrics_every:
        metrics_every = 64
    if metrics_every < 0:
        raise StonneError("--metrics-every must be >= 0")
    _start_telemetry(args)
    return Observability.create(
        trace=bool(args.trace),
        metrics_every=metrics_every,
        profile=args.profile,
        stalls=bool(getattr(args, "stalls", False)),
        fabric=bool(getattr(args, "fabric", False)),
    )


def _finish_observability(acc: Accelerator, args: argparse.Namespace) -> None:
    """Export the traces/metrics/profile an instrumented run collected."""
    obs = acc.obs
    acc.report.metadata["seed"] = args.seed
    if args.trace:
        try:
            if args.trace_format == "jsonl":
                obs.tracer.to_jsonl(args.trace)
            else:
                obs.tracer.to_chrome(args.trace,
                                     metadata=dict(acc.report.metadata))
        except OSError as exc:
            raise StonneError(f"cannot write trace to {args.trace}: {exc}")
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.metrics and obs.metrics is not None:
        try:
            if args.metrics_format == "json":
                obs.metrics.to_json(args.metrics)
            else:
                obs.metrics.to_csv(args.metrics)
        except OSError as exc:
            raise StonneError(f"cannot write metrics to {args.metrics}: {exc}")
        print(f"metrics written to {args.metrics} "
              f"({len(obs.metrics)} samples, every "
              f"{obs.metrics.every} cycles)", file=sys.stderr)
    if args.profile:
        print(obs.profiler.format_summary(), file=sys.stderr)
    _finish_telemetry(args)


def _registry_wanted(args: argparse.Namespace) -> bool:
    from repro.observability.registry import registry_enabled

    if args.registry is not None:
        return args.registry
    return registry_enabled(default=True)


def _finish_registry(
    acc: Accelerator,
    args: argparse.Namespace,
    workload: str,
    wall_clock_s: Optional[float] = None,
    cached: bool = False,
) -> None:
    """Append the finished run to the registry (CLI default: on).

    Registration is best-effort: a broken registry store warns and never
    fails a run whose simulation already succeeded.
    """
    if not _registry_wanted(args):
        return
    from repro.observability.registry import RunRegistry

    metrics = acc.obs.metrics
    try:
        with RunRegistry(args.registry_dir) as registry:
            run_id = registry.record_report(
                acc.report,
                workload=workload,
                source=f"cli:{args.command}",
                wall_clock_s=wall_clock_s,
                cached=cached,
                metrics=metrics.summary() if metrics is not None else None,
            )
        print(f"run registered as {run_id}", file=sys.stderr)
    except (sqlite3.Error, OSError) as exc:
        print(f"warning: run not registered: {exc}", file=sys.stderr)


def _report(acc: Accelerator, as_json: bool) -> None:
    if as_json:
        print(acc.report.to_json())
        return
    summary = acc.report.as_dict()
    energy = summary["energy_uj"]
    print(f"accelerator      : {summary['accelerator']}")
    print(f"total cycles     : {summary['total_cycles']}")
    print(f"total MACs       : {summary['total_macs']}")
    print(f"runtime (us)     : {summary['runtime_us']:.3f}")
    print(f"energy (uJ)      : {energy['total']:.4f}  {energy['by_group']}")
    print(f"area (um^2)      : {summary['area_um2']['total']:.0f}")


def _cmd_conv(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    acc = Accelerator(_build_config(args), observability=_make_observability(args))
    weights = rng.standard_normal(
        (args.K * args.G, args.C, args.R, args.S)
    ).astype(np.float32)
    activations = rng.standard_normal(
        (args.N, args.C * args.G, args.X, args.Y)
    ).astype(np.float32)
    started = time.perf_counter()
    acc.run_conv(
        weights, activations, stride=args.strides, groups=args.G,
        tile=_parse_tile(args.tile), name="cli-conv",
    )
    wall = time.perf_counter() - started
    _finish_observability(acc, args)
    _finish_registry(
        acc, args,
        workload=(f"conv:{args.R}x{args.S}x{args.C}x{args.K}g{args.G}"
                  f"n{args.N}x{args.X}x{args.Y}s{args.strides}"),
        wall_clock_s=wall,
    )
    _report(acc, args.json)
    return 0


def _cmd_gemm(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    acc = Accelerator(_build_config(args), observability=_make_observability(args))
    a = rng.standard_normal((args.M, args.K)).astype(np.float32)
    b = rng.standard_normal((args.K, args.N)).astype(np.float32)
    if args.sparsity:
        from repro.analytical.sigma_model import uniform_sparse_matrix

        a = uniform_sparse_matrix(args.M, args.K, args.sparsity, seed=args.seed)
    started = time.perf_counter()
    if acc.sparse_controller is not None:
        acc.run_spmm(a, b, name="cli-spmm")
    else:
        acc.run_gemm(a, b, name="cli-gemm")
    wall = time.perf_counter() - started
    _finish_observability(acc, args)
    _finish_registry(
        acc, args,
        workload=f"gemm:{args.M}x{args.N}x{args.K}s{args.sparsity:g}",
        wall_clock_s=wall,
    )
    _report(acc, args.json)
    return 0


def _make_progress(args: argparse.Namespace, config: HardwareConfig):
    """Build the ProgressEmitter the model-run flags ask for, or None."""
    live = bool(getattr(args, "live", False))
    jsonl = getattr(args, "progress_jsonl", None)
    if not live and not jsonl:
        return None
    from repro.observability.provenance import config_hash
    from repro.observability.telemetry import EtaEstimator, ProgressEmitter

    workload = f"model:{args.name}:b{args.batch}"
    eta = EtaEstimator.from_registry(
        args.registry_dir, workload, config_hash(config)
    )
    return ProgressEmitter(
        workload, total=0, stream=sys.stderr, live=live,
        jsonl_path=jsonl, eta=eta,
    )


def _cmd_model(args: argparse.Namespace) -> int:
    from repro.frontend.models import build_model, model_input
    from repro.frontend.simulated import (
        detach_context,
        simulate,
        simulate_parallel,
    )

    if args.jobs < 0:
        raise StonneError("--jobs must be >= 0 (0 = one per CPU)")
    model = build_model(args.name, seed=args.seed, prune=not args.dense)
    x = model_input(args.name, batch=args.batch, seed=args.seed + 1)
    acc = Accelerator(_build_config(args), observability=_make_observability(args))
    progress = _make_progress(args, acc.config)
    cached_run = False
    started = time.perf_counter()
    # --live routes through the parallel runner even at jobs=1: it is
    # the surface that reports per-layer completion, and the
    # differential suite pins it byte-identical to the classic path
    if args.jobs != 1 or args.cache or progress is not None:
        from repro.parallel import SimCache

        cache = SimCache(args.cache) if args.cache else None
        result = simulate_parallel(
            model, acc, x, jobs=args.jobs or None, cache=cache,
            progress=progress,
        )
        cached_run = result.layers > 0 and result.simulated == 0
        print(
            f"parallel run: {result.layers} layers, "
            f"{result.simulated} simulated, {result.cache_hits} cache hits, "
            f"{result.deduplicated} deduplicated, "
            f"{result.fallbacks} fallbacks",
            file=sys.stderr,
        )
    else:
        simulate(model, acc)
        model(x)
        detach_context(model)
    wall = time.perf_counter() - started
    _finish_observability(acc, args)
    _finish_registry(
        acc, args,
        workload=f"model:{args.name}:b{args.batch}",
        wall_clock_s=wall,
        cached=cached_run,
    )
    _report(acc, args.json)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import fig1, fig5, fig6, fig7, fig9, tablev
    from repro.experiments.runner import format_table, record_experiment

    name = args.which
    started = time.perf_counter()
    if name == "fig1a":
        rows = fig1.run_fig1a()
        print(format_table(rows))
    elif name == "fig1b":
        rows = fig1.run_fig1b()
        print(format_table(rows))
    elif name == "fig1c":
        rows = fig1.run_fig1c()
        print(format_table(rows))
    elif name == "tablev":
        rows = tablev.run_tablev()
        print(format_table(rows))
    elif name == "fig5":
        rows = fig5.run_fig5()
        print(format_table(rows, ["model", "arch", "cycles", "energy_total_uj"]))
        print(json.dumps(fig5.summarize_speedups(rows), indent=2))
    elif name == "fig5c":
        rows = fig5.run_fig5c()
        print(format_table(rows))
    elif name == "fig6":
        rows = fig6.run_fig6()
        print(format_table(rows))
    elif name == "fig7a":
        rows = fig7.run_fig7a()
        print(format_table(rows))
    elif name == "fig9":
        rows = fig9.run_fig9()
        print(format_table(rows, [
            "model", "policy", "cycles", "normalized_runtime", "normalized_energy",
        ]))
    elif name == "fig9c":
        rows = fig9.run_fig9c()
        print(format_table(rows, [
            "label", "layer", "normalized_runtime", "normalized_energy",
        ]))
    else:  # pragma: no cover - argparse restricts choices
        raise StonneError(f"unknown experiment {name!r}")
    wall = time.perf_counter() - started
    if _registry_wanted(args):
        try:
            run_id = record_experiment(
                name, rows, registry=args.registry_dir,
                wall_clock_s=wall, source="cli:experiment",
            )
            print(f"run registered as {run_id}", file=sys.stderr)
        except (sqlite3.Error, OSError) as exc:
            print(f"warning: run not registered: {exc}", file=sys.stderr)
    return 0


def _cmd_mkconfig(args: argparse.Namespace) -> int:
    config = _build_config(args)
    save_config(config, args.path)
    print(f"wrote {args.arch} preset to {args.path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stonne",
        description="STONNE reproduction: cycle-level DNN accelerator simulation",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    conv = sub.add_parser("conv", help="simulate one convolution with random tensors")
    for flag, default in (("-R", 3), ("-S", 3), ("-C", 6), ("-K", 6),
                          ("-G", 1), ("-N", 1), ("-X", 7), ("-Y", 7)):
        conv.add_argument(flag, type=int, default=default)
    conv.add_argument("--strides", type=int, default=1)
    conv.add_argument("--tile", help="T_R,T_S,T_C,T_G,T_K,T_N,T_X,T_Y")
    _add_hw_args(conv)
    conv.set_defaults(func=_cmd_conv)

    gemm = sub.add_parser("gemm", help="simulate one (Sp)GEMM with random tensors")
    gemm.add_argument("-M", type=int, default=64)
    gemm.add_argument("-N", type=int, default=64)
    gemm.add_argument("-K", type=int, default=64)
    gemm.add_argument("--sparsity", type=float, default=0.0,
                      help="stationary-operand sparsity in [0, 1)")
    _add_hw_args(gemm)
    gemm.set_defaults(func=_cmd_gemm)

    spmm = sub.add_parser("spmm", help="alias of gemm with --arch sigma")
    spmm.add_argument("-M", type=int, default=64)
    spmm.add_argument("-N", type=int, default=64)
    spmm.add_argument("-K", type=int, default=64)
    spmm.add_argument("--sparsity", type=float, default=0.8)
    _add_hw_args(spmm)
    spmm.set_defaults(func=_cmd_gemm, arch="sigma")

    model = sub.add_parser("model", help="full-model simulation of a Table I model")
    model.add_argument("name", choices=(
        "mobilenets", "squeezenet", "alexnet", "resnet50", "vgg16",
        "ssd-mobilenets", "bert",
    ))
    model.add_argument("--batch", type=int, default=1)
    model.add_argument("--dense", action="store_true", help="skip weight pruning")
    model.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="time layers across N worker processes "
                            "(0 = one per CPU, 1 = classic serial run)")
    model.add_argument("--cache", metavar="DIR",
                       help="persist/reuse per-layer simulation results "
                            "in DIR (dense layers only)")
    model.add_argument("--live", action="store_true",
                       help="stream per-layer progress with an ETA from "
                            "registry history (plain lines when stderr "
                            "is not a TTY)")
    model.add_argument("--progress-jsonl", metavar="PATH", default=None,
                       help="also write progress events as JSONL to PATH")
    _add_hw_args(model)
    model.set_defaults(func=_cmd_model)

    experiment = sub.add_parser("experiment", help="regenerate a paper figure/table")
    experiment.add_argument("which", choices=(
        "fig1a", "fig1b", "fig1c", "tablev", "fig5", "fig5c", "fig6",
        "fig7a", "fig9", "fig9c",
    ))
    _add_registry_args(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    insight = sub.add_parser(
        "insight",
        help="cross-run analysis: list/diff/check/report over the registry",
        add_help=False,
    )
    insight.add_argument("insight_args", nargs=argparse.REMAINDER)
    insight.set_defaults(func=_cmd_insight)

    lint = sub.add_parser(
        "lint",
        help="static-analysis passes enforcing simulator invariants",
        add_help=False,
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER)
    lint.set_defaults(func=_cmd_lint)

    sanitize = sub.add_parser(
        "sanitize",
        help="dual-run perturbation harness: prove a simulation is "
             "hash- and submission-order independent",
        add_help=False,
    )
    sanitize.add_argument("sanitize_args", nargs=argparse.REMAINDER)
    sanitize.set_defaults(func=_cmd_sanitize)

    mkconfig = sub.add_parser("mkconfig", help="write a preset hardware .cfg file")
    mkconfig.add_argument("path")
    _add_hw_args(mkconfig)
    mkconfig.set_defaults(func=_cmd_mkconfig)

    interactive = sub.add_parser(
        "interactive", help="the STONNE User Interface prompt"
    )
    interactive.add_argument("--seed", type=int, default=0)
    interactive.set_defaults(func=_cmd_interactive)

    validate = sub.add_parser(
        "validate",
        help="run the Table V timing validation and a functional spot check",
    )
    validate.add_argument("--model", default="squeezenet",
                          help="model for the functional spot check")
    validate.set_defaults(func=_cmd_validate)

    sweep = sub.add_parser(
        "sweep",
        help="design-space exploration of one layer across hardware points",
    )
    sweep.add_argument("-R", type=int, default=3)
    sweep.add_argument("-S", type=int, default=3)
    sweep.add_argument("-C", type=int, default=16)
    sweep.add_argument("-K", type=int, default=16)
    sweep.add_argument("-X", type=int, default=18)
    sweep.add_argument("-Y", type=int, default=18)
    sweep.add_argument(
        "--architectures", default="tpu,maeri,sigma",
        help="comma-separated templates (tpu, maeri, sigma, eyeriss)",
    )
    sweep.add_argument("--sizes", default="64,256",
                       help="comma-separated fabric sizes")
    sweep.add_argument("--pareto", action="store_true",
                       help="also print the cycles-vs-energy Pareto front")
    sweep.set_defaults(func=_cmd_sweep)

    energy = sub.add_parser(
        "energy",
        help="price a counter file with the table-based energy model",
    )
    energy.add_argument("counter_file")
    energy.add_argument("--technology-nm", type=int, default=28)
    energy.add_argument(
        "--dtype", choices=("fp8", "int8", "fp16", "fp32"), default="fp8"
    )
    energy.set_defaults(func=_cmd_energy)

    return parser


def _cmd_validate(args: argparse.Namespace) -> int:
    """The paper's Section V, as one command: timing + functional."""
    import numpy as np

    from repro.experiments.runner import format_table
    from repro.experiments.tablev import run_tablev
    from repro.frontend.models import build_model, model_input
    from repro.frontend.simulated import detach_context, simulate

    rows = run_tablev()
    print(format_table(rows, [
        "design", "layer", "rtl_cycles", "repro_cycles", "error_vs_rtl_pct",
    ]))
    errors = [r["error_vs_rtl_pct"] for r in rows]
    print(f"\ntiming: average error vs RTL = {np.mean(errors):.2f}% "
          "(paper's own STONNE: 1.53%)")

    model = build_model(args.model, seed=0)
    x = model_input(args.model, batch=1, seed=1)
    native = model(x)
    failures = 0
    for arch in ("tpu", "maeri", "sigma"):
        acc = Accelerator(_build_config(
            argparse.Namespace(arch=arch, num_ms=256,
                               bw=128 if arch != "tpu" else 0, config=None)
        ))
        simulate(model, acc)
        simulated = model(x)
        detach_context(model)
        ok = np.allclose(simulated, native, atol=1e-2, rtol=1e-3)
        failures += 0 if ok else 1
        print(f"functional: {args.model} on {arch:5s} -> "
              f"{'MATCH' if ok else 'MISMATCH'} "
              f"({acc.report.total_cycles} cycles)")
    if failures:
        raise StonneError(f"{failures} functional mismatches")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.config import ConvLayerSpec
    from repro.experiments.dse import as_rows, pareto_front, sweep
    from repro.experiments.runner import format_table

    layer = ConvLayerSpec(
        r=args.R, s=args.S, c=args.C, k=args.K, x=args.X, y=args.Y,
        name="cli-sweep",
    )
    points = sweep(
        layer,
        architectures=tuple(a.strip() for a in args.architectures.split(",")),
        sizes=tuple(int(v) for v in args.sizes.split(",")),
    )
    print(format_table(as_rows(points)))
    if args.pareto:
        print("\ncycles-vs-energy Pareto front:")
        print(format_table(as_rows(pareto_front(points))))
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    """The paper's output-module script: counter file -> consumed energy."""
    from pathlib import Path

    from repro.config.hardware import DataType
    from repro.engine.energy import EnergyTable, energy_report
    from repro.engine.stats import parse_counter_file

    path = Path(args.counter_file)
    if not path.exists():
        raise StonneError(f"counter file not found: {path}")
    counters = parse_counter_file(path.read_text(encoding="utf-8"))
    dtype = next(d for d in DataType if d.value == args.dtype)
    table = EnergyTable.for_config(args.technology_nm, dtype)
    breakdown = energy_report(counters, table)
    print(f"technology       : {args.technology_nm} nm, {dtype.value}")
    for group in sorted(breakdown.by_group_uj):
        print(f"{group:16s} : {breakdown.by_group_uj[group]:.6f} uJ")
    if breakdown.dram_uj:
        print(f"{'DRAM':16s} : {breakdown.dram_uj:.6f} uJ")
    print(f"{'total':16s} : {breakdown.total_uj:.6f} uJ")
    return 0


def _cmd_insight(args: argparse.Namespace) -> int:
    """Forward ``stonne insight ...`` to the insight module's own CLI."""
    from repro.observability.insight import main as insight_main

    forwarded = list(args.insight_args)
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return insight_main(forwarded)


def _cmd_lint(args: argparse.Namespace) -> int:
    """Forward ``stonne lint ...`` to the analysis driver's own CLI."""
    from repro.analysis.lint import main as lint_main

    forwarded = list(args.lint_args)
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return lint_main(forwarded)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    """Forward ``stonne sanitize ...`` to the harness's own CLI."""
    from repro.analysis.sanitize import main as sanitize_main

    forwarded = list(args.sanitize_args)
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return sanitize_main(forwarded)


def _cmd_interactive(args: argparse.Namespace) -> int:
    from repro.ui.interactive import run_interactive

    return run_interactive(seed=args.seed)


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # argparse's REMAINDER does not capture leading option strings
    # (bpo-17050), so the insight passthrough is dispatched up front
    if argv and argv[0] == "insight":
        from repro.observability.insight import main as insight_main

        return insight_main(list(argv[1:]))
    if argv and argv[0] == "lint":
        from repro.analysis.lint import main as lint_main

        return lint_main(list(argv[1:]))
    if argv and argv[0] == "sanitize":
        from repro.analysis.sanitize import main as sanitize_main

        return sanitize_main(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except StonneError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
