"""The interactive STONNE User Interface prompt.

The paper describes it as "a tool inside STONNE in which the user is
presented with a prompt and a set of well-defined commands to load any
layer and tile parameters onto a selected instance of the simulator, and
run it with random weights and input values".

Commands
--------

``arch <tpu|maeri|sigma> [num_ms] [bandwidth]``
    Select/instantiate the accelerator.
``conv R S C K G N X Y [stride]``
    Load a convolution layer's parameters.
``gemm M N K [sparsity]``
    Load a GEMM's parameters.
``tile T_R T_S T_C T_G T_K T_N T_X T_Y``
    Force a tile for the next run (dense fabrics).
``run``
    Simulate the loaded layer with random tensors and print statistics.
``stats``
    Print the accumulated JSON report.
``help`` / ``quit``

The loop reads from an input stream and writes to an output stream so the
whole interface is unit-testable without a TTY.
"""

from __future__ import annotations

import sys
from typing import IO, List, Optional

import numpy as np

from repro.config import (
    ConvLayerSpec,
    GemmSpec,
    TileConfig,
    maeri_like,
    sigma_like,
    tpu_like,
)
from repro.engine.accelerator import Accelerator
from repro.errors import StonneError

_PROMPT = "stonne> "

_HELP = """\
commands:
  arch <tpu|maeri|sigma> [num_ms] [bandwidth]   select the accelerator
  conv R S C K G N X Y [stride]                 load a convolution layer
  gemm M N K [sparsity]                         load a GEMM
  tile T_R T_S T_C T_G T_K T_N T_X T_Y          force a tile (dense only)
  run                                           simulate with random tensors
  stats                                         print the JSON report
  help                                          this text
  quit                                          leave the prompt"""


class InteractiveSession:
    """One prompt session bound to input/output streams."""

    def __init__(
        self,
        stdin: Optional[IO] = None,
        stdout: Optional[IO] = None,
        seed: int = 0,
    ) -> None:
        self._in = stdin if stdin is not None else sys.stdin
        self._out = stdout if stdout is not None else sys.stdout
        self._rng = np.random.default_rng(seed)
        self.accelerator: Optional[Accelerator] = None
        self._layer = None
        self._gemm = None
        self._sparsity = 0.0
        self._tile: Optional[TileConfig] = None

    # ------------------------------------------------------------------
    def _print(self, text: str) -> None:
        self._out.write(text + "\n")

    def run(self) -> None:
        """The read-eval-print loop."""
        self._print("STONNE User Interface — type 'help' for commands")
        while True:
            self._out.write(_PROMPT)
            self._out.flush()
            line = self._in.readline()
            if not line:
                break
            if not self.handle(line.strip()):
                break

    def handle(self, line: str) -> bool:
        """Execute one command line; returns False to end the session."""
        if not line or line.startswith("#"):
            return True
        parts = line.split()
        command, args = parts[0].lower(), parts[1:]
        try:
            if command in ("quit", "exit"):
                self._print("bye")
                return False
            if command == "help":
                self._print(_HELP)
            elif command == "arch":
                self._cmd_arch(args)
            elif command == "conv":
                self._cmd_conv(args)
            elif command == "gemm":
                self._cmd_gemm(args)
            elif command == "tile":
                self._cmd_tile(args)
            elif command == "run":
                self._cmd_run()
            elif command == "stats":
                self._cmd_stats()
            else:
                self._print(f"unknown command {command!r}; try 'help'")
        except (StonneError, ValueError, IndexError) as exc:
            self._print(f"error: {exc}")
        return True

    # ------------------------------------------------------------------
    def _cmd_arch(self, args: List[str]) -> None:
        if not args:
            raise ValueError("usage: arch <tpu|maeri|sigma> [num_ms] [bandwidth]")
        kind = args[0].lower()
        num_ms = int(args[1]) if len(args) > 1 else 256
        bandwidth = int(args[2]) if len(args) > 2 else max(1, num_ms // 2)
        if kind == "tpu":
            config = tpu_like(num_pes=num_ms)
        elif kind == "maeri":
            config = maeri_like(num_ms=num_ms, bandwidth=bandwidth)
        elif kind == "sigma":
            config = sigma_like(num_ms=num_ms, bandwidth=bandwidth)
        else:
            raise ValueError(f"unknown architecture {kind!r}")
        self.accelerator = Accelerator(config)
        self._print(f"instantiated {config.name} with {config.num_ms} MSs")

    def _cmd_conv(self, args: List[str]) -> None:
        if len(args) < 8:
            raise ValueError("usage: conv R S C K G N X Y [stride]")
        r, s, c, k, g, n, x, y = (int(v) for v in args[:8])
        stride = int(args[8]) if len(args) > 8 else 1
        self._layer = ConvLayerSpec(r=r, s=s, c=c, k=k, g=g, n=n, x=x, y=y,
                                    stride=stride, name="ui-conv")
        self._gemm = None
        self._print(
            f"loaded conv layer: {self._layer.num_macs} MACs, "
            f"{self._layer.num_outputs} outputs"
        )

    def _cmd_gemm(self, args: List[str]) -> None:
        if len(args) < 3:
            raise ValueError("usage: gemm M N K [sparsity]")
        m, n, k = (int(v) for v in args[:3])
        self._sparsity = float(args[3]) if len(args) > 3 else 0.0
        self._gemm = GemmSpec(m=m, n=n, k=k, name="ui-gemm")
        self._layer = None
        self._print(f"loaded GEMM: {self._gemm.num_macs} MACs")

    def _cmd_tile(self, args: List[str]) -> None:
        if len(args) != 8:
            raise ValueError("usage: tile T_R T_S T_C T_G T_K T_N T_X T_Y")
        keys = ("t_r", "t_s", "t_c", "t_g", "t_k", "t_n", "t_x", "t_y")
        self._tile = TileConfig(**dict(zip(keys, (int(v) for v in args))))
        self._print(f"tile set: cluster {self._tile.cluster_size} x "
                    f"{self._tile.num_clusters} clusters")

    def _cmd_run(self) -> None:
        if self.accelerator is None:
            raise ValueError("select an architecture first ('arch maeri 64 16')")
        acc = self.accelerator
        if self._layer is not None:
            layer = self._layer
            weights = self._rng.standard_normal(
                (layer.k * layer.g, layer.c, layer.r, layer.s)
            ).astype(np.float32)
            inputs = self._rng.standard_normal(
                (layer.n, layer.c * layer.g, layer.x, layer.y)
            ).astype(np.float32)
            acc.run_conv(weights, inputs, stride=layer.stride, groups=layer.g,
                         tile=self._tile, name=layer.name)
        elif self._gemm is not None:
            gemm = self._gemm
            a = self._rng.standard_normal((gemm.m, gemm.k)).astype(np.float32)
            if self._sparsity:
                from repro.tensors.pruning import magnitude_prune

                a = magnitude_prune(a, self._sparsity)
            b = self._rng.standard_normal((gemm.k, gemm.n)).astype(np.float32)
            if acc.sparse_controller is not None:
                acc.run_spmm(a, b, name=gemm.name)
            else:
                acc.run_gemm(a, b, tile=self._tile, name=gemm.name)
        else:
            raise ValueError("load a layer first ('conv ...' or 'gemm ...')")
        layer_report = acc.report.layers[-1]
        self._print(
            f"done: {layer_report.cycles} cycles, {layer_report.macs} MACs, "
            f"utilization {layer_report.multiplier_utilization:.3f}"
        )

    def _cmd_stats(self) -> None:
        if self.accelerator is None:
            raise ValueError("no accelerator instantiated yet")
        self._print(self.accelerator.report.to_json())


def run_interactive(stdin=None, stdout=None, seed: int = 0) -> int:
    """Entry point used by ``stonne interactive``."""
    InteractiveSession(stdin=stdin, stdout=stdout, seed=seed).run()
    return 0
