"""The STONNE User Interface (paper Fig. 2a, Input Module).

A command-line tool that loads layer and tile parameters onto a selected
simulator instance and runs it with random tensors — "allowing for faster
executions, facilitating rapid prototyping and debugging" — plus
full-model and experiment subcommands.
"""

from repro.ui.cli import main

__all__ = ["main"]
