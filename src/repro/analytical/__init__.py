"""Analytical models STONNE is compared against (paper Section II).

These reproduce the *comparison baselines* of Fig. 1:

- :mod:`repro.analytical.scalesim` — a SCALE-Sim-style closed-form model
  of an output-stationary systolic array (Fig. 1a). Accurate for rigid
  fabrics, because a systolic schedule really is a formula.
- :mod:`repro.analytical.maeri_model` — the MAERI authors' style of
  analytical model (Fig. 1b): steps-per-mapping plus ideal, perfectly
  reused operand traffic. It matches cycle-level results at full
  bandwidth and *underestimates* once bandwidth shrinks, because it
  cannot see per-step delivery stalls.
- :mod:`repro.analytical.sigma_model` — the SIGMA authors' style of model
  (Fig. 1c): assumes uniformly distributed sparsity and perfect row
  packing, so it diverges from cycle-level results as sparsity grows and
  real zero *distributions* fragment the fabric.
"""

from repro.analytical.maeri_model import maeri_analytical_cycles
from repro.analytical.scalesim import (
    scalesim_conv_cycles,
    scalesim_gemm_cycles,
    scalesim_gemm_cycles_ws,
)
from repro.analytical.sigma_model import sigma_analytical_cycles

__all__ = [
    "maeri_analytical_cycles",
    "scalesim_conv_cycles",
    "scalesim_gemm_cycles",
    "scalesim_gemm_cycles_ws",
    "sigma_analytical_cycles",
]
