"""SCALE-Sim-style analytical model of an output-stationary systolic array.

SCALE-Sim computes runtimes of rigid systolic arrays from closed-form
expressions over the array dimensions and the GEMM shape. For the
output-stationary dataflow, one ``m x k x n`` tile occupies

``k + m + n - 2``

cycles (the wavefront span: the last PE receives its last operand ``k-1 +
(m-1) + (n-1)`` cycles after the first injection), and a larger GEMM runs
``ceil(M/A) * ceil(N/A)`` such tiles back to back. This is the model
STONNE's systolic engine is validated against in Fig. 1a — the two agree
to within the engine's constant per-tile pipeline overhead.
"""

from __future__ import annotations

import math

from repro.config.layer import ConvLayerSpec, GemmSpec
from repro.errors import ConfigurationError


def scalesim_gemm_cycles(gemm: GemmSpec, array_dim: int) -> int:
    """Analytical OS cycles of ``(M x K) @ (K x N)`` on an AxA array."""
    if array_dim < 1:
        raise ConfigurationError("array dimension must be >= 1")
    m_tiles = math.ceil(gemm.m / array_dim)
    n_tiles = math.ceil(gemm.n / array_dim)
    cycles = 0
    for mi in range(m_tiles):
        tm = min(array_dim, gemm.m - mi * array_dim)
        for ni in range(n_tiles):
            tn = min(array_dim, gemm.n - ni * array_dim)
            cycles += gemm.k + tm + tn - 2
    return cycles


def scalesim_gemm_cycles_ws(gemm: GemmSpec, array_dim: int) -> int:
    """Analytical weight-stationary cycles on an AxA array.

    Each ``k x n`` weight tile is preloaded (``k`` cycles, one row per
    clock) and then streams all ``M`` activation rows; the last psum
    drains ``k + n - 2`` cycles after the last injection.
    """
    if array_dim < 1:
        raise ConfigurationError("array dimension must be >= 1")
    k_tiles = math.ceil(gemm.k / array_dim)
    n_tiles = math.ceil(gemm.n / array_dim)
    cycles = 0
    for ki in range(k_tiles):
        tk = min(array_dim, gemm.k - ki * array_dim)
        for ni in range(n_tiles):
            tn = min(array_dim, gemm.n - ni * array_dim)
            cycles += tk + (gemm.m + tk + tn - 2)
    return cycles


def scalesim_conv_cycles(layer: ConvLayerSpec, array_dim: int) -> int:
    """Analytical OS cycles of a convolution lowered to per-group GEMMs."""
    per_group = scalesim_gemm_cycles(layer.to_gemm(), array_dim)
    return per_group * layer.g
