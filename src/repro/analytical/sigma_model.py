"""SIGMA-style analytical model (the Fig. 1c baseline).

The SIGMA authors' model treats the fabric as an ideal multiply throughput
machine over the *effective* (nonzero) work: a sparse-stationary GEMM with
``nnz`` stationary nonzeros streaming ``N`` columns performs ``nnz * N``
multiply-accumulates at ``num_ms`` per cycle, plus a stationary-load and a
drain term:

``cycles_AM = ceil(nnz * N / num_ms) + load + drain``

The model matches cycle-level simulation for dense operands (rows tile the
fabric exactly, so the multipliers really do stay fully busy) but
*underestimates* increasingly as sparsity grows: the real controller maps
whole rows whose data-dependent nonzero counts cannot pack the fabric
perfectly, every round pays its own load and pipeline drain, and a round
streams one column per cycle even when the mapped rows fill a fraction of
the multipliers. The actual *distribution* of zeros — not just the ratio —
sets the round count, which is exactly the effect the paper reports
diverging by up to ~92 % at 90 % sparsity.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError


def sigma_analytical_cycles(
    nnz: int,
    n_cols: int,
    num_ms: int,
    bandwidth: int,
) -> int:
    """Analytical runtime of a sparse-stationary GEMM on a SIGMA-like fabric.

    ``nnz``: nonzeros of the stationary operand; ``n_cols``: streamed
    columns.
    """
    if bandwidth < 1 or num_ms < 1:
        raise ConfigurationError("bandwidth and num_ms must be positive")
    if nnz < 0 or n_cols < 1:
        raise ConfigurationError("nnz must be >= 0 and n_cols >= 1")
    if nnz == 0:
        return 1
    compute = math.ceil(nnz * n_cols / num_ms)
    load = math.ceil(min(nnz, num_ms) / bandwidth)
    drain = max(1, math.ceil(math.log2(min(nnz, num_ms)))) + 1
    return compute + load + drain


def expected_row_nnz(k: int, sparsity: float) -> float:
    """Mean nonzeros per stationary row under the uniform assumption."""
    return k * (1.0 - sparsity)


def uniform_sparse_matrix(
    m: int, k: int, sparsity: float, seed: int = 0
) -> np.ndarray:
    """A random matrix with *exactly* the requested global sparsity.

    Used by the Fig. 1c experiment to hand both models the same operand.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ConfigurationError(f"sparsity must be in [0, 1), got {sparsity}")
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((m, k)).astype(np.float32)
    zeros = int(round(m * k * sparsity))
    if zeros:
        flat_idx = rng.choice(m * k, size=zeros, replace=False)
        dense.ravel()[flat_idx] = 0.0
    return dense


def block_diagonal_sparse_matrix(
    blocks: int, rows_per_block: int, cols_per_block: int,
    sparsity: float, seed: int = 0,
) -> np.ndarray:
    """A block-diagonal stationary operand (grouped convolutions lowered
    the way the sparse controller maps them), with uniform sparsity inside
    each block."""
    total_rows = blocks * rows_per_block
    total_cols = blocks * cols_per_block
    matrix = np.zeros((total_rows, total_cols), dtype=np.float32)
    for b in range(blocks):
        block = uniform_sparse_matrix(
            rows_per_block, cols_per_block, sparsity, seed=seed + b
        )
        matrix[
            b * rows_per_block : (b + 1) * rows_per_block,
            b * cols_per_block : (b + 1) * cols_per_block,
        ] = block
    return matrix
