"""MAERI-style analytical model (the Fig. 1b baseline).

The MAERI authors' model computes a layer's runtime from the mapping
arithmetic: how many virtual-neuron steps the tile implies, plus the
operand traffic divided by the available bandwidth **assuming perfect
reuse** — every distinct weight and input element crosses the distribution
network exactly once, and psum movement is free. That is a lower bound:

``cycles_AM = max(steps, ideal_traffic / bandwidth) + tree_latency``

At full bandwidth the ``steps`` term dominates and the model matches
cycle-level simulation (the paper reports a 1.03 % average difference).
As bandwidth shrinks, real executions stall on *per-step* delivery
(``ceil(new_operands / bw)`` every step, psum re-injections, non-amortized
weight reloads) which the amortized traffic term cannot represent — the
cycle-level count grows much faster, up to the ~400 % gap of Fig. 1b.
"""

from __future__ import annotations

import math

from repro.config.layer import ConvLayerSpec
from repro.config.tile import TileConfig
from repro.errors import ConfigurationError


def maeri_analytical_cycles(
    layer: ConvLayerSpec, tile: TileConfig, num_ms: int, bandwidth: int
) -> int:
    """Analytical runtime of ``layer`` mapped with ``tile`` on a MAERI-like
    fabric with ``num_ms`` multipliers and ``bandwidth`` elements/cycle."""
    if bandwidth < 1 or num_ms < 1:
        raise ConfigurationError("bandwidth and num_ms must be positive")
    tile.validate_for(layer, num_ms)

    cs = tile.cluster_size
    folds = tile.folds_for(layer)
    k_iters = math.ceil(layer.k / tile.t_k) * math.ceil(layer.g / tile.t_g)
    pixel_steps = (
        math.ceil(layer.n / tile.t_n)
        * math.ceil(layer.x_out / tile.t_x)
        * math.ceil(layer.y_out / tile.t_y)
    )
    steps = k_iters * folds * pixel_steps

    # perfectly reused traffic: each distinct element crosses the DN once
    weight_elems = layer.num_filters * layer.filter_size
    input_elems = layer.n * layer.g * layer.c * layer.x * layer.y
    output_elems = layer.num_outputs
    ideal_traffic = weight_elems + input_elems + output_elems

    tree_latency = max(1, math.ceil(math.log2(cs))) if cs > 1 else 1
    return max(steps, math.ceil(ideal_traffic / bandwidth)) + tree_latency
