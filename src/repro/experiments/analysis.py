"""Cross-cutting analyses over full-model runs.

These answer the "why" behind the Fig. 5 results the way the paper's
prose does — which layer *types* (Table I's dominant-type column) consume
the cycles on each architecture, and where each fabric's weakness shows.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.experiments.fig5 import ARCHITECTURES, run_model_on
from repro.frontend.models import MODEL_NAMES


def _kind_of(layer_name: str) -> str:
    """Coarse layer-type tag recovered from the generated layer names."""
    name = layer_name.lower()
    if "dw" in name:
        return "depthwise-conv"
    if "pw" in name or "1x1" in name or "squeeze" in name:
        return "pointwise-conv"
    if "expand3x3" in name or "3x3" in name or "conv" in name or "head" in name:
        return "conv"
    if "fc" in name or "linear" in name or "classifier" in name or "proj" in name \
            or name.endswith(("-q", "-k", "-v", "-o")) or "ffn" in name \
            or "pooler" in name:
        return "linear"
    if "qk" in name or "av" in name or "matmul" in name:
        return "attention-gemm"
    if "pool" in name:
        return "pool"
    return "other"


def run_layer_kind_breakdown(
    models: Sequence[str] = MODEL_NAMES, seed: int = 0
) -> List[Dict]:
    """Share of cycles per (architecture, layer kind), across models."""
    totals: Dict[str, Dict[str, int]] = {arch: {} for arch in ARCHITECTURES}
    for model_name in models:
        for arch in ARCHITECTURES:
            acc = run_model_on(arch, model_name, seed=seed)
            for layer in acc.report.layers:
                kind = _kind_of(layer.name)
                totals[arch][kind] = totals[arch].get(kind, 0) + layer.cycles

    rows = []
    for arch, kinds in totals.items():
        total = sum(kinds.values())
        for kind, cycles in sorted(kinds.items(), key=lambda kv: -kv[1]):
            rows.append(
                {
                    "arch": arch,
                    "layer_kind": kind,
                    "cycles": cycles,
                    "share": round(cycles / total, 4),
                }
            )
    return rows


def dominant_kind(rows: List[Dict], arch: str) -> str:
    """The layer kind consuming the most cycles on ``arch``."""
    candidates = [r for r in rows if r["arch"] == arch]
    return max(candidates, key=lambda r: r["cycles"])["layer_kind"]


def utilization_by_architecture(
    models: Sequence[str] = MODEL_NAMES, seed: int = 0
) -> List[Dict]:
    """Average multiplier utilization per architecture across models —
    the flexibility argument (rigid fabrics strand PEs) in one number."""
    rows = []
    for arch in ARCHITECTURES:
        utils = []
        for model_name in models:
            acc = run_model_on(arch, model_name, seed=seed)
            usage = acc.report.component_utilization()
            utils.append(usage["multiplier_utilization"])
        rows.append(
            {
                "arch": arch,
                "avg_multiplier_utilization": round(float(np.mean(utils)), 4),
                "min": round(float(np.min(utils)), 4),
                "max": round(float(np.max(utils)), 4),
            }
        )
    return rows
