"""Experiment harnesses: one module per paper figure/table.

Every module exposes a ``run_*`` function returning plain row dicts (so
results are scriptable, like the paper's JSON output) and the benchmarks
under ``benchmarks/`` print them in the same shape the paper reports.

==================  ==========================================
Module              Reproduces
==================  ==========================================
``fig1``            Fig. 1a/1b/1c (cycle-level vs analytical)
``tablev``          Table V (timing validation vs RTL counts)
``fig5``            Fig. 5a/5b/5c (TPU vs MAERI vs SIGMA)
``fig6``            Fig. 6a-d (SNAPEA use case)
``fig7``            Fig. 7a/7b (sparse filter statistics)
``fig9``            Fig. 9a/9b/9c (filter scheduling use case)
==================  ==========================================
"""

from repro.experiments import analysis, dse, fig1, fig5, fig6, fig7, fig9, tablev
from repro.experiments.runner import format_table, geometric_mean

__all__ = [
    "analysis",
    "dse",
    "fig1",
    "fig5",
    "fig6",
    "fig7",
    "fig9",
    "format_table",
    "geometric_mean",
    "tablev",
]
