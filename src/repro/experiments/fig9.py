"""Fig. 9: static filter scheduling on a sparse accelerator (use case 3).

The seven Table I models run on a 256-MS SIGMA-like fabric (128
elements/cycle) under three schedules — No Scheduling (NS), Random (RDM)
and Largest Filter First (LFF). Three views:

- **Fig. 9a** — runtime normalized to NS per model (expected: RDM ~ NS,
  LFF ~7 % faster on average, up to ~11 % for the sensitive models and
  ~1 % for BERT).
- **Fig. 9b** — energy normalized to NS (expected: small savings, 1-6 %).
- **Fig. 9c** — per-layer LFF sensitivity for 14 representative
  ResNet-50 layers (expected: a low / medium / high sensitivity split).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.config import sigma_like
from repro.engine.accelerator import Accelerator
from repro.frontend.models import MODEL_NAMES, build_model, model_input
from repro.frontend.simulated import detach_context, simulate
from repro.opts.scheduling import SchedulingPolicy, policy_round_builder

NUM_MS = 256
BANDWIDTH = 128
POLICIES = (SchedulingPolicy.NS, SchedulingPolicy.RDM, SchedulingPolicy.LFF)


def _run_policy(
    model_name: str, policy: SchedulingPolicy, seed: int
) -> Accelerator:
    model = build_model(model_name, seed=seed)
    x = model_input(model_name, batch=1, seed=seed + 1)
    acc = Accelerator(sigma_like(num_ms=NUM_MS, bandwidth=BANDWIDTH))
    simulate(model, acc, round_builder=policy_round_builder(policy, seed=seed))
    model(x)
    detach_context(model)
    return acc


def _avg_mapping_utilization(acc: Accelerator) -> float:
    utils = [
        layer.extra["mapping_utilization"]
        for layer in acc.report.layers
        if "mapping_utilization" in layer.extra
    ]
    return float(np.mean(utils)) if utils else 0.0


def run_fig9(seed: int = 0, models=MODEL_NAMES) -> List[Dict]:
    """Normalized runtime/energy per (model, policy)."""
    rows = []
    for model_name in models:
        base = None
        for policy in POLICIES:
            acc = _run_policy(model_name, policy, seed)
            cycles = acc.report.total_cycles
            energy = acc.report.total_energy().total_uj
            util = _avg_mapping_utilization(acc)
            if policy is SchedulingPolicy.NS:
                base = (cycles, energy)
            rows.append(
                {
                    "model": model_name,
                    "policy": policy.name,
                    "cycles": cycles,
                    "normalized_runtime": cycles / base[0],
                    "energy_uj": energy,
                    "normalized_energy": energy / base[1],
                    "ms_mapping_utilization": util,
                }
            )
    return rows


def run_fig9c(seed: int = 0, num_layers: int = 14) -> List[Dict]:
    """Per-layer LFF sensitivity for ResNet-50 (low/medium/high split)."""
    ns = _run_policy("resnet50", SchedulingPolicy.NS, seed)
    lff = _run_policy("resnet50", SchedulingPolicy.LFF, seed)
    config = ns.report.config

    per_layer = []
    for ns_layer, lff_layer in zip(ns.report.layers, lff.report.layers):
        if ns_layer.kind not in ("conv", "spmm", "gemm"):
            continue
        ns_energy = ns_layer.energy(config).total_uj
        lff_energy = lff_layer.energy(config).total_uj
        per_layer.append(
            {
                "layer": ns_layer.name,
                "ns_cycles": ns_layer.cycles,
                "lff_cycles": lff_layer.cycles,
                "normalized_runtime": lff_layer.cycles / ns_layer.cycles,
                "normalized_energy": lff_energy / ns_energy if ns_energy else 1.0,
                "util_gain": (
                    lff_layer.extra.get("mapping_utilization", 0.0)
                    - ns_layer.extra.get("mapping_utilization", 0.0)
                ),
            }
        )

    # 14 representative layers spanning the sensitivity range, most
    # sensitive first (the paper's low / medium / high grouping)
    per_layer.sort(key=lambda row: row["normalized_runtime"])
    if len(per_layer) > num_layers:
        idx = np.linspace(0, len(per_layer) - 1, num_layers).round().astype(int)
        per_layer = [per_layer[i] for i in sorted(set(int(i) for i in idx))]
    for i, row in enumerate(per_layer):
        row["label"] = f"L{i + 1}"
    return per_layer
