"""Fig. 6: the SNAPEA use case (back-end extension, Section VI-B).

Runs the four purely-CNN Table I models (AlexNet, SqueezeNet, VGG-16,
ResNet-50) on the 64-PE SNAPEA configuration, once as the *Baseline*
(no negative-detection logic) and once as *SNAPEA-like* (early
termination), over a batch of synthetic images. Four views, as in the
paper: speedup (6a), normalized energy (6b), computed operations (6c) and
memory accesses (6d).

The models run **dense** (unpruned), matching the SNAPEA paper's
methodology, and batch normalization is folded into the convolutions
first (the prior-simulation pass that makes the sign check exact).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import SimulationError
from repro.frontend.folding import fold_batchnorms
from repro.frontend.models import build_model, model_input
from repro.frontend.models.zoo import CNN_MODEL_NAMES
from repro.frontend.simulated import attach_context, detach_context
from repro.opts.snapea import SnapeaContext

NUM_PES = 64
BANDWIDTH = 64


def run_fig6(
    num_images: int = 4, seed: int = 0, models=CNN_MODEL_NAMES
) -> List[Dict]:
    """Baseline-vs-SNAPEA rows for the four CNN models."""
    rows = []
    for model_name in models:
        model = build_model(model_name, seed=seed, prune=False)
        fold_batchnorms(model)
        x = model_input(model_name, batch=num_images, seed=seed + 1)
        native = model(x)

        contexts = {}
        for label, early in (("baseline", False), ("snapea", True)):
            ctx = SnapeaContext(
                num_pes=NUM_PES, bandwidth=BANDWIDTH, early_termination=early
            )
            attach_context(model, ctx)
            out = model(x)
            detach_context(model)
            if not np.allclose(out, native, atol=1e-2, rtol=1e-3):
                raise SimulationError(
                    f"{model_name}/{label}: simulated output diverged from the "
                    "native CPU execution"
                )
            contexts[label] = ctx

        base, snapea = contexts["baseline"], contexts["snapea"]
        rows.append(
            {
                "model": model_name,
                "baseline_cycles": base.total_cycles,
                "snapea_cycles": snapea.total_cycles,
                "speedup": base.total_cycles / snapea.total_cycles,
                "normalized_energy": snapea.total_energy_uj() / base.total_energy_uj(),
                "baseline_ops": base.total_ops,
                "snapea_ops": snapea.total_ops,
                "ops_reduction": 1.0 - snapea.total_ops / base.total_ops,
                "baseline_mem": base.total_mem_accesses,
                "snapea_mem": snapea.total_mem_accesses,
                "mem_reduction": 1.0
                - snapea.total_mem_accesses / base.total_mem_accesses,
            }
        )
    return rows
