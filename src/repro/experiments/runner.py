"""Shared experiment infrastructure: table formatting and small stats."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    values = [float(v) for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(rows: Sequence[Dict], columns: Sequence[str] = ()) -> str:
    """Render row dicts as an aligned text table (the bench output shape)."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    cells = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(row[i].ljust(widths[i]) for i in range(len(columns)))
        for row in cells
    ]
    return "\n".join([header, separator, *body])


def record_experiment(
    name: str,
    rows: Sequence[Dict],
    registry=None,
    wall_clock_s: Optional[float] = None,
    source: str = "experiment",
) -> str:
    """Register one experiment's result rows in the run registry.

    Experiments produce row tables rather than a single report, so the
    record carries the rows verbatim plus summed headline totals (when
    the rows have ``cycles`` / ``energy_total_uj`` columns). Returns the
    run id.
    """
    from repro.observability.registry import RunRegistry

    rows = [dict(row) for row in rows]
    total_cycles = sum(int(row.get("cycles", 0)) for row in rows)
    total_energy = sum(float(row.get("energy_total_uj", 0.0)) for row in rows)
    payload = {"rows": rows, "row_count": len(rows)}
    owned = None
    if registry is None:
        registry = owned = RunRegistry()
    elif not isinstance(registry, RunRegistry):
        registry = owned = RunRegistry(registry)
    try:
        return registry.record_payload(
            f"experiment:{name}",
            payload,
            source=source,
            wall_clock_s=wall_clock_s,
            total_cycles=total_cycles,
            energy_total_uj=total_energy,
        )
    finally:
        if owned is not None:
            owned.close()


def normalize(values: Sequence[float], reference: float) -> List[float]:
    """Values divided by a reference (the paper's normalized plots)."""
    if reference == 0:
        raise ValueError("cannot normalize to a zero reference")
    return [v / reference for v in values]


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    unit: str = "",
) -> str:
    """A horizontal bar chart in plain text.

    The benchmarks use this to render each figure's series the way the
    paper plots them, without a plotting dependency.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return "(no data)"
    peak = max(values)
    if peak <= 0:
        raise ValueError("bar chart values must include a positive maximum")
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        rendered = f"{value:g}{unit}"
        lines.append(f"{str(label).ljust(label_width)} |{bar.ljust(width)} {rendered}")
    return "\n".join(lines)
