"""Fig. 1: cycle-level simulation vs analytical models (paper Section II).

Three sub-experiments over the eight representative layers of
:data:`repro.frontend.models.REPRESENTATIVE_LAYERS`:

- **Fig. 1a** — an output-stationary systolic array (16x16 / 32x32 /
  64x64): STONNE's cycle-level systolic engine vs the SCALE-Sim-style
  analytical model. Expected: near-identical (rigid fabrics really are
  formulas).
- **Fig. 1b** — a 128-multiplier MAERI-like fabric at 128 / 64 / 32
  elements/cycle of GB bandwidth: cycle-level vs the MAERI analytical
  model. Expected: a match at full bandwidth, and a growing analytical
  underestimate as bandwidth shrinks (up to ~400 % in the paper).
- **Fig. 1c** — a 128-multiplier SIGMA-like sparse fabric, sparsity swept
  0-90 %: cycle-level vs the SIGMA analytical model. Expected: a match at
  0 % and growing divergence with sparsity (up to ~92 % in the paper).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analytical import (
    maeri_analytical_cycles,
    scalesim_conv_cycles,
    scalesim_gemm_cycles,
    sigma_analytical_cycles,
)
from repro.analytical.sigma_model import uniform_sparse_matrix
from repro.config import ConvLayerSpec, GemmSpec, maeri_like, sigma_like, tpu_like
from repro.engine.accelerator import Accelerator
from repro.frontend.models.zoo import REPRESENTATIVE_LAYERS

SYSTOLIC_DIMS = (16, 32, 64)
MAERI_BANDWIDTHS = (128, 64, 32)
SPARSITY_LEVELS = (0.0, 0.3, 0.6, 0.8, 0.9)


def _layer_items():
    return list(REPRESENTATIVE_LAYERS.items())


def run_fig1a() -> List[Dict]:
    """STONNE vs analytical model on OS systolic arrays of three sizes."""
    rows = []
    for label, spec in _layer_items():
        for dim in SYSTOLIC_DIMS:
            acc = Accelerator(tpu_like(num_pes=dim * dim))
            if isinstance(spec, ConvLayerSpec):
                gemm = spec.to_gemm()
                am = scalesim_conv_cycles(spec, dim)
                st = 0
                for _g in range(spec.g):
                    st += _systolic_cycles(acc, gemm)
            else:
                am = scalesim_gemm_cycles(spec, dim)
                st = _systolic_cycles(acc, spec)
            rows.append(
                {
                    "layer": label,
                    "pe_array": f"{dim}x{dim}",
                    "stonne_cycles": st,
                    "analytical_cycles": am,
                    "diff_pct": 100.0 * (st - am) / am,
                }
            )
    return rows


def _systolic_cycles(acc: Accelerator, gemm: GemmSpec) -> int:
    import numpy as np

    rng = np.random.default_rng(7)
    a = rng.standard_normal((gemm.m, gemm.k)).astype("float32")
    b = rng.standard_normal((gemm.k, gemm.n)).astype("float32")
    before = acc.report.total_cycles
    acc.run_gemm(a, b, name=gemm.name)
    return acc.report.total_cycles - before


def run_fig1b() -> List[Dict]:
    """STONNE vs the MAERI analytical model under bandwidth pressure."""
    import numpy as np

    num_ms = 128
    rows = []
    for label, spec in _layer_items():
        for bw in MAERI_BANDWIDTHS:
            acc = Accelerator(maeri_like(num_ms=num_ms, bandwidth=bw))
            rng = np.random.default_rng(7)
            if isinstance(spec, ConvLayerSpec):
                tile = acc.mapper.tile_for_conv(spec)
                result = acc.dense_controller.run_conv(spec, tile)
                st = result.cycles
                am = maeri_analytical_cycles(spec, tile, num_ms, bw)
            else:
                gemm_layer = ConvLayerSpec(
                    r=1, s=1, c=spec.k, k=spec.m, x=1, y=spec.n, name=spec.name
                )
                tile = acc.mapper.tile_for_conv(gemm_layer)
                result = acc.dense_controller.run_conv(gemm_layer, tile)
                st = result.cycles
                am = maeri_analytical_cycles(gemm_layer, tile, num_ms, bw)
            rows.append(
                {
                    "layer": label,
                    "bandwidth": bw,
                    "stonne_cycles": st,
                    "analytical_cycles": am,
                    "st_over_am": st / am,
                }
            )
    return rows


def run_fig1c() -> List[Dict]:
    """STONNE vs the SIGMA analytical model across sparsity ratios."""
    import numpy as np

    from repro.analytical.sigma_model import block_diagonal_sparse_matrix

    num_ms = 128
    bw = 128
    rows = []
    for label, spec in _layer_items():
        for sparsity in SPARSITY_LEVELS:
            if isinstance(spec, ConvLayerSpec):
                # grouped convolutions lower to the block-diagonal GEMM the
                # sparse controller actually maps
                stationary = block_diagonal_sparse_matrix(
                    spec.g, spec.k, spec.filter_size, sparsity, seed=11
                )
                n_cols = spec.n * spec.x_out * spec.y_out
            else:
                stationary = uniform_sparse_matrix(spec.m, spec.k, sparsity, seed=11)
                n_cols = spec.n
            acc = Accelerator(sigma_like(num_ms=num_ms, bandwidth=bw))
            result = acc.sparse_controller.run_spmm(stationary, n_cols)
            nnz = int(np.count_nonzero(stationary))
            am = sigma_analytical_cycles(nnz, n_cols, num_ms, bw)
            rows.append(
                {
                    "layer": label,
                    "sparsity": sparsity,
                    "stonne_cycles": result.cycles,
                    "analytical_cycles": am,
                    "st_over_am": result.cycles / am,
                }
            )
    return rows
