"""Design-space exploration sweeps — the simulator's raison d'être.

The paper motivates cycle-level simulation with "fast and accurate
design-space exploration of DNN accelerators". This module provides the
reusable sweep API behind that workflow: run one workload across a grid
of hardware points (architecture template x fabric size x bandwidth) and
collect cycles, energy, area and the analytical-model error at every
point, ready for Pareto analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analytical import maeri_analytical_cycles, scalesim_conv_cycles
from repro.config import ConvLayerSpec, GemmSpec, HardwareConfig
from repro.config.presets import eyeriss_like, maeri_like, sigma_like, tpu_like
from repro.engine.accelerator import Accelerator
from repro.errors import ConfigurationError

_PRESETS = {
    "tpu": tpu_like,
    "maeri": maeri_like,
    "sigma": sigma_like,
    "eyeriss": eyeriss_like,
}


@dataclass(frozen=True)
class DsePoint:
    """One evaluated hardware point."""

    arch: str
    num_ms: int
    bandwidth: int
    cycles: int
    energy_uj: float
    area_um2: float
    utilization: float
    analytical_cycles: Optional[int] = None

    @property
    def edp(self) -> float:
        """Energy-delay product (uJ x cycles), the usual Pareto metric."""
        return self.energy_uj * self.cycles

    @property
    def analytical_error_pct(self) -> Optional[float]:
        if self.analytical_cycles is None:
            return None
        return 100.0 * (self.cycles - self.analytical_cycles) / self.cycles


def _instantiate(arch: str, num_ms: int, bandwidth: int) -> HardwareConfig:
    if arch not in _PRESETS:
        raise ConfigurationError(
            f"unknown architecture template {arch!r}; choose from "
            f"{sorted(_PRESETS)}"
        )
    if arch == "tpu":
        return tpu_like(num_pes=num_ms)
    return _PRESETS[arch](num_ms=num_ms, bandwidth=bandwidth)


def _run_workload(
    acc: Accelerator, workload: Union[ConvLayerSpec, GemmSpec], seed: int
) -> None:
    rng = np.random.default_rng(seed)
    if isinstance(workload, ConvLayerSpec):
        weights = rng.standard_normal(
            (workload.k * workload.g, workload.c, workload.r, workload.s)
        ).astype(np.float32)
        inputs = rng.standard_normal(
            (workload.n, workload.c * workload.g, workload.x, workload.y)
        ).astype(np.float32)
        acc.run_conv(weights, inputs, stride=workload.stride, groups=workload.g,
                     name=workload.name or "dse-conv")
    else:
        a = rng.standard_normal((workload.m, workload.k)).astype(np.float32)
        b = rng.standard_normal((workload.k, workload.n)).astype(np.float32)
        if acc.sparse_controller is not None:
            acc.run_spmm(a, b, name=workload.name or "dse-gemm")
        else:
            acc.run_gemm(a, b, name=workload.name or "dse-gemm")


def _analytical_reference(
    arch: str, workload, config: HardwareConfig
) -> Optional[int]:
    if not isinstance(workload, ConvLayerSpec):
        return None
    if arch == "tpu":
        return scalesim_conv_cycles(workload, config.systolic_dim)
    if arch == "maeri":
        mapper = Accelerator(config).mapper
        tile = mapper.tile_for_conv(workload)
        return maeri_analytical_cycles(
            workload, tile, config.num_ms, config.dn_bandwidth
        )
    return None


def sweep(
    workload: Union[ConvLayerSpec, GemmSpec],
    architectures: Sequence[str] = ("tpu", "maeri", "sigma"),
    sizes: Sequence[int] = (64, 256),
    bandwidth_fractions: Sequence[float] = (1.0, 0.5),
    seed: int = 0,
) -> List[DsePoint]:
    """Evaluate ``workload`` over the hardware grid; returns all points."""
    points: List[DsePoint] = []
    for arch in architectures:
        for num_ms in sizes:
            for fraction in bandwidth_fractions:
                bandwidth = max(1, int(num_ms * fraction))
                if arch == "tpu" and fraction != 1.0:
                    continue  # the paper always runs the TPU at full bw
                config = _instantiate(arch, num_ms, bandwidth)
                acc = Accelerator(config)
                _run_workload(acc, workload, seed)
                energy = acc.report.total_energy()
                area = acc.report.area()
                layer = acc.report.layers[-1]
                points.append(
                    DsePoint(
                        arch=arch,
                        num_ms=num_ms,
                        bandwidth=config.dn_bandwidth,
                        cycles=acc.report.total_cycles,
                        energy_uj=energy.total_uj,
                        area_um2=area.total_um2,
                        utilization=layer.multiplier_utilization,
                        analytical_cycles=_analytical_reference(
                            arch, workload, config
                        ),
                    )
                )
    return points


def pareto_front(
    points: Sequence[DsePoint], x: str = "cycles", y: str = "energy_uj"
) -> List[DsePoint]:
    """Non-dominated points, minimizing both ``x`` and ``y``."""
    front: List[DsePoint] = []
    for candidate in sorted(points, key=lambda p: (getattr(p, x), getattr(p, y))):
        if not front or getattr(candidate, y) < getattr(front[-1], y):
            front.append(candidate)
    return front


def as_rows(points: Sequence[DsePoint]) -> List[Dict]:
    """Row dicts for :func:`repro.experiments.runner.format_table`."""
    rows = []
    for p in points:
        row = {
            "arch": p.arch,
            "num_ms": p.num_ms,
            "bandwidth": p.bandwidth,
            "cycles": p.cycles,
            "energy_uj": round(p.energy_uj, 4),
            "area_mm2": round(p.area_um2 / 1e6, 4),
            "edp": round(p.edp, 2),
            "utilization": round(p.utilization, 3),
        }
        if p.analytical_cycles is not None:
            row["am_error_pct"] = round(p.analytical_error_pct, 1)
        rows.append(row)
    return rows
