"""Fig. 7: sparse filter statistics on a 256-MS flexible fabric.

- **Fig. 7a** — for every model, the average number of *entire* filters
  (effective, nonzero-count sizes) that map simultaneously onto a 256-MS
  SIGMA-like fabric, averaged over the model's layers. The paper finds
  4-8 for most models, with AlexNet and BERT lower due to their large
  filters.
- **Fig. 7b** — the effective filter sizes of each model's first
  compute layer, showing the variability LFF scheduling exploits.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.frontend.layers import Conv2d, Linear
from repro.frontend.models import MODEL_NAMES, build_model
from repro.memory.sparse_controller import natural_order_rounds
from repro.tensors.sparse import from_dense

NUM_MS = 256


def _stationary_row_nnz(module) -> np.ndarray:
    """Effective filter sizes (nonzeros per stationary row) of a layer."""
    weight = module.weight.data
    if isinstance(module, Conv2d):
        rows = weight.reshape(weight.shape[0], -1)
    else:
        rows = weight
    return from_dense(rows, "csr").row_nnz()


def _compute_layers(model) -> List:
    return [
        module
        for module in model.modules()
        if isinstance(module, (Conv2d, Linear))
    ]


def filters_per_round(row_nnz: np.ndarray, capacity: int = NUM_MS) -> float:
    """Average whole filters mapped per round under natural-order packing."""
    rounds = natural_order_rounds(row_nnz, capacity)
    if not rounds:
        return 0.0
    whole = [sum(1 for chunk in chunks if chunk.start == 0 and chunk.is_final)
             for chunks in rounds]
    return float(np.mean(whole))


def run_fig7a(seed: int = 0) -> List[Dict]:
    """Average simultaneously-mappable filters per model."""
    rows = []
    for model_name in MODEL_NAMES:
        model = build_model(model_name, seed=seed)
        per_layer = [
            filters_per_round(_stationary_row_nnz(module))
            for module in _compute_layers(model)
        ]
        rows.append(
            {
                "model": model_name,
                "avg_filters_mappable": float(np.mean(per_layer)),
                "min_layer_avg": float(np.min(per_layer)),
                "max_layer_avg": float(np.max(per_layer)),
                "layers": len(per_layer),
            }
        )
    return rows


def run_fig7b(seed: int = 0) -> Dict[str, List[int]]:
    """Effective filter sizes of the first compute layer of each model."""
    sizes = {}
    for model_name in MODEL_NAMES:
        model = build_model(model_name, seed=seed)
        first = _compute_layers(model)[0]
        nnz = _stationary_row_nnz(first)
        sizes[model_name] = [int(min(v, NUM_MS)) for v in nnz]
    return sizes
