"""Table V: timing validation against the published RTL cycle counts.

The paper validates STONNE against three RTL implementations — the MAERI
Bluespec code (32 MSs, bandwidth 4, three convolution layers with the
fixed tile ``Tile(3,3,1,1,1,1,3,1)``), the SIGMA Verilog code (128 MSs,
full bandwidth, four GEMMs) and the SCALE-Sim TPU RTL (16x16
output-stationary array, four GEMMs). The RTL cycle counts below are the
ground-truth column of Table V; this harness runs the same eleven
microbenchmarks on our engines and reports the error against them (and,
for reference, against the STONNE column of the table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.config import ConvLayerSpec, GemmSpec, TileConfig, maeri_like, sigma_like, tpu_like
from repro.engine.accelerator import Accelerator


@dataclass(frozen=True)
class ValidationCase:
    design: str
    name: str
    m: int
    n: int
    k: int
    rtl_cycles: int
    stonne_paper_cycles: int


#: the eleven rows of Table V
VALIDATION_CASES = (
    ValidationCase("MAERI", "MAERI-1", 6, 25, 54, 1338, 1381),
    ValidationCase("MAERI", "MAERI-2", 20, 25, 180, 16120, 16081),
    ValidationCase("MAERI", "MAERI-3", 6, 400, 54, 26178, 26581),
    ValidationCase("SIGMA", "SIGMA-1", 64, 128, 32, 2321, 2304),
    ValidationCase("SIGMA", "SIGMA-2", 256, 64, 64, 8594, 8448),
    ValidationCase("SIGMA", "SIGMA-3", 256, 128, 64, 17192, 16896),
    ValidationCase("SIGMA", "SIGMA-4", 128, 1, 64, 139, 138),
    ValidationCase("TPU", "TPU-1", 16, 16, 32, 66, 67),
    ValidationCase("TPU", "TPU-2", 16, 16, 16, 50, 51),
    ValidationCase("TPU", "TPU-3", 32, 32, 16, 200, 204),
    ValidationCase("TPU", "TPU-4", 64, 64, 32, 1056, 1072),
)

#: the fixed tile the MAERI BSV code supports:
#: Tile(T_R=3, T_S=3, T_C=1, T_G=1, T_K=1, T_N=1, T_X'=3, T_Y'=1)
MAERI_TILE = TileConfig(t_r=3, t_s=3, t_c=1, t_g=1, t_k=1, t_n=1, t_x=3, t_y=1)


def _maeri_layer(case: ValidationCase) -> ConvLayerSpec:
    """Reconstruct the convolution behind a MAERI (M, N, K) row.

    The BSV layers use 3x3 filters: ``K = 3*3*C`` gives the channel count,
    ``M`` is the filter count and ``N = X'*Y'`` the (square) output map.
    """
    c = case.k // 9
    side = int(round(case.n ** 0.5))
    if side * side != case.n:
        raise ValueError(f"{case.name}: N={case.n} is not a square output map")
    return ConvLayerSpec(
        r=3, s=3, c=c, k=case.m, x=side + 2, y=side + 2, name=case.name
    )


def run_tablev() -> List[Dict]:
    """Run the eleven validation microbenchmarks; returns comparison rows."""
    rows = []
    for case in VALIDATION_CASES:
        if case.design == "MAERI":
            acc = Accelerator(maeri_like(num_ms=32, bandwidth=4))
            layer = _maeri_layer(case)
            result = acc.dense_controller.run_conv(layer, MAERI_TILE)
            cycles = result.cycles
        elif case.design == "SIGMA":
            acc = Accelerator(sigma_like(num_ms=128, bandwidth=128))
            rng = np.random.default_rng(3)
            stationary = rng.standard_normal((case.m, case.k)).astype(np.float32)
            result = acc.sparse_controller.run_spmm(stationary, case.n)
            cycles = result.cycles
        else:  # TPU: 16x16 OS array
            acc = Accelerator(tpu_like(num_pes=256))
            gemm = GemmSpec(m=case.m, n=case.n, k=case.k, name=case.name)
            rng = np.random.default_rng(3)
            a = rng.standard_normal((gemm.m, gemm.k)).astype(np.float32)
            b = rng.standard_normal((gemm.k, gemm.n)).astype(np.float32)
            _, result = acc.systolic.run_gemm(a, b)
            cycles = result.cycles
        rows.append(
            {
                "design": case.design,
                "layer": case.name,
                "M": case.m,
                "N": case.n,
                "K": case.k,
                "rtl_cycles": case.rtl_cycles,
                "paper_stonne_cycles": case.stonne_paper_cycles,
                "repro_cycles": cycles,
                "error_vs_rtl_pct": 100.0 * abs(cycles - case.rtl_cycles) / case.rtl_cycles,
            }
        )
    return rows
