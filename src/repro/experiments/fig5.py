"""Fig. 5: full-model comparison of TPU-, MAERI- and SIGMA-like designs.

Use case 1 of the paper: complete inference of the seven Table I models on
the three Table IV accelerators (256 PEs each; 128 elements/cycle for the
flexible designs, full bandwidth for the TPU). Three views:

- **Fig. 5a** — total cycles per (model, architecture).
- **Fig. 5b** — energy in uJ broken into GB / DN / MN / RN.
- **Fig. 5c** — area in um^2 per architecture (model-independent).

Expected shape: MAERI-like beats TPU-like on every model (most on
MobileNets, least on the regular-conv-heavy models); SIGMA-like beats
MAERI-like thanks to sparsity; the RN dominates energy; the GB SRAM
dominates area with the TPU-like design smallest.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.config import HardwareConfig, maeri_like, sigma_like, tpu_like
from repro.engine.accelerator import Accelerator
from repro.engine.area import area_report
from repro.frontend.models import MODEL_NAMES, build_model, model_input
from repro.frontend.simulated import detach_context, simulate

ARCHITECTURES = ("tpu", "maeri", "sigma")


def architecture_config(arch: str) -> HardwareConfig:
    if arch == "tpu":
        return tpu_like(num_pes=256)  # full bandwidth, as the TPU requires
    if arch == "maeri":
        return maeri_like(num_ms=256, bandwidth=128)
    if arch == "sigma":
        return sigma_like(num_ms=256, bandwidth=128)
    raise ValueError(f"unknown architecture {arch!r}")


def run_model_on(
    arch: str, model_name: str, batch: int = 1, seed: int = 0
) -> Accelerator:
    """Full-model inference of one Table I model on one architecture."""
    model = build_model(model_name, seed=seed)
    x = model_input(model_name, batch=batch, seed=seed + 1)
    acc = Accelerator(architecture_config(arch))
    simulate(model, acc)
    model(x)
    detach_context(model)
    return acc


def run_fig5(
    models: Sequence[str] = MODEL_NAMES, batch: int = 1, seed: int = 0
) -> List[Dict]:
    """Cycles + energy breakdown for every (model, architecture) pair."""
    rows = []
    for model_name in models:
        for arch in ARCHITECTURES:
            acc = run_model_on(arch, model_name, batch=batch, seed=seed)
            energy = acc.report.total_energy()
            row = {
                "model": model_name,
                "arch": arch,
                "cycles": acc.report.total_cycles,
                "energy_total_uj": energy.total_uj,
            }
            for group in ("GB", "DN", "MN", "RN"):
                row[f"energy_{group.lower()}_uj"] = energy.by_group_uj.get(group, 0.0)
                row[f"energy_{group.lower()}_share"] = energy.share_of(group)
            rows.append(row)
    return rows


def run_fig5c() -> List[Dict]:
    """Area estimations for the three architectures (Fig. 5c)."""
    rows = []
    for arch in ARCHITECTURES:
        breakdown = area_report(architecture_config(arch))
        row = {"arch": arch, "total_um2": breakdown.total_um2}
        for group, value in sorted(breakdown.by_group_um2.items()):
            row[f"area_{group.lower()}_um2"] = value
            row[f"area_{group.lower()}_share"] = breakdown.share_of(group)
        rows.append(row)
    return rows


def summarize_speedups(rows: List[Dict]) -> Dict[str, float]:
    """Average cycle ratios matching the paper's headline claims."""
    by_model: Dict[str, Dict[str, int]] = {}
    for row in rows:
        by_model.setdefault(row["model"], {})[row["arch"]] = row["cycles"]
    maeri_vs_tpu = [m["tpu"] / m["maeri"] for m in by_model.values()]
    sigma_vs_maeri = [m["maeri"] / m["sigma"] for m in by_model.values()]
    return {
        "avg_maeri_speedup_over_tpu": float(np.mean(maeri_vs_tpu)),
        "max_maeri_speedup_over_tpu": float(np.max(maeri_vs_tpu)),
        "min_maeri_speedup_over_tpu": float(np.min(maeri_vs_tpu)),
        "avg_sigma_speedup_over_maeri": float(np.mean(sigma_vs_maeri)),
    }
