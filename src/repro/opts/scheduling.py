"""Static filter scheduling for sparse accelerators (use case 3).

With unstructured sparsity, the *effective* size of each filter (its
nonzero count) varies widely, so the order in which filters are issued to
the fabric determines how many fit per round and therefore the multiplier
utilization (paper Fig. 8). This module provides the three policies of
Section VI-C as :data:`~repro.memory.sparse_controller.RoundBuilder`
implementations:

- **NS** (No Scheduling) — filters in their natural order (the sparse
  controller's default packing).
- **RDM** (Random) — a seeded random permutation; the paper shows this
  does not help, because random order does not improve packing.
- **LFF** (Largest Filter First) — at every round, map the largest
  still-unmapped filter that fits, then keep adding the largest remaining
  filters that fit until the fabric is full (first-fit decreasing).

These run as *front-end* extensions: a prior-simulation pass reorders the
filters, and a final reordering restores output order (output identity is
preserved because each filter's dot products are independent — the
controller validates full coverage).
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

import numpy as np

from repro.memory.sparse_controller import (
    RowChunk,
    natural_order_rounds,
    pack_rows_in_order,
)


def random_rounds(
    row_nnz: np.ndarray, capacity: int, seed: int = 0
) -> List[List[RowChunk]]:
    """The RDM policy: shuffle the filters, then pack in that order."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(row_nnz))
    return pack_rows_in_order(row_nnz, capacity, order)


def largest_filter_first_rounds(
    row_nnz: np.ndarray, capacity: int
) -> List[List[RowChunk]]:
    """The LFF policy: first-fit decreasing over the effective sizes.

    Every round starts with the largest remaining filter and greedily adds
    the largest remaining filters that still fit, maximizing multiplier
    occupancy per round. Filters wider than the whole fabric fold across
    dedicated rounds first (they cannot share the fabric anyway).
    """
    sizes = [int(v) for v in row_nnz]
    remaining = sorted(
        (row for row in range(len(sizes)) if sizes[row] > 0),
        key=lambda row: (-sizes[row], row),
    )
    rounds: List[List[RowChunk]] = []

    oversized = [row for row in remaining if sizes[row] > capacity]
    remainders: List[RowChunk] = []
    for row in oversized:
        offset, nnz = 0, sizes[row]
        while nnz - offset > capacity:
            rounds.append([RowChunk(row, offset, capacity, False)])
            offset += capacity
        remainders.append(RowChunk(row, offset, nnz - offset, True))
    remaining = [row for row in remaining if sizes[row] <= capacity]

    # remainder chunks behave like filters of their own size: largest first
    remainders.sort(key=lambda chunk: -chunk.length)
    while remainders:
        free = capacity
        chosen = []
        rest = []
        for chunk in remainders:
            if chunk.length <= free:
                chosen.append(chunk)
                free -= chunk.length
            else:
                rest.append(chunk)
        survivors2: List[int] = []
        for row in remaining:
            if sizes[row] <= free:
                chosen.append(RowChunk(row, 0, sizes[row], True))
                free -= sizes[row]
            else:
                survivors2.append(row)
        rounds.append(chosen)
        remainders = rest
        remaining = survivors2

    while remaining:
        free = capacity
        chosen: List[RowChunk] = []
        survivors: List[int] = []
        for row in remaining:
            if sizes[row] <= free:
                chosen.append(RowChunk(row, 0, sizes[row], True))
                free -= sizes[row]
            else:
                survivors.append(row)
        rounds.append(chosen)
        remaining = survivors
    return rounds


class SchedulingPolicy(enum.Enum):
    """The three policies evaluated in Fig. 9."""

    NS = "no-scheduling"
    RDM = "random"
    LFF = "largest-filter-first"


def policy_round_builder(
    policy: SchedulingPolicy, seed: int = 0
) -> Optional[Callable]:
    """A :data:`RoundBuilder` for the requested policy.

    NS returns ``None`` — the sparse controller's built-in default —
    so call sites read exactly like the paper's baseline.
    """
    if policy is SchedulingPolicy.NS:
        return None
    if policy is SchedulingPolicy.RDM:
        return lambda row_nnz, capacity: random_rounds(row_nnz, capacity, seed)
    if policy is SchedulingPolicy.LFF:
        return largest_filter_first_rounds
    raise ValueError(f"unknown policy {policy!r}")


__all__ = [
    "SchedulingPolicy",
    "largest_filter_first_rounds",
    "natural_order_rounds",
    "policy_round_builder",
    "random_rounds",
]
