"""SNAPEA: predictive early activation (use case 2, a back-end extension).

SNAPEA exploits a CNN property: convolution inputs are non-negative (they
come out of a ReLU), so once a partial sum is non-positive and only
negative weights remain, the final output is guaranteed non-positive and
the following ReLU will zero it — the remaining multiply-accumulates and
their memory accesses can be cut off. The *exact mode* reproduced here:

1. A prior-simulation front-end pass statically reorders each filter's
   weights by sign (positives first, descending) and builds the index
   table matching each reordered weight with its activation.
2. A modified memory controller delivers operands in that order.
3. The accumulation logic performs a single-bit sign check per psum; when
   the psum drops to <= 0 with only negative weights left, the output is
   terminated early.

Termination decisions are *data dependent* — they need the real weight
and activation values, which is why this optimization demonstrates the
value of full-model simulation. The sign argument only holds for
non-negative inputs, so the engine applies early termination per layer
only when the layer's input tensor is verifiably non-negative (the first
convolution of a network sees raw images and runs unterminated, exactly
as in SNAPEA).

:class:`SnapeaContext` duck-types
:class:`~repro.frontend.simulated.SimulationContext`, so a model is
attached with :func:`repro.frontend.attach_context` and every convolution
runs through the SNAPEA timing model. ``early_termination=False`` gives
the paper's *Baseline* (the same 64-PE architecture without the negative
detection logic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.tensors.im2col import col2im_output, im2col

#: per-layer configuration cost, matching the dense controller
LAYER_SETUP_CYCLES = 4

# SNAPEA energy table (derived from the published SNAPEA numbers):
# per-MAC energy, per-operand-fetch energy, static power.
_MAC_PJ = 0.9
_ACCESS_PJ = 2.5
_STATIC_MW = 1.5
_SIGN_CHECK_PJ = 0.05


@dataclass(frozen=True)
class SnapeaLayerStats:
    """Per-layer telemetry of one SNAPEA (or baseline) execution."""

    name: str
    cycles: int
    ops: int
    dense_ops: int
    mem_accesses: int
    outputs: int
    terminated_outputs: int

    @property
    def ops_saved_fraction(self) -> float:
        return 1.0 - self.ops / self.dense_ops if self.dense_ops else 0.0


class SnapeaContext:
    """Simulation context for the 64-PE SNAPEA architecture.

    Each PE owns a MAC lane and computes whole dot products serially (one
    multiply-accumulate per cycle), the organization of the SNAPEA paper;
    outputs are assigned to lanes round-robin and a layer finishes when
    its slowest lane drains.
    """

    def __init__(
        self,
        num_pes: int = 64,
        bandwidth: int = 64,
        early_termination: bool = True,
        clock_ghz: float = 1.0,
        mode: str = "exact",
        threshold: float = 0.0,
        window_fraction: float = 0.3,
    ) -> None:
        if num_pes < 1 or bandwidth < 1:
            raise ConfigurationError("SNAPEA needs positive PE count and bandwidth")
        if mode not in ("exact", "predictive"):
            raise ConfigurationError(
                f"SNAPEA mode must be 'exact' or 'predictive', got {mode!r}"
            )
        if mode == "predictive" and threshold < 0:
            raise ConfigurationError("the predictive threshold must be >= 0")
        if not 0.0 < window_fraction <= 1.0:
            raise ConfigurationError("window_fraction must be in (0, 1]")
        self.num_pes = num_pes
        self.bandwidth = bandwidth
        self.early_termination = early_termination
        self.clock_ghz = clock_ghz
        #: 'exact' cuts only provably-zero outputs; 'predictive' also cuts
        #: once the psum falls below ``-threshold`` mid-way through the
        #: negative tail, trading (tracked) mispredictions for more savings
        #: — SNAPEA's approximate operating points.
        self.mode = mode
        self.threshold = threshold
        #: fraction of the dot product computed before the predictive check
        self.window_fraction = window_fraction
        self.layers: List[SnapeaLayerStats] = []
        #: outputs zeroed by predictive cuts whose exact value was positive
        self.mispredicted_outputs = 0
        self._op_index = 0

    # ---- aggregate views -------------------------------------------------
    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_ops(self) -> int:
        return sum(layer.ops for layer in self.layers)

    @property
    def total_mem_accesses(self) -> int:
        return sum(layer.mem_accesses for layer in self.layers)

    def total_energy_uj(self) -> float:
        return snapea_energy_uj(
            self.total_ops,
            self.total_mem_accesses,
            self.total_cycles,
            sign_checks=self.total_ops if self.early_termination else 0,
            clock_ghz=self.clock_ghz,
        )

    # ---- SimulationContext protocol ----------------------------------------
    def conv(self, module, x: np.ndarray) -> np.ndarray:
        self._op_index += 1
        name = f"{self._op_index:03d}-{module.name}"
        weights = module.weight.data
        k_total, c_g, r, s = weights.shape
        groups = module.groups
        k_g = k_total // groups
        x = np.asarray(x, dtype=np.float32)
        n = x.shape[0]

        bias = (
            module.bias.data if module.bias is not None
            else np.zeros(k_total, dtype=np.float32)
        )
        terminate = self.early_termination and bool((x >= 0).all())
        outputs = []
        lengths_parts = []
        for g in range(groups):
            xg = x[:, g * c_g : (g + 1) * c_g]
            cols = im2col(xg, r, s, module.stride, module.padding)
            w2d = weights[g * k_g : (g + 1) * k_g].reshape(k_g, -1)
            gemm_g = w2d @ cols
            lengths_g, predicted_zero = self._termination_lengths(
                w2d, cols, terminate, bias[g * k_g : (g + 1) * k_g]
            )
            if predicted_zero is not None:
                # predictive hardware zeroes every predicted output; track
                # the ones whose exact pre-activation was actually positive
                self.mispredicted_outputs += int(
                    (predicted_zero & (gemm_g + bias[g * k_g : (g + 1) * k_g,
                                                     None] > 0)).sum()
                )
                gemm_g = np.where(
                    predicted_zero,
                    -bias[g * k_g : (g + 1) * k_g, None],
                    gemm_g,
                )
            outputs.append(gemm_g)
            lengths_parts.append(lengths_g)
        gemm_out = np.concatenate(outputs, axis=0)
        lengths = np.concatenate([part.ravel() for part in lengths_parts])

        x_out = (x.shape[2] + 2 * module.padding - r) // module.stride + 1
        y_out = (x.shape[3] + 2 * module.padding - s) // module.stride + 1
        # interleave groups back into (N, K_total, X', Y') layout
        out = np.concatenate(
            [
                col2im_output(outputs[g], n, x_out, y_out)
                for g in range(groups)
            ],
            axis=1,
        )

        dot = c_g * r * s
        self._record_layer(name, lengths, dot, int(gemm_out.size), int(x.size))
        return out.astype(np.float32)

    def linear(self, module, x: np.ndarray) -> np.ndarray:
        """Fully-connected layers run unterminated (SNAPEA targets convs)."""
        self._op_index += 1
        name = f"{self._op_index:03d}-{module.name}"
        x = np.asarray(x, dtype=np.float32)
        lead = x.shape[:-1]
        flat = x.reshape(-1, x.shape[-1])
        out = flat @ module.weight.data.T
        dot = module.in_features
        lengths = np.full(out.size, dot, dtype=np.int64)
        self._record_layer(name, lengths, dot, int(out.size), int(flat.size))
        return out.reshape(*lead, module.out_features).astype(np.float32)

    def matmul(self, a: np.ndarray, b: np.ndarray, name: str = "matmul") -> np.ndarray:
        self._op_index += 1
        out = (np.asarray(a, np.float32) @ np.asarray(b, np.float32)).astype(np.float32)
        lengths = np.full(out.size, a.shape[-1], dtype=np.int64)
        self._record_layer(
            f"{self._op_index:03d}-{name}", lengths, a.shape[-1], out.size,
            int(np.asarray(a).size + np.asarray(b).size),
        )
        return out

    def maxpool(self, module, x: np.ndarray) -> np.ndarray:
        from repro.frontend import functional as F

        self._op_index += 1
        out = F.maxpool2d(x, module.pool, module.stride)
        comparisons = out.size * module.pool * module.pool
        cycles = LAYER_SETUP_CYCLES + math.ceil(comparisons / self.num_pes)
        self.layers.append(
            SnapeaLayerStats(
                name=f"{self._op_index:03d}-{module.name}",
                cycles=cycles,
                ops=0,
                dense_ops=0,
                mem_accesses=comparisons + out.size,
                outputs=out.size,
                terminated_outputs=0,
            )
        )
        return out

    # ---- internals -----------------------------------------------------
    def _termination_lengths(
        self,
        w2d: np.ndarray,
        cols: np.ndarray,
        terminate: bool,
        bias: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-output effective dot-product lengths, (K, n_outputs).

        Weights are statically reordered per SNAPEA: positive weights
        first (descending), then negative weights most-negative first so
        the psum crosses zero as early as possible. The psum starts at the
        filter's bias — after BN folding this carries the normalization
        shift, exactly what the hardware's accumulator would hold.

        Returns ``(lengths, predicted_zero_mask)``; the mask is ``None``
        in exact mode and marks the outputs a *predictive* check cut
        (which the caller zeroes, SNAPEA's approximate operating point).
        """
        k, dot = w2d.shape
        n_out = cols.shape[1]
        lengths = np.full((k, n_out), dot, dtype=np.int64)
        predictive = self.mode == "predictive"
        predicted_zero = (
            np.zeros((k, n_out), dtype=bool) if predictive and terminate else None
        )
        if not terminate or dot == 1:
            return lengths, predicted_zero
        if bias is None:
            bias = np.zeros(k, dtype=np.float32)
        window = max(1, int(round(dot * self.window_fraction)))
        for f in range(k):
            w = w2d[f]
            pos = np.where(w > 0)[0]
            neg = np.where(w <= 0)[0]
            order = np.concatenate(
                [pos[np.argsort(-w[pos], kind="stable")],
                 neg[np.argsort(w[neg], kind="stable")]]
            )
            ws = w[order]
            npos = len(pos)
            csum = bias[f] + np.cumsum(ws[:, None] * cols[order, :], axis=0)
            if npos < dot:
                start = max(npos - 1, 0)
                region = csum[start:, :] <= 0.0
                has_cut = region.any(axis=0)
                first = np.argmax(region, axis=0)
                cut_lengths = start + first + 1
                lengths[f] = np.where(has_cut, cut_lengths, dot)
            if predictive:
                # single-check prediction after the first `window` MACs
                predicted = csum[window - 1, :] < self.threshold
                cut_now = predicted & (lengths[f] > window)
                lengths[f] = np.where(cut_now, window, lengths[f])
                predicted_zero[f] = cut_now
        return lengths, predicted_zero

    def _record_layer(
        self,
        name: str,
        lengths: np.ndarray,
        dot: int,
        n_outputs: int,
        input_elements: int,
    ) -> None:
        lanes = np.bincount(
            np.arange(lengths.size) % self.num_pes,
            weights=lengths.astype(np.float64),
            minlength=self.num_pes,
        )
        makespan = int(lanes.max()) if lengths.size else 0
        ops = int(lengths.sum())
        # operand delivery is double-buffered behind compute; it only binds
        # when the per-cycle operand demand exceeds the GB bandwidth
        delivery = math.ceil(2 * ops / self.bandwidth)
        cycles = LAYER_SETUP_CYCLES + max(makespan, delivery) + dot.bit_length()
        # Weight fetches stop at the termination point; input activations
        # are staged once into the on-chip buffer and their fetch count is
        # unaffected by early termination (which is why the paper's memory
        # savings trail its compute savings).
        mem = ops + input_elements + n_outputs
        self.layers.append(
            SnapeaLayerStats(
                name=name,
                cycles=cycles,
                ops=ops,
                dense_ops=dot * n_outputs,
                mem_accesses=mem,
                outputs=n_outputs,
                terminated_outputs=int((lengths < dot).sum()),
            )
        )


def snapea_energy_uj(
    ops: int,
    mem_accesses: int,
    cycles: int,
    sign_checks: int = 0,
    clock_ghz: float = 1.0,
) -> float:
    """Energy of a SNAPEA/baseline execution from the published-style table."""
    dynamic_pj = ops * _MAC_PJ + mem_accesses * _ACCESS_PJ + sign_checks * _SIGN_CHECK_PJ
    seconds = cycles / (clock_ghz * 1e9)
    static_uj = _STATIC_MW * seconds * 1e3
    return dynamic_pj / 1e6 + static_uj
