"""Data-dependent optimizations (paper Section VI use cases 2 and 3).

- :mod:`repro.opts.snapea` — a back-end extension: the SNAPEA
  early-termination architecture (weight sign-reordering, a modified
  memory controller, termination logic in the accumulation path, and the
  SNAPEA energy table).
- :mod:`repro.opts.scheduling` — a front-end extension: static filter
  scheduling for sparse accelerators (No Scheduling, Random, and Largest
  Filter First round builders for the sparse controller).

Both rely on the simulator seeing *real tensor values*, which is exactly
why the paper integrates STONNE with a DL framework.
"""

from repro.opts.scheduling import (
    SchedulingPolicy,
    largest_filter_first_rounds,
    natural_order_rounds,
    policy_round_builder,
    random_rounds,
)
from repro.opts.snapea import SnapeaContext, SnapeaLayerStats, snapea_energy_uj

__all__ = [
    "SchedulingPolicy",
    "SnapeaContext",
    "SnapeaLayerStats",
    "largest_filter_first_rounds",
    "natural_order_rounds",
    "policy_round_builder",
    "random_rounds",
    "snapea_energy_uj",
]
