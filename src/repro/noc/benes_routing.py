"""Benes route computation: the non-blocking claim, made executable.

The paper adopts SIGMA's Benes distribution network because it is an
"N-input N-output non-blocking topology": *any* source→destination
permutation can be routed in one pass. :class:`~repro.noc.distribution.
BenesNetwork` models the fabric's costs; this module implements the
classic recursive *looping algorithm* that actually computes the 2x2
switch settings realizing a permutation, plus an evaluator that pushes
data through those settings — so the non-blocking property is verified by
construction in the test suite rather than assumed.

A Benes network for ``N = 2^k`` inputs decomposes recursively: an input
stage of ``N/2`` switches, two parallel ``N/2`` Benes subnetworks (upper
and lower), and an output stage of ``N/2`` switches. The looping
algorithm 2-colors the constraint cycles formed by input-switch and
output-switch pairings, assigning each connection to the upper or lower
subnetwork, and recurses.

Routing here is unicast (a permutation); the multicast deliveries the
timing model charges are realized in hardware by replicating values at
the switches, which does not affect the non-blocking routing argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BenesRouting:
    """Switch settings realizing one permutation.

    ``first``/``last`` are the outer stages' per-switch cross flags;
    ``upper``/``lower`` are the recursive subnetwork routings (``None``
    at the ``N == 2`` base case, where ``first`` alone is the switch).
    """

    size: int
    first: Tuple[bool, ...]
    last: Tuple[bool, ...]
    upper: Optional["BenesRouting"]
    lower: Optional["BenesRouting"]

    @property
    def num_switch_settings(self) -> int:
        """Total 2x2 switches configured — the reconfiguration cost."""
        count = len(self.first) + len(self.last)
        if self.upper is not None:
            count += self.upper.num_switch_settings
        if self.lower is not None:
            count += self.lower.num_switch_settings
        return count


def _validate_permutation(perm: Sequence[int]) -> List[int]:
    perm = [int(p) for p in perm]
    n = len(perm)
    if n < 2 or n & (n - 1):
        raise ConfigurationError(
            f"a Benes network routes power-of-two port counts, got {n}"
        )
    if sorted(perm) != list(range(n)):
        raise ConfigurationError("routing target must be a permutation")
    return perm


def route_permutation(perm: Sequence[int]) -> BenesRouting:
    """Compute switch settings such that input ``i`` reaches ``perm[i]``."""
    perm = _validate_permutation(perm)
    return _route(perm)


def _route(perm: List[int]) -> BenesRouting:
    n = len(perm)
    if n == 2:
        return BenesRouting(
            size=2,
            first=(perm[0] == 1,),
            last=(),
            upper=None,
            lower=None,
        )

    half = n // 2
    # subnet[i] = 0 (upper) or 1 (lower) for each input
    subnet: List[Optional[int]] = [None] * n
    inverse = [0] * n
    for i, p in enumerate(perm):
        inverse[p] = i

    for seed in range(n):
        if subnet[seed] is not None:
            continue
        # walk one constraint loop: same-input-switch pairs must split
        # across subnetworks, and so must same-output-switch pairs
        current, color = seed, 0
        while subnet[current] is None:
            subnet[current] = color
            sibling_in = current ^ 1
            if subnet[sibling_in] is not None:
                break
            subnet[sibling_in] = color ^ 1
            # the input feeding the sibling *output* of sibling_in's
            # output must take the opposite subnet of sibling_in
            current = inverse[perm[sibling_in] ^ 1]
            color = subnet[sibling_in] ^ 1

    # outer stage settings + subproblems
    first = []
    for sw in range(half):
        a = subnet[2 * sw]
        # straight: even input -> upper; cross: even input -> lower
        first.append(a == 1)
    last = [False] * half
    upper_perm = [0] * half
    lower_perm = [0] * half
    for i in range(n):
        in_switch = i // 2
        out_switch = perm[i] // 2
        if subnet[i] == 0:
            upper_perm[in_switch] = out_switch
            # output stage: upper feeds port 0; straight iff the even
            # output of the switch comes from the upper subnet
            if perm[i] % 2 == 1:
                last[out_switch] = True
        else:
            lower_perm[in_switch] = out_switch
            if perm[i] % 2 == 0:
                last[out_switch] = True

    return BenesRouting(
        size=n,
        first=tuple(first),
        last=tuple(last),
        upper=_route(upper_perm),
        lower=_route(lower_perm),
    )


def apply_routing(routing: BenesRouting, values: Sequence) -> List:
    """Push ``values`` through the configured switches; returns outputs.

    ``apply_routing(route_permutation(p), xs)[p[i]] == xs[i]`` — the
    correctness statement the property tests assert.
    """
    values = list(values)
    if len(values) != routing.size:
        raise ConfigurationError(
            f"routing is for {routing.size} ports, got {len(values)} values"
        )
    if routing.size == 2:
        return [values[1], values[0]] if routing.first[0] else values

    half = routing.size // 2
    upper_in = [None] * half
    lower_in = [None] * half
    for sw in range(half):
        a, b = values[2 * sw], values[2 * sw + 1]
        if routing.first[sw]:
            upper_in[sw], lower_in[sw] = b, a
        else:
            upper_in[sw], lower_in[sw] = a, b
    upper_out = apply_routing(routing.upper, upper_in)
    lower_out = apply_routing(routing.lower, lower_in)
    outputs = [None] * routing.size
    for sw in range(half):
        up, low = upper_out[sw], lower_out[sw]
        if routing.last[sw]:
            outputs[2 * sw], outputs[2 * sw + 1] = low, up
        else:
            outputs[2 * sw], outputs[2 * sw + 1] = up, low
    return outputs
