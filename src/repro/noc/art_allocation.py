"""ART virtual reduction-tree allocation.

MAERI's Augmented Reduction Tree claims "flexible support of multiple and
non-blocking virtual reduction trees over a single physical tree hardware
substrate". This module makes that claim executable: given the cluster
sizes the Mapper assigns to contiguous multiplier ranges, it constructs
each cluster's virtual tree over the physical binary tree —

1. decompose the cluster's leaf range into maximal *aligned* power-of-two
   blocks (each reduces conflict-free inside its own physical subtree);
2. chain the block partial sums left-to-right through the augmented
   horizontal links, one 3:1 adder merge per additional block —

and verifies the non-blocking property structurally: no physical adder is
claimed by two clusters, and the block count per cluster never exceeds
the ``2·log2(N)`` bound the decomposition guarantees.

The allocation also yields each virtual tree's latency (deepest block
plus the horizontal merge chain); the calibrated engine keeps its simpler
``log2(size)`` figure (virtual trees pipeline, so the difference only
moves the one-time drain), but the analysis is exposed for mapping
studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from repro.errors import ConfigurationError, MappingError


@dataclass(frozen=True)
class VirtualTree:
    """One cluster's embedding in the physical ART substrate."""

    cluster: int
    leaf_start: int
    leaf_count: int
    #: maximal aligned power-of-two blocks as (start_leaf, size)
    blocks: Tuple[Tuple[int, int], ...]
    #: physical adder nodes used, as (level, index) with leaves at level 0
    adder_nodes: FrozenSet[Tuple[int, int]]
    #: horizontal-link merges chaining the block partials
    horizontal_merges: int

    @property
    def latency(self) -> int:
        """Cycles from products entering to the cluster psum emerging."""
        deepest = max((int(math.log2(size)) for _s, size in self.blocks),
                      default=0)
        return deepest + self.horizontal_merges


def _aligned_blocks(start: int, count: int) -> List[Tuple[int, int]]:
    """Greedy maximal aligned power-of-two decomposition of a range."""
    blocks: List[Tuple[int, int]] = []
    position = start
    remaining = count
    while remaining:
        # largest power of two dividing `position` (unbounded at zero),
        # capped by the largest power of two fitting the remainder
        by_alignment = position & -position if position else remaining
        by_size = 1 << (remaining.bit_length() - 1)
        size = min(by_alignment, by_size)
        blocks.append((position, size))
        position += size
        remaining -= size
    return blocks


def _subtree_adders(start: int, size: int) -> FrozenSet[Tuple[int, int]]:
    """Internal adder nodes of the aligned subtree over [start, start+size)."""
    nodes = set()
    level = 1
    width = size // 2
    while width >= 1:
        first = start >> level
        nodes.update((level, first + i) for i in range(width))
        level += 1
        width //= 2
    return frozenset(nodes)


def allocate_virtual_trees(
    cluster_sizes: Sequence[int], num_leaves: int
) -> List[VirtualTree]:
    """Embed contiguous clusters into a ``num_leaves``-leaf ART substrate."""
    if num_leaves < 2 or num_leaves & (num_leaves - 1):
        raise ConfigurationError(
            f"the ART substrate needs a power-of-two leaf count, got {num_leaves}"
        )
    sizes = [int(size) for size in cluster_sizes]
    if any(size < 1 for size in sizes):
        raise MappingError("cluster sizes must be positive")
    if sum(sizes) > num_leaves:
        raise MappingError(
            f"clusters need {sum(sizes)} leaves but the substrate has {num_leaves}"
        )

    trees: List[VirtualTree] = []
    cursor = 0
    for cluster, size in enumerate(sizes):
        blocks = _aligned_blocks(cursor, size)
        adders: set = set()
        for start, block_size in blocks:
            adders |= _subtree_adders(start, block_size)
        trees.append(
            VirtualTree(
                cluster=cluster,
                leaf_start=cursor,
                leaf_count=size,
                blocks=tuple(blocks),
                adder_nodes=frozenset(adders),
                horizontal_merges=max(0, len(blocks) - 1),
            )
        )
        cursor += size

    _assert_non_blocking(trees, num_leaves)
    return trees


def _assert_non_blocking(trees: Sequence[VirtualTree], num_leaves: int) -> None:
    """Structural verification of the paper's non-blocking claim."""
    claimed: dict = {}
    bound = 2 * max(1, int(math.log2(num_leaves)))
    for tree in trees:
        if len(tree.blocks) > bound:
            raise MappingError(
                f"cluster {tree.cluster} decomposed into {len(tree.blocks)} "
                f"blocks, above the 2*log2(N) = {bound} bound"
            )
        if sum(size for _s, size in tree.blocks) != tree.leaf_count:
            raise MappingError(
                f"cluster {tree.cluster}: blocks do not cover its leaves"
            )
        for node in tree.adder_nodes:
            if node in claimed:
                raise MappingError(
                    f"physical adder {node} claimed by clusters "
                    f"{claimed[node]} and {tree.cluster}: not non-blocking"
                )
            claimed[node] = tree.cluster


def reduce_with_allocation(
    trees: Sequence[VirtualTree], leaf_values: Sequence[float]
) -> List[float]:
    """Functionally reduce leaf values through the allocated virtual trees.

    Each block sums inside its own subtree; block partials then merge via
    the horizontal chain. Returns one psum per cluster — asserted equal to
    the plain per-cluster sums in the tests, which is the end-to-end
    correctness of the embedding.
    """
    results = []
    for tree in trees:
        partials = [
            sum(leaf_values[start : start + size]) for start, size in tree.blocks
        ]
        total = partials[0]
        for partial in partials[1:]:
            total = total + partial  # one 3:1-adder horizontal merge each
        results.append(total)
    return results
