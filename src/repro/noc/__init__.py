"""On-chip network building blocks (paper Fig. 3b).

STONNE organizes every modeled accelerator as three network tiers:

- **Distribution Networks (DNs)** carry operands from the Global Buffer to
  the multipliers: Tree Network (TN, MAERI), Benes Network (BN, SIGMA) and
  Point-to-Point Network (PoPN, systolic arrays).
- **Multiplier Networks (MNs)** hold the Multiplier Switches (MSs):
  Linear MN (LMN, with neighbour forwarding links) and Disabled MN (DMN).
- **Reduction Networks (RNs)** accumulate cluster partial sums:
  Reduction Tree (RT), Augmented Reduction Tree (ART / ART+ACC),
  Forwarding Adder Network (FAN) and Linear Reduction Network (LRN).

Each block implements the :class:`~repro.noc.base.ClockedComponent`
protocol — a ``cycle()`` method plus activity counters — so the
``Accelerator`` top class can advance any composition cycle by cycle and
the output module can convert activity into energy (Section III, Output
Module).
"""

from repro.noc.art_allocation import (
    VirtualTree,
    allocate_virtual_trees,
    reduce_with_allocation,
)
from repro.noc.base import ClockedComponent, CounterSet
from repro.noc.benes_routing import BenesRouting, apply_routing, route_permutation
from repro.noc.distribution import (
    BenesNetwork,
    DistributionNetwork,
    PointToPointNetwork,
    TreeNetwork,
    build_distribution_network,
)
from repro.noc.fifo import Fifo
from repro.noc.multiplier import MultiplierNetwork, build_multiplier_network
from repro.noc.reduction import (
    AugmentedReductionTree,
    ForwardingAdderNetwork,
    LinearReductionNetwork,
    ReductionNetwork,
    ReductionTree,
    build_reduction_network,
)

__all__ = [
    "AugmentedReductionTree",
    "BenesRouting",
    "VirtualTree",
    "allocate_virtual_trees",
    "apply_routing",
    "reduce_with_allocation",
    "route_permutation",
    "BenesNetwork",
    "ClockedComponent",
    "CounterSet",
    "DistributionNetwork",
    "Fifo",
    "ForwardingAdderNetwork",
    "LinearReductionNetwork",
    "MultiplierNetwork",
    "PointToPointNetwork",
    "ReductionNetwork",
    "ReductionTree",
    "TreeNetwork",
    "build_distribution_network",
    "build_multiplier_network",
    "build_reduction_network",
]
