"""Distribution Networks: GB → multiplier operand delivery.

Three fabrics from the paper (Section IV-A-1):

- :class:`TreeNetwork` — MAERI's replicated binary distribution trees;
  single-cycle unicast/multicast/broadcast, one tree per GB read port.
- :class:`BenesNetwork` — SIGMA's N-input N-output non-blocking Benes
  topology with ``2*log2(N) + 1`` switch levels; single-cycle
  unicast/multicast/broadcast.
- :class:`PointToPointNetwork` — unicast-only links, the building block of
  systolic-array operand delivery (TPU).

The timing contract shared by the engines is *bandwidth-limited delivery*:
the Global Buffer can hand the fabric at most ``bandwidth`` elements per
cycle. Multicast-capable fabrics charge one bandwidth slot per **unique**
value regardless of fan-out (this is precisely the mechanism whose loss
makes analytical models optimistic — Fig. 1b); the point-to-point fabric
charges one slot per destination.

Deliveries are modeled with a pending-work queue drained by ``cycle()``.
``delivery_cycles``/``record_delivery`` provide the batched equivalent the
engines use for cycle-exact fast-forwarding.
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:
    from repro.config.hardware import DistributionKind

from repro.errors import ConfigurationError
from repro.noc.base import ClockedComponent


def _log2_ceil(value: int) -> int:
    return max(1, math.ceil(math.log2(value))) if value > 1 else 0


class DistributionNetwork(ClockedComponent):
    """Common bandwidth/queue behaviour for all DN fabrics."""

    #: aggregate counter the per-level fabric decomposition must sum to
    #: (the point-to-point fabric has no switches and anchors wires)
    fabric_counter = "dn_switch_traversals"

    def __init__(self, name: str, num_leaves: int, bandwidth: int) -> None:
        super().__init__(name)
        if num_leaves < 2:
            raise ConfigurationError("a DN needs at least 2 leaves")
        if not 1 <= bandwidth <= num_leaves:
            raise ConfigurationError(
                f"DN bandwidth must be in [1, {num_leaves}], got {bandwidth}"
            )
        self.num_leaves = num_leaves
        self.bandwidth = bandwidth
        self._pending_slots = 0

    @property
    def supports_multicast(self) -> bool:
        """Whether one value can reach many MSs in one bandwidth slot."""
        return self._bandwidth_slots(1, 2) == 1

    # ---- topology-specific costs -------------------------------------
    @property
    @abc.abstractmethod
    def pipeline_latency(self) -> int:
        """Cycles for one element to traverse GB → MS (pipeline depth)."""

    @abc.abstractmethod
    def _bandwidth_slots(self, unique_values: int, destinations: int) -> int:
        """GB read-port slots consumed by one delivery."""

    @abc.abstractmethod
    def _switch_traversals(self, unique_values: int, destinations: int) -> int:
        """Switch activations charged to the energy model."""

    @abc.abstractmethod
    def _wire_traversals(self, unique_values: int, destinations: int) -> int:
        """Link activations charged to the energy model."""

    # ---- spatial fabric decomposition --------------------------------
    @abc.abstractmethod
    def fabric_level_widths(self) -> List[int]:
        """Physical links per tree level, root-first."""

    @abc.abstractmethod
    def fabric_level_traversals(
        self, unique_values: int, destinations: int
    ) -> List[int]:
        """Per-level split of one delivery's :attr:`fabric_counter` charge.

        The entries sum *exactly* to what :meth:`enqueue` adds to the
        anchor counter for the same arguments — the consistency
        invariant the fabric ledger enforces at finalize.
        """

    def record_fabric_traversals(
        self, unique_values: int, destinations: int, times: int = 1
    ) -> None:
        """Charge ``times`` deliveries' spatial split to the fabric ledger.

        :meth:`enqueue` calls this once per delivery; the batched
        accounting paths (weight-load scaling, the vector engine's
        closed-form sites) call it with the same (unique, destinations)
        arguments and their repeat count, so cycle and vector runs
        accumulate identical ledgers.
        """
        fabric = self.obs.fabric
        if fabric is None:
            return
        fabric.charge_levels(
            "dn",
            self.fabric_counter,
            self.fabric_level_traversals(unique_values, destinations),
            self.fabric_level_widths(),
            times=times,
        )

    # ---- queue/cycle protocol ----------------------------------------
    def enqueue(self, unique_values: int, destinations: int) -> None:
        """Queue a delivery of ``unique_values`` distinct elements that
        together reach ``destinations`` multiplier switches."""
        self._validate(unique_values, destinations)
        self._pending_slots += self._bandwidth_slots(unique_values, destinations)
        self.counters.add("dn_switch_traversals", self._switch_traversals(unique_values, destinations))
        self.counters.add("dn_wire_traversals", self._wire_traversals(unique_values, destinations))
        self.counters.add("dn_elements_sent", unique_values)
        self.record_fabric_traversals(unique_values, destinations)

    @property
    def pending_slots(self) -> int:
        return self._pending_slots

    @property
    def is_idle(self) -> bool:
        return self._pending_slots == 0

    def cycle(self) -> None:
        delivered = min(self.bandwidth, self._pending_slots)
        self._pending_slots -= delivered
        if delivered:
            self.counters.add("dn_busy_cycles", 1)
        self._current_cycle += 1

    def skip_cycles(self, count: int) -> None:
        """Batched :meth:`cycle`: drains ``count`` cycles of bandwidth."""
        if count < 0:
            raise ValueError("cannot skip a negative number of cycles")
        busy = min(count, math.ceil(self._pending_slots / self.bandwidth))
        self._pending_slots = max(0, self._pending_slots - count * self.bandwidth)
        self.counters.add("dn_busy_cycles", busy)
        self._current_cycle += count

    def drain_cycles(self) -> int:
        """Cycles needed to drain the current queue at full bandwidth."""
        return math.ceil(self._pending_slots / self.bandwidth)

    # ---- batched helpers used by the engines ---------------------------
    def delivery_cycles(self, unique_values: int, destinations: int) -> int:
        """Cycles to push one delivery through the GB read ports."""
        self._validate(unique_values, destinations)
        return math.ceil(self._bandwidth_slots(unique_values, destinations) / self.bandwidth)

    def record_delivery(self, unique_values: int, destinations: int) -> int:
        """Account a whole delivery at once; returns the cycles consumed."""
        cycles = self.delivery_cycles(unique_values, destinations)
        self.enqueue(unique_values, destinations)
        self.skip_cycles(cycles)
        return cycles

    def _validate(self, unique_values: int, destinations: int) -> None:
        if unique_values < 0 or destinations < 0:
            raise ValueError("delivery sizes must be non-negative")
        if destinations > 0 and unique_values == 0:
            raise ValueError("a delivery with destinations needs values")

    def reset(self) -> None:
        super().reset()
        self._pending_slots = 0


class TreeNetwork(DistributionNetwork):
    """MAERI-style replicated binary distribution trees.

    The physical fabric replicates a ``num_leaves``-leaf binary tree once
    per GB read port (``bandwidth`` trees). A multicast of one value to
    ``d`` destinations activates the switches along the covering subtree:
    ``depth`` levels down plus the extra branches that split towards each
    destination, i.e. about ``depth + (d - 1)`` switch hops.
    """

    def __init__(self, num_leaves: int, bandwidth: int, name: str = "dn-tree") -> None:
        super().__init__(name, num_leaves, bandwidth)
        self.depth = _log2_ceil(num_leaves)

    @property
    def pipeline_latency(self) -> int:
        # Single-cycle delivery per the paper: the whole tree traversal
        # completes within one clock once a read-port slot is granted.
        return 1

    @property
    def num_switches(self) -> int:
        """Switches in one tree replica (internal nodes of a binary tree)."""
        return self.num_leaves - 1

    def _bandwidth_slots(self, unique_values: int, destinations: int) -> int:
        return unique_values

    def _switch_traversals(self, unique_values: int, destinations: int) -> int:
        if unique_values == 0:
            return 0
        fanout = max(1, destinations // max(unique_values, 1))
        return unique_values * (self.depth + max(0, fanout - 1))

    def _wire_traversals(self, unique_values: int, destinations: int) -> int:
        # One link per switch hop plus the final switch→MS links.
        return self._switch_traversals(unique_values, destinations) + destinations

    def fabric_level_widths(self) -> List[int]:
        # Root-first tournament halving: [1, 2, 4, ...] for power-of-two
        # leaf counts; the widths always sum to num_leaves - 1 switches.
        from repro.observability.fabric import tournament_levels

        return list(reversed(tournament_levels(self.num_leaves)))

    def fabric_level_traversals(
        self, unique_values: int, destinations: int
    ) -> List[int]:
        # Each unique value crosses one switch per level; the multicast
        # replication hops all land in the leaf-adjacent level, where the
        # covering subtree splits towards the destinations.
        if unique_values == 0:
            return [0] * self.depth
        fanout = max(1, destinations // max(unique_values, 1))
        levels = [unique_values] * self.depth
        levels[-1] += unique_values * max(0, fanout - 1)
        return levels


class BenesNetwork(DistributionNetwork):
    """SIGMA-style Benes topology: ``2*log2(N)+1`` levels of 2x2 switches.

    Non-blocking: any unicast/multicast pattern routes in a single pass.
    Every element traverses all levels, so the per-element switch cost is
    the level count (cheap switches, but more of them than a tree).
    """

    def __init__(self, num_leaves: int, bandwidth: int, name: str = "dn-benes") -> None:
        super().__init__(name, num_leaves, bandwidth)
        self.levels = 2 * _log2_ceil(num_leaves) + 1

    @property
    def pipeline_latency(self) -> int:
        return 1

    @property
    def num_switches(self) -> int:
        """2x2 switches in the fabric: N/2 per level."""
        return (self.num_leaves // 2) * self.levels

    def _bandwidth_slots(self, unique_values: int, destinations: int) -> int:
        return unique_values

    def _switch_traversals(self, unique_values: int, destinations: int) -> int:
        if unique_values == 0:
            return 0
        # Multicast replication happens progressively across levels; charge
        # the dominant term: each *delivered copy* exits through the last
        # level, and each unique value walks all levels once.
        return unique_values * self.levels + max(0, destinations - unique_values)

    def _wire_traversals(self, unique_values: int, destinations: int) -> int:
        return self._switch_traversals(unique_values, destinations) + destinations

    def fabric_level_widths(self) -> List[int]:
        return [self.num_leaves // 2] * self.levels

    def fabric_level_traversals(
        self, unique_values: int, destinations: int
    ) -> List[int]:
        # Every unique value walks all levels; the multicast copies exit
        # through the final level towards their destinations.
        if unique_values == 0:
            return [0] * self.levels
        levels = [unique_values] * self.levels
        levels[-1] += max(0, destinations - unique_values)
        return levels


class PointToPointNetwork(DistributionNetwork):
    """Unicast-only operand links for systolic arrays (TPU).

    No multicast: a value reaching ``d`` processing elements consumes ``d``
    bandwidth slots (in a real systolic array reuse happens *spatially* by
    neighbour forwarding inside the PE grid, which the systolic engine
    models; the DN itself only feeds array edges).
    """

    #: no switches to decompose — the single link stage anchors wires
    fabric_counter = "dn_wire_traversals"

    def __init__(self, num_leaves: int, bandwidth: int, name: str = "dn-pop") -> None:
        super().__init__(name, num_leaves, bandwidth)

    @property
    def pipeline_latency(self) -> int:
        return 1

    @property
    def num_switches(self) -> int:
        return 0

    def _bandwidth_slots(self, unique_values: int, destinations: int) -> int:
        return max(unique_values, destinations)

    def _switch_traversals(self, unique_values: int, destinations: int) -> int:
        return 0

    def _wire_traversals(self, unique_values: int, destinations: int) -> int:
        return max(unique_values, destinations)

    def fabric_level_widths(self) -> List[int]:
        return [self.num_leaves]

    def fabric_level_traversals(
        self, unique_values: int, destinations: int
    ) -> List[int]:
        return [max(unique_values, destinations)]


def build_distribution_network(kind: DistributionKind, num_leaves: int, bandwidth: int) -> DistributionNetwork:
    """Factory keyed on :class:`repro.config.DistributionKind`."""
    from repro.config.hardware import DistributionKind

    if kind is DistributionKind.TREE:
        return TreeNetwork(num_leaves, bandwidth)
    if kind is DistributionKind.BENES:
        return BenesNetwork(num_leaves, bandwidth)
    if kind is DistributionKind.POINT_TO_POINT:
        return PointToPointNetwork(num_leaves, bandwidth)
    raise ConfigurationError(f"unknown distribution network kind: {kind!r}")
