"""Multiplier Networks: the compute tier (paper Section IV-A-2).

A Multiplier Network is a row of Multiplier Switches (MSs). Each MS can be
configured as a *multiplier* (holds a stationary operand, multiplies it
with a streamed operand) or as a *forwarder* (passes psums from the GB to
the RN so folding works without an accumulation buffer).

Two topologies:

- :class:`MultiplierNetwork` in ``linear`` mode (LMN) adds forwarding links
  between neighbouring MSs, letting convolution sliding windows reuse
  operands spatially instead of re-reading the Global Buffer (MAERI, TPU).
- ``disabled`` mode (DMN) removes those links — the fabric of pure-GEMM
  accelerators (SIGMA, SpArch) where sliding-window reuse does not exist.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.config.hardware import MultiplierKind

from repro.errors import ConfigurationError, MappingError
from repro.noc.base import ClockedComponent


class MultiplierNetwork(ClockedComponent):
    """A configurable row of multiplier switches."""

    def __init__(
        self, num_ms: int, forwarding: bool, name: str = "mn"
    ) -> None:
        super().__init__(name)
        if num_ms < 1:
            raise ConfigurationError("a multiplier network needs at least 1 MS")
        self.num_ms = num_ms
        self.forwarding = forwarding
        self._cluster_sizes: tuple = ()
        self._forwarder_count = 0

    # ---- configuration (driven by the Mapper through the Config Unit) ----
    def configure_clusters(
        self, cluster_sizes: Sequence[int], forwarders: int = 0
    ) -> None:
        """Partition the MS row into virtual-neuron clusters.

        ``cluster_sizes`` lists the multipliers per simultaneous dot
        product; ``forwarders`` MSs are set aside to inject psums for
        folding. The total must fit the physical row.
        """
        sizes = tuple(int(size) for size in cluster_sizes)
        if any(size < 1 for size in sizes):
            raise MappingError("cluster sizes must be positive")
        used = sum(sizes) + forwarders
        if used > self.num_ms:
            raise MappingError(
                f"mapping needs {used} multiplier switches but only "
                f"{self.num_ms} exist"
            )
        self._cluster_sizes = sizes
        self._forwarder_count = forwarders
        self.counters.add("mn_reconfigurations", 1)

    @property
    def cluster_sizes(self) -> tuple:
        return self._cluster_sizes

    @property
    def multipliers_in_use(self) -> int:
        return sum(self._cluster_sizes)

    @property
    def forwarder_count(self) -> int:
        return self._forwarder_count

    @property
    def utilization(self) -> float:
        """Fraction of MSs doing useful multiplies under this mapping."""
        return self.multipliers_in_use / self.num_ms

    # ---- activity ------------------------------------------------------
    def record_multiplications(self, count: int) -> None:
        if count < 0:
            raise ValueError("multiplication count must be non-negative")
        self.counters.add("mn_multiplications", count)
        fabric = self.obs.fabric
        if fabric is not None and count:
            # one flat level of MS links; the finalize-time spread narrows
            # to the multipliers the mapping actually uses
            fabric.charge_levels(
                "mn",
                "mn_multiplications",
                [count],
                [self.num_ms],
                active=[self.multipliers_in_use or self.num_ms],
            )

    def record_forwarding(self, count: int) -> None:
        """Operand hops over the neighbour forwarding links (LMN only)."""
        if count < 0:
            raise ValueError("forwarding count must be non-negative")
        if count and not self.forwarding:
            raise MappingError(
                "forwarding links are disabled in this multiplier network (DMN)"
            )
        self.counters.add("mn_forwarding_hops", count)

    def record_psum_injections(self, count: int) -> None:
        """Psums pushed through forwarder MSs (folding without acc buffer)."""
        self.counters.add("mn_psum_injections", count)

    def cycle(self) -> None:
        self._current_cycle += 1

    def reset(self) -> None:
        super().reset()
        self._cluster_sizes = ()
        self._forwarder_count = 0


def build_multiplier_network(kind: MultiplierKind, num_ms: int) -> MultiplierNetwork:
    """Factory keyed on :class:`repro.config.MultiplierKind`."""
    from repro.config.hardware import MultiplierKind

    if kind is MultiplierKind.LINEAR:
        return MultiplierNetwork(num_ms, forwarding=True, name="mn-linear")
    if kind is MultiplierKind.DISABLED:
        return MultiplierNetwork(num_ms, forwarding=False, name="mn-disabled")
    raise ConfigurationError(f"unknown multiplier network kind: {kind!r}")
