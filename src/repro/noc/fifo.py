"""Bounded FIFO with occupancy statistics.

FIFOs decouple the network tiers (GB→DN, DN→MN, MN→RN, RN→GB). The
output module reports their push/pop activity ("activity counts of
different components such as wires, FIFOs or SRAM usage") and peak
occupancy, and the engines use fullness for backpressure.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.errors import SimulationError


class Fifo:
    """A depth-bounded queue that counts pushes, pops and peak occupancy."""

    def __init__(self, name: str, depth: int) -> None:
        if depth < 1:
            raise SimulationError(f"FIFO {name!r} needs depth >= 1, got {depth}")
        self.name = name
        self.depth = depth
        self._items: Deque[Any] = deque()
        self.pushes = 0
        self.pops = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.depth

    @property
    def is_empty(self) -> bool:
        return not self._items

    def push(self, item: Any) -> None:
        if self.is_full:
            raise SimulationError(
                f"push to full FIFO {self.name!r} (depth {self.depth}); the "
                "producer must respect backpressure"
            )
        self._items.append(item)
        self.pushes += 1
        if len(self._items) > self.peak_occupancy:
            self.peak_occupancy = len(self._items)

    def pop(self) -> Any:
        if self.is_empty:
            raise SimulationError(f"pop from empty FIFO {self.name!r}")
        self.pops += 1
        return self._items.popleft()

    def peek(self) -> Optional[Any]:
        return self._items[0] if self._items else None

    @property
    def watermark_fraction(self) -> float:
        """Peak occupancy as a fraction of capacity (1.0 = was full)."""
        return self.peak_occupancy / self.depth

    def occupancy_stats(self) -> Dict[str, int]:
        """Occupancy summary in the fabric ledger's FIFO payload shape.

        The keys mirror :data:`repro.observability.fabric.FIFO_ANCHORS`
        records, so a real FIFO's lifetime stats and the synthetic
        tier-boundary FIFO records render through the same surfaces.
        """
        return {
            "capacity": self.depth,
            "pushes": self.pushes,
            "pops": self.pops,
            "high_watermark": self.peak_occupancy,
        }

    def reset(self) -> None:
        self._items.clear()
        self.pushes = 0
        self.pops = 0
        self.peak_occupancy = 0

    def __repr__(self) -> str:
        return (
            f"Fifo(name={self.name!r}, depth={self.depth}, "
            f"occupancy={len(self._items)})"
        )
