"""Component protocol and activity counters.

The paper's Fig. 4 class diagram gives every microarchitectural component a
``cycle()`` method and lets the top-level ``Accelerator`` iterate over the
configured components each clock. :class:`ClockedComponent` is that
contract. :class:`CounterSet` is the *counter file* backing store: a named
multiset of activity events (multiplications, wire traversals, SRAM
accesses, ...) that the output module later prices with the energy tables.
"""

from __future__ import annotations

import abc
from collections import Counter
from typing import TYPE_CHECKING, Dict, Iterator

if TYPE_CHECKING:
    from repro.observability.tracer import NullTracer


class CounterSet:
    """Named activity counters with dictionary-like access.

    Counters are created lazily on first increment so components do not
    need to pre-declare every event they may emit. Values are plain ints;
    merging two sets adds them key-wise (used to aggregate per-layer stats
    into per-model totals).
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def add(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"cannot add negative activity {amount} to {name!r}")
        if amount:
            self._counts[name] += int(amount)

    def get(self, name: str) -> int:
        return int(self._counts.get(name, 0))

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._counts))

    def __len__(self) -> int:
        return len(self._counts)

    def merge(self, other: "CounterSet") -> None:
        self._counts.update(other._counts)

    def diff(self, earlier: "CounterSet") -> "CounterSet":
        """Counters accumulated since the ``earlier`` snapshot."""
        result = CounterSet()
        for name, value in self._counts.items():
            delta = value - earlier.get(name)
            if delta < 0:
                raise ValueError(
                    f"counter {name!r} went backwards ({value} < {earlier.get(name)})"
                )
            if delta:
                result.add(name, delta)
        return result

    def copy(self) -> "CounterSet":
        result = CounterSet()
        result._counts = Counter(self._counts)
        return result

    def scaled(self, factor: int) -> "CounterSet":
        """A copy with every counter multiplied by ``factor``."""
        result = CounterSet()
        for name, value in self._counts.items():
            result.add(name, value * factor)
        return result

    def as_dict(self) -> Dict[str, int]:
        return {name: int(value) for name, value in sorted(self._counts.items())}

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:
        return f"CounterSet({self.as_dict()})"


class ClockedComponent(abc.ABC):
    """A component the Accelerator advances one clock at a time.

    Components may internally *batch* several cycles of regular behaviour
    (e.g. a distribution network draining a queue at a fixed bandwidth) via
    :meth:`skip_cycles`; this keeps pure-Python simulation tractable while
    producing exactly the cycle counts a one-cycle-at-a-time loop would.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.counters = CounterSet()
        self._current_cycle = 0
        # deferred import: repro.observability.context imports this module
        from repro.observability.context import DISABLED

        #: observability context; the Accelerator replaces the shared
        #: disabled default with its own when it adopts the component
        self.obs = DISABLED

    @property
    def tracer(self) -> NullTracer:
        """The attached event tracer (the no-op NullTracer by default)."""
        return self.obs.tracer

    @property
    def current_cycle(self) -> int:
        return self._current_cycle

    @abc.abstractmethod
    def cycle(self) -> None:
        """Advance the component by one clock."""

    def skip_cycles(self, count: int) -> None:
        """Advance ``count`` clocks of regular (no-event) behaviour."""
        if count < 0:
            raise ValueError("cannot skip a negative number of cycles")
        for _ in range(count):
            self.cycle()

    def reset(self) -> None:
        """Return to the post-construction state, clearing statistics."""
        self.counters.reset()
        self._current_cycle = 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
