"""Reduction Networks: psum accumulation (paper Section IV-A-3).

- :class:`ReductionTree` (RT) — a plain binary adder tree; reduces one
  fixed power-of-two cluster spanning the whole fabric.
- :class:`AugmentedReductionTree` (ART / ART+ACC) — MAERI's tree with 3:1
  adders and same-level horizontal links, supporting multiple
  arbitrary-size non-blocking virtual reduction trees; the ``+ACC``
  variant adds accumulators at the outputs so fold psums pipeline without
  looping back through the distribution network.
- :class:`ForwardingAdderNetwork` (FAN) — SIGMA's cheaper equivalent of
  ART built from 2:1 adders with forwarding links.
- :class:`LinearReductionNetwork` (LRN) — the sequential accumulation used
  by rigid designs (TPU, Eyeriss, ShiDianNao): one accumulator per lane,
  one operand folded in per cycle.

Timing contract used by the engines: tree-based RNs are *pipelined* — they
accept one new wave of products per cycle and add ``reduction_latency``
cycles of fill/drain; the linear RN serializes each cluster.
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:
    from repro.config.hardware import ReductionKind

from repro.errors import ConfigurationError, MappingError
from repro.noc.base import ClockedComponent


def _log2_ceil(value: int) -> int:
    return max(0, math.ceil(math.log2(value))) if value > 1 else 0


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class ReductionNetwork(ClockedComponent):
    """Common cluster bookkeeping for all RN fabrics."""

    #: adder fan-in of the switch type (3 for ART, 2 otherwise)
    adder_fan_in = 2
    #: activity counter name for adder operations; ART's 3:1 switches are
    #: priced separately by the energy table
    adder_counter = "rn_adder_ops"
    #: whether arbitrary simultaneous cluster sizes are supported
    variable_clusters = False
    #: whether fold psums accumulate at the RN output (ART+ACC / FAN+ACC)
    has_accumulators = False

    def __init__(self, num_inputs: int, bandwidth: int, name: str) -> None:
        super().__init__(name)
        if num_inputs < 2:
            raise ConfigurationError("an RN needs at least 2 inputs")
        if not 1 <= bandwidth <= num_inputs:
            raise ConfigurationError(
                f"RN bandwidth must be in [1, {num_inputs}], got {bandwidth}"
            )
        self.num_inputs = num_inputs
        self.bandwidth = bandwidth
        self._cluster_sizes: tuple = ()

    # ---- configuration --------------------------------------------------
    def configure_clusters(self, cluster_sizes: Sequence[int]) -> None:
        sizes = tuple(int(size) for size in cluster_sizes)
        if any(size < 1 for size in sizes):
            raise MappingError("cluster sizes must be positive")
        if sum(sizes) > self.num_inputs:
            raise MappingError(
                f"clusters need {sum(sizes)} RN inputs but only "
                f"{self.num_inputs} exist"
            )
        self._validate_clusters(sizes)
        self._cluster_sizes = sizes
        self.counters.add("rn_reconfigurations", 1)

    def _validate_clusters(self, sizes: tuple) -> None:
        if self.variable_clusters:
            # arbitrary simultaneous sizes must embed as non-blocking
            # virtual trees over the physical substrate — construct the
            # embedding to prove it (repro.noc.art_allocation)
            from repro.noc.art_allocation import allocate_virtual_trees

            allocate_virtual_trees(sizes, self.num_inputs)
            return
        if len(set(sizes)) > 1:
            raise MappingError(
                f"{type(self).__name__} only supports uniform cluster sizes, "
                f"got {sorted(set(sizes))}"
            )

    @property
    def cluster_sizes(self) -> tuple:
        return self._cluster_sizes

    # ---- timing -----------------------------------------------------------
    @abc.abstractmethod
    def reduction_latency(self, cluster_size: int) -> int:
        """Cycles from products entering the RN to the cluster psum exiting."""

    @property
    def pipelined(self) -> bool:
        """Whether a new wave of products can enter every cycle."""
        return True

    def output_cycles(self, outputs: int) -> int:
        """Cycles to push ``outputs`` completed psums to the write port."""
        return math.ceil(outputs / self.bandwidth) if outputs else 0

    # ---- spatial fabric decomposition -----------------------------------
    def fabric_level_widths(self) -> List[int]:
        """Physical adders per tree level, leaf-adjacent first."""
        from repro.observability.fabric import tournament_levels

        return tournament_levels(self.num_inputs)

    def fabric_reduction_levels(self, cluster_size: int) -> List[int]:
        """Per-level adder ops of one cluster wave, leaf-adjacent first.

        A ``cluster_size``-leaf virtual tree exercises the tournament
        halving of its leaves — the entries sum to ``cluster_size - 1``,
        exactly the :attr:`adder_counter` charge of one wave — padded
        with zeros to the physical depth so every cluster shape charges
        the same level geometry.
        """
        from repro.observability.fabric import tournament_levels

        counts = tournament_levels(cluster_size)
        depth = len(self.fabric_level_widths())
        return counts + [0] * (depth - len(counts))

    def _record_fabric_reductions(self, cluster_size: int, waves: int) -> None:
        fabric = self.obs.fabric
        if fabric is None:
            return
        fabric.charge_levels(
            "rn",
            self.adder_counter,
            self.fabric_reduction_levels(cluster_size),
            self.fabric_level_widths(),
            times=waves,
        )

    # ---- activity -----------------------------------------------------------
    def record_reduction_wave(self, cluster_sizes: Sequence[int]) -> None:
        """Account one wave of cluster reductions (adders + wires)."""
        adders = sum(max(0, size - 1) for size in cluster_sizes)
        wires = sum(self._wave_wires(size) for size in cluster_sizes)
        self.counters.add(self.adder_counter, adders)
        self.counters.add("rn_wire_traversals", wires)
        for size in cluster_sizes:
            self._record_fabric_reductions(int(size), 1)

    def record_cluster_reductions(self, cluster_size: int, waves: int) -> None:
        """Account ``waves`` reduction waves of one ``cluster_size`` cluster.

        The shared charging site of the dense cycle walk, the vector
        engine's closed-form path and the sparse controller — replacing
        their former inline counter adds, byte for byte: the wire charge
        is the inline sites' ``2*size - 1`` (deliberately *not*
        :meth:`_wave_wires`, which the linear RN narrows), and the fabric
        split sums to the adder charge exactly.
        """
        size = int(cluster_size)
        if waves <= 0 or size <= 0:
            return
        self.counters.add(self.adder_counter, waves * max(0, size - 1))
        self.counters.add("rn_wire_traversals", waves * (2 * size - 1))
        self._record_fabric_reductions(size, waves)

    def _wave_wires(self, cluster_size: int) -> int:
        # Every product and every intermediate psum travels one link.
        return 2 * cluster_size - 1 if cluster_size else 0

    def record_accumulations(self, count: int) -> None:
        """Fold psum accumulations at the RN output accumulators."""
        self.counters.add("rn_accumulator_ops", count)

    def record_outputs(self, count: int) -> None:
        self.counters.add("rn_outputs_written", count)

    def cycle(self) -> None:
        self._current_cycle += 1

    def reset(self) -> None:
        super().reset()
        self._cluster_sizes = ()


class ReductionTree(ReductionNetwork):
    """Plain binary adder tree: fixed power-of-two clusters."""

    adder_fan_in = 2
    variable_clusters = False

    def __init__(self, num_inputs: int, bandwidth: int, name: str = "rn-rt") -> None:
        super().__init__(num_inputs, bandwidth, name)
        self.depth = _log2_ceil(num_inputs)

    def _validate_clusters(self, sizes: tuple) -> None:
        super()._validate_clusters(sizes)
        for size in sorted(set(sizes)):
            if not _is_power_of_two(size):
                raise MappingError(
                    f"a plain reduction tree needs power-of-two clusters, got {size}"
                )

    def reduction_latency(self, cluster_size: int) -> int:
        return _log2_ceil(cluster_size)

    @property
    def num_adders(self) -> int:
        return self.num_inputs - 1


class AugmentedReductionTree(ReductionNetwork):
    """MAERI's ART: 3:1 adder switches + horizontal forwarding links.

    Arbitrary simultaneous cluster sizes map as non-blocking virtual trees
    over the single physical substrate. With ``accumulate=True`` (ART+ACC)
    a bank of accumulators sits at the outputs so consecutive fold psums
    pipeline without any loop through the DN.
    """

    adder_fan_in = 3
    variable_clusters = True
    adder_counter = "rn_adder_ops_3to1"

    def __init__(
        self,
        num_inputs: int,
        bandwidth: int,
        accumulate: bool = False,
        name: str = "rn-art",
    ) -> None:
        super().__init__(num_inputs, bandwidth, name)
        self.depth = _log2_ceil(num_inputs)
        self.has_accumulators = accumulate

    def reduction_latency(self, cluster_size: int) -> int:
        # 3:1 switches collapse levels slightly, but the virtual tree still
        # spans ceil(log2(size)) levels of the physical substrate.
        return _log2_ceil(cluster_size) + (1 if self.has_accumulators else 0)

    @property
    def num_adders(self) -> int:
        return self.num_inputs - 1


class ForwardingAdderNetwork(ReductionNetwork):
    """SIGMA's FAN: ART-equivalent flexibility from cheaper 2:1 adders.

    FAN always ships with output accumulators in SIGMA, so fold psums
    pipeline exactly as with ART+ACC.
    """

    adder_fan_in = 2
    variable_clusters = True
    has_accumulators = True

    def __init__(self, num_inputs: int, bandwidth: int, name: str = "rn-fan") -> None:
        super().__init__(num_inputs, bandwidth, name)
        self.depth = _log2_ceil(num_inputs)

    def reduction_latency(self, cluster_size: int) -> int:
        return _log2_ceil(cluster_size) + 1

    @property
    def num_adders(self) -> int:
        return self.num_inputs - 1


class LinearReductionNetwork(ReductionNetwork):
    """Sequential per-lane accumulation (TPU / Eyeriss / ShiDianNao).

    Each cluster owns an accumulator that folds in one product per cycle,
    so reducing a cluster of size ``n`` takes ``n`` cycles and the network
    is **not** wave-pipelined across distinct clusters sharing a lane.
    """

    adder_fan_in = 2
    variable_clusters = False
    has_accumulators = True

    def __init__(self, num_inputs: int, bandwidth: int, name: str = "rn-lrn") -> None:
        super().__init__(num_inputs, bandwidth, name)

    def reduction_latency(self, cluster_size: int) -> int:
        return max(1, cluster_size)

    @property
    def pipelined(self) -> bool:
        return False

    def _wave_wires(self, cluster_size: int) -> int:
        # products hop through the accumulator chain once each
        return cluster_size

    def fabric_level_widths(self) -> List[int]:
        # one flat bank of per-lane accumulators — a single level
        return [self.num_inputs]

    def fabric_reduction_levels(self, cluster_size: int) -> List[int]:
        return [max(0, int(cluster_size) - 1)]

    @property
    def num_adders(self) -> int:
        return self.num_inputs


def build_reduction_network(kind: ReductionKind, num_inputs: int, bandwidth: int, accumulation_buffer: bool = True) -> ReductionNetwork:
    """Factory keyed on :class:`repro.config.ReductionKind`."""
    from repro.config.hardware import ReductionKind

    if kind is ReductionKind.RT:
        return ReductionTree(num_inputs, bandwidth)
    if kind is ReductionKind.ART:
        return AugmentedReductionTree(num_inputs, bandwidth, accumulate=accumulation_buffer)
    if kind is ReductionKind.ART_ACC:
        return AugmentedReductionTree(num_inputs, bandwidth, accumulate=True, name="rn-art-acc")
    if kind is ReductionKind.FAN:
        return ForwardingAdderNetwork(num_inputs, bandwidth)
    if kind is ReductionKind.LINEAR:
        return LinearReductionNetwork(num_inputs, bandwidth)
    raise ConfigurationError(f"unknown reduction network kind: {kind!r}")
