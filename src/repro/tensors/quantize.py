"""Low-precision datatype emulation.

The paper runs its use cases with FP8 operands and notes that the output
module's statistics "depend on the particular data format (e.g., FP16 or
INT8)". The simulator prices energy/area by the configured
:class:`~repro.config.DataType`; this module provides the matching *value*
transformations, so a model can actually be run with quantization-faithful
numerics and validated end to end:

- symmetric linear INT8 quantization (scale = max|x| / 127), and
- FP8 E4M3-style rounding (1 sign, 4 exponent, 3 mantissa bits).

Both are emulated in float32 via fake-quantization (quantize-dequantize),
the standard approach for studying numerical effects without integer
kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.hardware import DataType
from repro.errors import ConfigurationError

_FP8_MAX = 448.0  # largest normal E4M3 value
_FP8_MANTISSA_BITS = 3
_FP8_MIN_EXP = -6  # smallest normal exponent of E4M3


@dataclass(frozen=True)
class QuantizationInfo:
    """Bookkeeping of one tensor's quantization."""

    dtype: DataType
    scale: float
    max_abs_error: float


def quantize_int8(tensor: np.ndarray) -> tuple:
    """Symmetric per-tensor INT8 fake quantization.

    Returns ``(dequantized float32 tensor, QuantizationInfo)``.
    """
    tensor = np.asarray(tensor, dtype=np.float32)
    peak = float(np.abs(tensor).max()) if tensor.size else 0.0
    if peak == 0.0:
        return tensor.copy(), QuantizationInfo(DataType.INT8, 1.0, 0.0)
    scale = peak / 127.0
    levels = np.clip(np.round(tensor / scale), -127, 127)
    dequantized = (levels * scale).astype(np.float32)
    error = float(np.abs(dequantized - tensor).max())
    return dequantized, QuantizationInfo(DataType.INT8, scale, error)


def quantize_fp8(tensor: np.ndarray) -> tuple:
    """E4M3-style FP8 fake quantization (round-to-nearest mantissa)."""
    tensor = np.asarray(tensor, dtype=np.float32)
    if tensor.size == 0:
        return tensor.copy(), QuantizationInfo(DataType.FP8, 1.0, 0.0)
    clipped = np.clip(tensor, -_FP8_MAX, _FP8_MAX)
    mantissa, exponent = np.frexp(clipped)
    # flush subnormals below the E4M3 range to zero
    tiny = exponent < _FP8_MIN_EXP
    steps = 2.0 ** (_FP8_MANTISSA_BITS + 1)  # frexp mantissa in [0.5, 1)
    mantissa = np.round(mantissa * steps) / steps
    rounded = np.ldexp(mantissa, exponent).astype(np.float32)
    rounded[tiny] = 0.0
    error = float(np.abs(rounded - tensor).max())
    return rounded, QuantizationInfo(DataType.FP8, 1.0, error)


def quantize(tensor: np.ndarray, dtype: DataType) -> tuple:
    """Dispatch on the configured datatype; FP16/FP32 round-trip natively."""
    if dtype is DataType.INT8:
        return quantize_int8(tensor)
    if dtype is DataType.FP8:
        return quantize_fp8(tensor)
    if dtype is DataType.FP16:
        cast = np.asarray(tensor, dtype=np.float16).astype(np.float32)
        error = float(np.abs(cast - tensor).max()) if cast.size else 0.0
        return cast, QuantizationInfo(DataType.FP16, 1.0, error)
    if dtype is DataType.FP32:
        tensor = np.asarray(tensor, dtype=np.float32)
        return tensor.copy(), QuantizationInfo(DataType.FP32, 1.0, 0.0)
    raise ConfigurationError(f"no quantizer for datatype {dtype!r}")


def quantize_model(model, dtype: DataType) -> int:
    """Fake-quantize every conv/linear weight in place; returns the count.

    After this, simulating the model on an accelerator configured with the
    same :class:`DataType` is numerically consistent with the energy/area
    tables being used.
    """
    from repro.frontend.layers import Conv2d, Linear

    quantized = 0
    for module in model.modules():
        if isinstance(module, (Conv2d, Linear)):
            module.weight.data, _info = quantize(module.weight.data, dtype)
            if module.bias is not None:
                module.bias.data, _info = quantize(module.bias.data, dtype)
            quantized += 1
    return quantized
