"""Unstructured magnitude pruning.

Table I's models carry 60-90 % weight sparsity "after applying an
unstructured weight pruning approach similar to that described by Zhu et
al."; magnitude pruning (zero the smallest-magnitude fraction of weights)
is exactly that approach, applied post-training in a single shot here since
we do not retrain.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def magnitude_prune(weights: np.ndarray, sparsity: float) -> np.ndarray:
    """Return a copy of ``weights`` with the smallest ``sparsity`` fraction
    (by absolute value) set to zero.

    ``sparsity`` is the target fraction of zeros in [0, 1). The achieved
    sparsity can exceed the target if the tensor already contains zeros.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ConfigurationError(f"sparsity must be in [0, 1), got {sparsity}")
    pruned = np.array(weights, copy=True)
    if sparsity == 0.0 or pruned.size == 0:
        return pruned
    k = int(round(pruned.size * sparsity))
    if k == 0:
        return pruned
    flat = np.abs(pruned).ravel()
    # Threshold at the k-th smallest magnitude; ties are all pruned, which
    # matches how magnitude pruning treats exact zeros.
    threshold = np.partition(flat, k - 1)[k - 1]
    pruned[np.abs(pruned) <= threshold] = 0.0
    return pruned


def sparsity_of(tensor: np.ndarray) -> float:
    """Fraction of exactly-zero elements in ``tensor``."""
    if tensor.size == 0:
        return 0.0
    return float(np.count_nonzero(tensor == 0) / tensor.size)
