"""Sparse matrix formats used by the sparse memory controller.

The paper's sparse controller "supports both bitmap and CSR formats to
represent the sparsity of the MK and KN matrices". Both formats here carry
enough metadata for the controller to compute per-row nonzero counts (the
dynamic cluster sizes that drive SIGMA-like execution) and to reconstruct
the dense operand for functional checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BitmapMatrix:
    """Bitmap compression: a dense 0/1 mask plus the packed nonzero values.

    ``values`` stores the nonzeros in row-major scan order of ``bitmap``.
    """

    bitmap: np.ndarray
    values: np.ndarray
    shape: tuple

    def __post_init__(self) -> None:
        if self.bitmap.shape != self.shape:
            raise ConfigurationError("bitmap shape must match matrix shape")
        nnz = int(self.bitmap.sum())
        if self.values.shape != (nnz,):
            raise ConfigurationError(
                f"bitmap has {nnz} set bits but {self.values.shape[0]} values"
            )

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    def row_nnz(self) -> np.ndarray:
        """Nonzeros per row — the effective filter sizes of use case 3."""
        return self.bitmap.sum(axis=1).astype(np.int64)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.values.dtype)
        dense[self.bitmap.astype(bool)] = self.values
        return dense

    def metadata_bits(self) -> int:
        """Storage overhead of the compression metadata, in bits."""
        return int(np.prod(self.shape))


@dataclass(frozen=True)
class CsrMatrix:
    """Compressed Sparse Row: row pointers, column indices and values."""

    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray
    shape: tuple

    def __post_init__(self) -> None:
        rows = self.shape[0]
        if self.indptr.shape != (rows + 1,):
            raise ConfigurationError(
                f"indptr must have {rows + 1} entries, got {self.indptr.shape}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.values):
            raise ConfigurationError("indptr bounds do not match value count")
        if np.any(np.diff(self.indptr) < 0):
            raise ConfigurationError("indptr must be non-decreasing")
        if self.indices.shape != self.values.shape:
            raise ConfigurationError("indices and values must align")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ConfigurationError("column index out of range")

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    def row_nnz(self) -> np.ndarray:
        return np.diff(self.indptr).astype(np.int64)

    def row(self, i: int) -> tuple:
        """(column indices, values) of row ``i``."""
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[lo:hi], self.values[lo:hi]

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.values.dtype)
        for i in range(self.shape[0]):
            cols, vals = self.row(i)
            dense[i, cols] = vals
        return dense

    def metadata_bits(self, index_bits: int = 16) -> int:
        return (len(self.indptr) + len(self.indices)) * index_bits


SparseMatrix = Union[BitmapMatrix, CsrMatrix]


def from_dense(dense: np.ndarray, fmt: str = "bitmap") -> SparseMatrix:
    """Compress a dense 2-D matrix into the requested format."""
    if dense.ndim != 2:
        raise ConfigurationError(f"expected a 2-D matrix, got shape {dense.shape}")
    if fmt == "bitmap":
        mask = dense != 0
        return BitmapMatrix(
            bitmap=mask.astype(np.uint8), values=dense[mask].copy(), shape=dense.shape
        )
    if fmt == "csr":
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        indices = []
        values = []
        for i in range(dense.shape[0]):
            cols = np.nonzero(dense[i])[0]
            indptr[i + 1] = indptr[i] + len(cols)
            indices.append(cols)
            values.append(dense[i, cols])
        indices_arr = (
            np.concatenate(indices) if indices else np.zeros(0, dtype=np.int64)
        )
        values_arr = (
            np.concatenate(values) if values else np.zeros(0, dtype=dense.dtype)
        )
        return CsrMatrix(
            indptr=indptr,
            indices=indices_arr.astype(np.int64),
            values=values_arr,
            shape=dense.shape,
        )
    raise ConfigurationError(f"unknown sparse format {fmt!r}; use 'bitmap' or 'csr'")


def to_dense(matrix: SparseMatrix) -> np.ndarray:
    """Decompress back to a dense matrix."""
    return matrix.to_dense()
