"""im2col lowering of convolutions to GEMM.

The sparse controller (and the SIGMA-like engine) operates on GEMMs; any
convolution is lowered first, exactly as the paper describes. The layout
convention is:

- activations: ``(N, C, X, Y)``
- weights: ``(K, C, R, S)``
- im2col column matrix: ``(C*R*S, N*X'*Y')`` so that
  ``weights.reshape(K, C*R*S) @ columns`` yields all outputs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


def conv2d_output_shape(
    x: int, y: int, r: int, s: int, stride: int = 1, padding: int = 0
) -> Tuple[int, int]:
    """Output spatial dimensions of a 2-D convolution."""
    x_out = (x + 2 * padding - r) // stride + 1
    y_out = (y + 2 * padding - s) // stride + 1
    if x_out < 1 or y_out < 1:
        raise ConfigurationError(
            f"convolution produces empty output: input {x}x{y}, filter "
            f"{r}x{s}, stride {stride}, padding {padding}"
        )
    return x_out, y_out


def im2col(
    activations: np.ndarray, r: int, s: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Unfold ``(N, C, X, Y)`` activations into a ``(C*R*S, N*X'*Y')`` matrix.

    Column ``n * (X'*Y') + i * Y' + j`` holds the receptive field of output
    pixel ``(i, j)`` of batch element ``n``, flattened in ``(C, R, S)``
    order — matching ``weights.reshape(K, C*R*S)`` row order.
    """
    if activations.ndim != 4:
        raise ConfigurationError(
            f"im2col expects a (N, C, X, Y) tensor, got shape {activations.shape}"
        )
    n, c, x, y = activations.shape
    x_out, y_out = conv2d_output_shape(x, y, r, s, stride, padding)
    if padding:
        # hot path: an explicit zero canvas is several times faster than
        # np.pad and produces the identical array
        padded = np.zeros(
            (n, c, x + 2 * padding, y + 2 * padding),
            dtype=activations.dtype,
        )
        padded[:, :, padding:-padding, padding:-padding] = activations
        activations = padded

    # Gather all windows with stride tricks, then reorder to (C*R*S, N*XO*YO).
    strides = activations.strides
    windows = np.lib.stride_tricks.as_strided(
        activations,
        shape=(n, c, x_out, y_out, r, s),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    # (n, c, xo, yo, r, s) -> (c, r, s, n, xo, yo) -> (c*r*s, n*xo*yo)
    columns = windows.transpose(1, 4, 5, 0, 2, 3).reshape(c * r * s, n * x_out * y_out)
    return np.ascontiguousarray(columns)


def col2im_output(gemm_output: np.ndarray, n: int, x_out: int, y_out: int) -> np.ndarray:
    """Fold a ``(K, N*X'*Y')`` GEMM result back into ``(N, K, X', Y')``."""
    k = gemm_output.shape[0]
    expected = n * x_out * y_out
    if gemm_output.shape[1] != expected:
        raise ConfigurationError(
            f"col2im: expected {expected} columns, got {gemm_output.shape[1]}"
        )
    return gemm_output.reshape(k, n, x_out, y_out).transpose(1, 0, 2, 3).copy()
