"""Tensor utilities: im2col lowering, sparse formats and pruning.

These are the data-preparation substrates the simulator's front-end and
memory controllers rely on. The paper's sparse controller "runs GEMM
operations (any CONV operation can be mapped to GEMM using the img2col
function) and supports both bitmap and CSR formats"; this package provides
exactly those pieces.
"""

from repro.tensors.im2col import col2im_output, conv2d_output_shape, im2col
from repro.tensors.pruning import magnitude_prune, sparsity_of
from repro.tensors.quantize import (
    QuantizationInfo,
    quantize,
    quantize_fp8,
    quantize_int8,
    quantize_model,
)
from repro.tensors.sparse import BitmapMatrix, CsrMatrix, from_dense, to_dense

__all__ = [
    "BitmapMatrix",
    "CsrMatrix",
    "QuantizationInfo",
    "col2im_output",
    "conv2d_output_shape",
    "from_dense",
    "im2col",
    "magnitude_prune",
    "quantize",
    "quantize_fp8",
    "quantize_int8",
    "quantize_model",
    "sparsity_of",
    "to_dense",
]
