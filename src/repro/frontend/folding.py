"""Batch-normalization folding (inference-time graph optimization).

Folding absorbs an inference-mode BatchNorm into the convolution that
feeds it (``w' = w * gamma/sqrt(var+eps)``, ``b' = (b - mean) * s + beta``)
and resets the BN to the identity. This is the standard deployment
transformation, and it is also what makes SNAPEA's sign-check *exact* on
BN networks like ResNet-50: after folding, every convolution's output is
the value the subsequent ReLU sees, so a non-positive psum really does
mean a zero activation.

Detection is structural: within each container, a ``BatchNorm2d`` that
immediately follows a ``Conv2d`` with matching channel count (the way
every block in :mod:`repro.frontend.models` is laid out) is folded.
"""

from __future__ import annotations

import numpy as np

from repro.frontend.layers import BatchNorm2d, Conv2d
from repro.frontend.module import Module, Parameter

_EPS = 1e-5


def fold_conv_bn(conv: Conv2d, bn: BatchNorm2d) -> None:
    """Fold ``bn`` into ``conv`` in place and reset ``bn`` to identity."""
    scale = bn.gamma.data / np.sqrt(bn.running_var.data + _EPS)
    shift = bn.beta.data - bn.running_mean.data * scale
    conv.weight.data = conv.weight.data * scale[:, None, None, None]
    old_bias = conv.bias.data if conv.bias is not None else 0.0
    conv.bias = Parameter(old_bias * scale + shift)
    bn.gamma = Parameter(np.ones(bn.channels))
    bn.beta = Parameter(np.zeros(bn.channels))
    bn.running_mean = Parameter(np.zeros(bn.channels))
    bn.running_var = Parameter(np.ones(bn.channels) - _EPS)


def fold_batchnorms(model: Module) -> int:
    """Fold every conv->BN pair found in the model; returns the count.

    Pairs are detected per container in attribute-declaration order,
    which matches execution order for every block in the model zoo.
    """
    folded = 0
    for module in model.modules():
        children = list(module._modules.values())
        for left, right in zip(children, children[1:]):
            if (
                isinstance(left, Conv2d)
                and isinstance(right, BatchNorm2d)
                and left.out_channels == right.channels
            ):
                fold_conv_bn(left, right)
                folded += 1
    return folded
