"""Scaled SSD-MobileNets (Table I model S-M; 75 % weight sparsity).

A MobileNets-V1 backbone (factorized convolutions) with SSD-style
detection heads: at two feature-map scales, parallel 3x3 convolutions
predict box offsets (4 coordinates per anchor) and class confidences. The
model returns the flattened, concatenated predictions of both scales.
"""

from __future__ import annotations

import numpy as np

from repro.config.layer import LayerKind
from repro.frontend import functional as F
from repro.frontend.layers import BatchNorm2d, Conv2d
from repro.frontend.models.blocks import DepthwiseSeparable
from repro.frontend.module import Module

_ANCHORS = 4


class SsdMobileNet(Module):
    def __init__(self, num_classes: int = 10, rng=None) -> None:
        super().__init__("ssd-mobilenets")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_classes = num_classes
        self.stem = Conv2d(
            3, 32, 3, stride=2, padding=1, kind=LayerKind.CONV,
            name="stem-conv3x3", rng=rng,
        )
        self.stem_bn = BatchNorm2d(32, rng=rng)
        self.block1 = DepthwiseSeparable(32, 64, name="ds1", rng=rng)
        self.block2 = DepthwiseSeparable(64, 128, stride=2, name="ds2", rng=rng)
        self.block3 = DepthwiseSeparable(128, 128, name="ds3", rng=rng)
        self.block4 = DepthwiseSeparable(128, 256, stride=2, name="ds4", rng=rng)
        # detection heads at the 8x8 (128ch) and 4x4 (256ch) scales
        self.loc_head1 = Conv2d(
            128, _ANCHORS * 4, 3, padding=1, kind=LayerKind.CONV,
            name="loc-head1", rng=rng,
        )
        self.conf_head1 = Conv2d(
            128, _ANCHORS * num_classes, 3, padding=1, kind=LayerKind.CONV,
            name="conf-head1", rng=rng,
        )
        self.loc_head2 = Conv2d(
            256, _ANCHORS * 4, 3, padding=1, kind=LayerKind.CONV,
            name="loc-head2", rng=rng,
        )
        self.conf_head2 = Conv2d(
            256, _ANCHORS * num_classes, 3, padding=1, kind=LayerKind.CONV,
            name="conf-head2", rng=rng,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = F.relu(self.stem_bn(self.stem(x)))
        x = self.block1(x)
        x = self.block2(x)
        feat1 = self.block3(x)
        feat2 = self.block4(feat1)
        batch = x.shape[0]
        predictions = [
            self.loc_head1(feat1).reshape(batch, -1),
            self.conf_head1(feat1).reshape(batch, -1),
            self.loc_head2(feat2).reshape(batch, -1),
            self.conf_head2(feat2).reshape(batch, -1),
        ]
        return np.concatenate(predictions, axis=1)


def build_ssd_mobilenet(num_classes: int = 10, rng=None) -> SsdMobileNet:
    return SsdMobileNet(num_classes=num_classes, rng=rng)
