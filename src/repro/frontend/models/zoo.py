"""Model registry: builders, sparsity application and synthetic inputs.

The registry realizes Table I of the paper: seven models across three
application domains, each magnitude-pruned to the published average weight
sparsity. ``REPRESENTATIVE_LAYERS`` provides the eight single layers of
the Fig. 1 motivation experiments (Squeeze/Expand/Factorized/Regular
convolutions, Linears and a Transformer GEMM, drawn from S, R, M and B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple, Union

import numpy as np

from repro.config.layer import ConvLayerSpec, GemmSpec, LayerKind
from repro.errors import ConfigurationError
from repro.frontend.data import synthetic_images, synthetic_token_ids
from repro.frontend.layers import Conv2d, Linear
from repro.frontend.models import bert as bert_mod
from repro.frontend.models.alexnet import build_alexnet
from repro.frontend.models.bert import build_bert
from repro.frontend.models.mobilenet import build_mobilenet
from repro.frontend.models.resnet import build_resnet
from repro.frontend.models.squeezenet import build_squeezenet
from repro.frontend.models.ssd_mobilenet import build_ssd_mobilenet
from repro.frontend.models.vgg import build_vgg
from repro.frontend.module import Module
from repro.tensors.pruning import magnitude_prune


@dataclass(frozen=True)
class ModelInfo:
    """Registry record matching one Table I row."""

    name: str
    short: str
    domain: str
    sparsity: float
    dominant_kinds: Tuple[LayerKind, ...]
    builder: Callable[..., Module]
    input_kind: str  # "image" or "tokens"


MODEL_INFO: Dict[str, ModelInfo] = {
    "mobilenets": ModelInfo(
        "mobilenets", "M", "image-classification", 0.75,
        (LayerKind.FACTORIZED_CONV, LayerKind.LINEAR), build_mobilenet, "image",
    ),
    "squeezenet": ModelInfo(
        "squeezenet", "S", "image-classification", 0.70,
        (LayerKind.SQUEEZE_CONV, LayerKind.EXPAND_CONV), build_squeezenet, "image",
    ),
    "alexnet": ModelInfo(
        "alexnet", "A", "image-classification", 0.78,
        (LayerKind.CONV, LayerKind.LINEAR), build_alexnet, "image",
    ),
    "resnet50": ModelInfo(
        "resnet50", "R", "image-classification", 0.89,
        (LayerKind.RESIDUAL, LayerKind.CONV), build_resnet, "image",
    ),
    "vgg16": ModelInfo(
        "vgg16", "V", "image-classification", 0.90,
        (LayerKind.CONV, LayerKind.LINEAR), build_vgg, "image",
    ),
    "ssd-mobilenets": ModelInfo(
        "ssd-mobilenets", "S-M", "object-detection", 0.75,
        (LayerKind.FACTORIZED_CONV, LayerKind.CONV), build_ssd_mobilenet, "image",
    ),
    "bert": ModelInfo(
        "bert", "B", "language-processing", 0.60,
        (LayerKind.TRANSFORMER, LayerKind.LINEAR), build_bert, "tokens",
    ),
}

MODEL_NAMES = tuple(MODEL_INFO)

#: the four purely-CNN models of the SNAPEA use case (Section VI-B)
CNN_MODEL_NAMES = ("alexnet", "squeezenet", "vgg16", "resnet50")


def prune_model(model: Module, sparsity: float) -> Module:
    """Magnitude-prune every convolution and linear weight in place."""
    for module in model.modules():
        if isinstance(module, (Conv2d, Linear)):
            module.weight.data = magnitude_prune(module.weight.data, sparsity)
    return model


def build_model(name: str, seed: int = 0, prune: bool = True) -> Module:
    """Instantiate one Table I model with seeded weights.

    ``prune=True`` applies the model's published sparsity ratio;
    ``prune=False`` gives the dense variant (used e.g. by Fig. 1 sweeps).
    """
    info = _info(name)
    rng = np.random.default_rng(seed)
    model = info.builder(rng=rng)
    if prune:
        prune_model(model, info.sparsity)
    return model


def model_input(name: str, batch: int = 1, seed: int = 0) -> np.ndarray:
    """Synthetic input batch matching the model's expected modality."""
    info = _info(name)
    if info.input_kind == "tokens":
        return synthetic_token_ids(
            batch=batch, seq_len=bert_mod.SEQ_LEN,
            vocab_size=bert_mod.VOCAB_SIZE, seed=seed,
        )
    return synthetic_images(batch=batch, seed=seed)


def _info(name: str) -> ModelInfo:
    if name not in MODEL_INFO:
        raise ConfigurationError(
            f"unknown model {name!r}; choose from {sorted(MODEL_INFO)}"
        )
    return MODEL_INFO[name]


#: the eight representative layers of Fig. 1 (label -> workload spec).
#: Conv specs keep the scaled models' shapes; sparsity for Fig. 1c sweeps
#: is applied by the experiment harness.
REPRESENTATIVE_LAYERS: Dict[str, Union[ConvLayerSpec, GemmSpec]] = {
    # SqueezeNet squeeze convolution (1x1 bottleneck)
    "S-SC": ConvLayerSpec(r=1, s=1, c=64, k=16, x=8, y=8,
                          kind=LayerKind.SQUEEZE_CONV, name="S-SC"),
    # SqueezeNet expand convolution (3x3 half of a Fire module)
    "S-EC": ConvLayerSpec(r=3, s=3, c=16, k=32, x=10, y=10,
                          kind=LayerKind.EXPAND_CONV, name="S-EC"),
    # MobileNets factorized (depthwise) convolution
    "M-FC": ConvLayerSpec(r=3, s=3, c=1, k=1, g=64, x=18, y=18,
                          kind=LayerKind.FACTORIZED_CONV, name="M-FC"),
    # ResNet-50 regular 3x3 convolution
    "R-C": ConvLayerSpec(r=3, s=3, c=32, k=32, x=10, y=10,
                         kind=LayerKind.CONV, name="R-C"),
    # BERT transformer projection GEMM (hidden x hidden over the sequence)
    "B-TR": GemmSpec(m=64, n=64, k=64, name="B-TR"),
    # MobileNets classifier
    "M-L": GemmSpec(m=64, n=32, k=128, name="M-L"),
    # ResNet-50 classifier
    "R-L": GemmSpec(m=64, n=32, k=128, name="R-L"),
    # BERT feed-forward linear
    "B-L": GemmSpec(m=128, n=64, k=64, name="B-L"),
}
