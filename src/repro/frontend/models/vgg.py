"""Scaled VGG-16 (Table I model V; 90 % weight sparsity).

Uniform 3x3 convolution stacks with pooling between stages and a deep
fully-connected classifier, scaled down per DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.config.layer import LayerKind
from repro.frontend.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.frontend.module import Sequential


def build_vgg(num_classes: int = 10, rng=None) -> Sequential:
    rng = rng if rng is not None else np.random.default_rng(0)

    def conv(c_in: int, c_out: int, index: int) -> Conv2d:
        return Conv2d(
            c_in, c_out, 3, padding=1, kind=LayerKind.CONV,
            name=f"conv{index}-3x3", rng=rng,
        )

    return Sequential(
        conv(3, 32, 1), ReLU(),
        conv(32, 32, 2), ReLU(),
        MaxPool2d(2),
        conv(32, 64, 3), ReLU(),
        conv(64, 64, 4), ReLU(),
        MaxPool2d(2),
        conv(64, 128, 5), ReLU(),
        conv(128, 128, 6), ReLU(),
        conv(128, 128, 7), ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(128 * 4 * 4, 256, name="fc1", rng=rng),
        ReLU(),
        Linear(256, 128, name="fc2", rng=rng),
        ReLU(),
        Linear(128, num_classes, name="fc3", rng=rng),
        name="vgg-16",
    )
