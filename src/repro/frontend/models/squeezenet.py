"""Scaled SqueezeNet (Table I model S; 70 % weight sparsity).

Stem convolution, max pooling, a stack of Fire modules (squeeze 1x1 +
expand 1x1/3x3), a 1x1 classifier convolution and global average pooling,
scaled down per DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.config.layer import LayerKind
from repro.frontend import functional as F
from repro.frontend.layers import Conv2d, MaxPool2d
from repro.frontend.models.blocks import Fire
from repro.frontend.module import Module


class SqueezeNet(Module):
    def __init__(self, num_classes: int = 10, rng=None) -> None:
        super().__init__("squeezenet")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.stem = Conv2d(
            3, 64, 3, stride=2, padding=1, kind=LayerKind.CONV,
            name="stem-conv3x3", rng=rng,
        )
        self.pool1 = MaxPool2d(2)
        self.fire1 = Fire(64, 16, 64, name="fire1", rng=rng)
        self.fire2 = Fire(128, 16, 64, name="fire2", rng=rng)
        self.pool2 = MaxPool2d(2)
        self.fire3 = Fire(128, 32, 128, name="fire3", rng=rng)
        self.fire4 = Fire(256, 32, 128, name="fire4", rng=rng)
        self.head = Conv2d(
            256, num_classes, 1, kind=LayerKind.CONV, name="head-conv1x1", rng=rng
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = F.relu(self.stem(x))
        x = self.pool1(x)
        x = self.fire1(x)
        x = self.fire2(x)
        x = self.pool2(x)
        x = self.fire3(x)
        x = self.fire4(x)
        x = F.relu(self.head(x))
        return F.global_avgpool2d(x)


def build_squeezenet(num_classes: int = 10, rng=None) -> SqueezeNet:
    return SqueezeNet(num_classes=num_classes, rng=rng)
