"""Scaled AlexNet (Table I model A; 78 % weight sparsity).

Large-kernel stem, stacked convolutions with interleaved pooling and a
three-layer fully-connected classifier — AlexNet's signature big linear
layers are preserved proportionally (they dominate the parameter count).
"""

from __future__ import annotations

import numpy as np

from repro.config.layer import LayerKind
from repro.frontend.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.frontend.module import Sequential


def build_alexnet(num_classes: int = 10, rng=None) -> Sequential:
    rng = rng if rng is not None else np.random.default_rng(0)
    return Sequential(
        Conv2d(3, 48, 5, stride=2, padding=2, kind=LayerKind.CONV,
               name="conv1-5x5", rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(48, 96, 3, padding=1, kind=LayerKind.CONV, name="conv2-3x3", rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(96, 128, 3, padding=1, kind=LayerKind.CONV, name="conv3-3x3", rng=rng),
        ReLU(),
        Conv2d(128, 96, 3, padding=1, kind=LayerKind.CONV, name="conv4-3x3", rng=rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(96 * 2 * 2, 256, name="fc1", rng=rng),
        ReLU(),
        Linear(256, 128, name="fc2", rng=rng),
        ReLU(),
        Linear(128, num_classes, name="fc3", rng=rng),
        name="alexnet",
    )
