"""Reusable building blocks of the seven evaluation models.

Each block mirrors its published counterpart structurally: Fire modules
(SqueezeNet), depthwise-separable blocks (MobileNets), bottleneck residual
blocks (ResNet-50) and single-head transformer encoder blocks (BERT).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config.layer import LayerKind
from repro.frontend import functional as F
from repro.frontend.layers import BatchNorm2d, Conv2d, LayerNorm, Linear
from repro.frontend.module import Module, Parameter


class Fire(Module):
    """SqueezeNet Fire module: squeeze 1x1 -> expand 1x1 || expand 3x3."""

    def __init__(
        self,
        in_channels: int,
        squeeze: int,
        expand: int,
        name: str = "fire",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name)
        self.squeeze = Conv2d(
            in_channels, squeeze, 1, kind=LayerKind.SQUEEZE_CONV,
            name=f"{name}-squeeze1x1", rng=rng,
        )
        self.expand1 = Conv2d(
            squeeze, expand, 1, kind=LayerKind.EXPAND_CONV,
            name=f"{name}-expand1x1", rng=rng,
        )
        self.expand3 = Conv2d(
            squeeze, expand, 3, padding=1, kind=LayerKind.EXPAND_CONV,
            name=f"{name}-expand3x3", rng=rng,
        )
        self.out_channels = 2 * expand

    def forward(self, x: np.ndarray) -> np.ndarray:
        squeezed = F.relu(self.squeeze(x))
        left = F.relu(self.expand1(squeezed))
        right = F.relu(self.expand3(squeezed))
        return np.concatenate([left, right], axis=1)


class DepthwiseSeparable(Module):
    """MobileNets factorized convolution: depthwise 3x3 + pointwise 1x1."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        name: str = "ds",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name)
        self.depthwise = Conv2d(
            in_channels, in_channels, 3, stride=stride, padding=1,
            groups=in_channels, kind=LayerKind.FACTORIZED_CONV,
            name=f"{name}-dw3x3", rng=rng,
        )
        self.bn1 = BatchNorm2d(in_channels, rng=rng)
        self.pointwise = Conv2d(
            in_channels, out_channels, 1, kind=LayerKind.FACTORIZED_CONV,
            name=f"{name}-pw1x1", rng=rng,
        )
        self.bn2 = BatchNorm2d(out_channels, rng=rng)
        self.out_channels = out_channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = F.relu(self.bn1(self.depthwise(x)))
        return F.relu(self.bn2(self.pointwise(x)))


class Bottleneck(Module):
    """ResNet-50 bottleneck: 1x1 down, 3x3, 1x1 up, residual add."""

    expansion = 4

    def __init__(
        self,
        in_channels: int,
        base: int,
        stride: int = 1,
        name: str = "bottleneck",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name)
        out_channels = base * self.expansion
        self.conv1 = Conv2d(
            in_channels, base, 1, kind=LayerKind.RESIDUAL,
            name=f"{name}-1x1a", rng=rng,
        )
        self.bn1 = BatchNorm2d(base, rng=rng)
        self.conv2 = Conv2d(
            base, base, 3, stride=stride, padding=1, kind=LayerKind.CONV,
            name=f"{name}-3x3", rng=rng,
        )
        self.bn2 = BatchNorm2d(base, rng=rng)
        self.conv3 = Conv2d(
            base, out_channels, 1, kind=LayerKind.RESIDUAL,
            name=f"{name}-1x1b", rng=rng,
        )
        self.bn3 = BatchNorm2d(out_channels, rng=rng)
        if stride != 1 or in_channels != out_channels:
            self.downsample = Conv2d(
                in_channels, out_channels, 1, stride=stride,
                kind=LayerKind.RESIDUAL, name=f"{name}-down", rng=rng,
            )
        else:
            self.downsample = None
        self.out_channels = out_channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        identity = x if self.downsample is None else self.downsample(x)
        out = F.relu(self.bn1(self.conv1(x)))
        out = F.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        return F.relu(out + identity)


class Embedding(Module):
    """Token embedding lookup (runs natively; not compute-intensive)."""

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        name: str = "embedding",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.weight = Parameter(rng.standard_normal((vocab_size, dim)) * 0.1)
        self.dim = dim

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        return self.weight.data[np.asarray(token_ids, dtype=np.int64)]


class TransformerBlock(Module):
    """Multi-head transformer encoder block (scaled BERT layer).

    The Q/K/V/output projections and the feed-forward layers offload as
    linear layers; the per-head attention score and context GEMMs are
    *dynamic* (activation x activation) and offload through
    :meth:`SimulationContext.matmul` — exactly the ``F.sparse_mm``-style
    operations of the paper's walk-through. Softmax and LayerNorm run
    natively.
    """

    def __init__(
        self,
        dim: int,
        ffn_dim: int,
        num_heads: int = 2,
        name: str = "transformer",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name)
        if dim % num_heads:
            raise ValueError(
                f"hidden dim {dim} must divide the head count {num_heads}"
            )
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, kind=LayerKind.TRANSFORMER, name=f"{name}-q", rng=rng)
        self.k_proj = Linear(dim, dim, kind=LayerKind.TRANSFORMER, name=f"{name}-k", rng=rng)
        self.v_proj = Linear(dim, dim, kind=LayerKind.TRANSFORMER, name=f"{name}-v", rng=rng)
        self.out_proj = Linear(dim, dim, kind=LayerKind.TRANSFORMER, name=f"{name}-o", rng=rng)
        self.norm1 = LayerNorm(dim)
        self.ffn1 = Linear(dim, ffn_dim, kind=LayerKind.LINEAR, name=f"{name}-ffn1", rng=rng)
        self.ffn2 = Linear(ffn_dim, dim, kind=LayerKind.LINEAR, name=f"{name}-ffn2", rng=rng)
        self.norm2 = LayerNorm(dim)

    def _attention(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Scaled dot-product attention for one sample, head by head."""
        seq = q.shape[0]
        scale = 1.0 / np.sqrt(self.head_dim)
        out = np.empty_like(q)
        for h in range(self.num_heads):
            lo, hi = h * self.head_dim, (h + 1) * self.head_dim
            qh, kh, vh = q[:, lo:hi], k[:, lo:hi], v[:, lo:hi]
            if self.context is not None:
                scores = self.context.matmul(qh, kh.T, name=f"{self.name}-qk{h}")
                attn = F.softmax(scores * scale)
                out[:, lo:hi] = self.context.matmul(
                    attn, vh, name=f"{self.name}-av{h}"
                )
            else:
                attn = F.softmax((qh @ kh.T) * scale)
                out[:, lo:hi] = attn @ vh
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, seq, dim = x.shape
        q = self.q_proj(x)
        k = self.k_proj(x)
        v = self.v_proj(x)
        contexts = np.empty_like(q)
        for n in range(batch):
            contexts[n] = self._attention(q[n], k[n], v[n])
        attended = self.norm1(x + self.out_proj(contexts))
        hidden = F.relu(self.ffn1(attended))
        return self.norm2(attended + self.ffn2(hidden))
