"""Scaled ResNet-50 (Table I model R; 89 % weight sparsity).

Stem convolution followed by three stages of bottleneck residual blocks
(1x1 -> 3x3 -> 1x1 with identity shortcuts) and a linear classifier. The
scaled network keeps 6 bottlenecks (20 convolutions), enough distinct
layers for the Fig. 9c per-layer sensitivity study.
"""

from __future__ import annotations

import numpy as np

from repro.config.layer import LayerKind
from repro.frontend import functional as F
from repro.frontend.layers import BatchNorm2d, Conv2d, Flatten, Linear
from repro.frontend.models.blocks import Bottleneck
from repro.frontend.module import Module


class ResNet50(Module):
    def __init__(self, num_classes: int = 10, rng=None) -> None:
        super().__init__("resnets-50")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.stem = Conv2d(
            3, 32, 3, padding=1, kind=LayerKind.CONV, name="stem-conv3x3", rng=rng
        )
        self.stem_bn = BatchNorm2d(32, rng=rng)
        self.block1 = Bottleneck(32, 16, name="b1", rng=rng)      # -> 64ch, 32x32
        self.block2 = Bottleneck(64, 16, name="b2", rng=rng)
        self.block3 = Bottleneck(64, 32, stride=2, name="b3", rng=rng)  # -> 128ch, 16x16
        self.block4 = Bottleneck(128, 32, name="b4", rng=rng)
        self.block5 = Bottleneck(128, 64, stride=2, name="b5", rng=rng)  # -> 256ch, 8x8
        self.block6 = Bottleneck(256, 64, name="b6", rng=rng)
        self.flatten = Flatten()
        self.classifier = Linear(256, num_classes, name="classifier", rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = F.relu(self.stem_bn(self.stem(x)))
        for block in (self.block1, self.block2, self.block3,
                      self.block4, self.block5, self.block6):
            x = block(x)
        x = F.global_avgpool2d(x)
        return self.classifier(x)


def build_resnet(num_classes: int = 10, rng=None) -> ResNet50:
    return ResNet50(num_classes=num_classes, rng=rng)
