"""Scaled MobileNets-V1 (Table I model M; 75 % weight sparsity).

Structure follows the published network — a stem convolution followed by a
stack of depthwise-separable (factorized) blocks, global average pooling
and a classifier — with channel counts and depth scaled for pure-Python
cycle-level simulation (DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.config.layer import LayerKind
from repro.frontend import functional as F
from repro.frontend.layers import AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear
from repro.frontend.models.blocks import DepthwiseSeparable
from repro.frontend.module import Module


class MobileNetV1(Module):
    """Stem conv + 5 depthwise-separable blocks + classifier."""

    def __init__(self, num_classes: int = 10, rng=None) -> None:
        super().__init__("mobilenets-v1")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.stem = Conv2d(
            3, 32, 3, stride=2, padding=1, kind=LayerKind.CONV,
            name="stem-conv3x3", rng=rng,
        )
        self.stem_bn = BatchNorm2d(32, rng=rng)
        self.block1 = DepthwiseSeparable(32, 64, name="ds1", rng=rng)
        self.block2 = DepthwiseSeparable(64, 128, stride=2, name="ds2", rng=rng)
        self.block3 = DepthwiseSeparable(128, 128, name="ds3", rng=rng)
        self.block4 = DepthwiseSeparable(128, 256, stride=2, name="ds4", rng=rng)
        self.block5 = DepthwiseSeparable(256, 256, name="ds5", rng=rng)
        self.pool = AvgPool2d(None)
        self.flatten = Flatten()
        self.classifier = Linear(256, num_classes, name="classifier", rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = F.relu(self.stem_bn(self.stem(x)))
        for block in (self.block1, self.block2, self.block3, self.block4, self.block5):
            x = block(x)
        return self.classifier(self.flatten(self.pool(x)))


def build_mobilenet(num_classes: int = 10, rng=None) -> MobileNetV1:
    return MobileNetV1(num_classes=num_classes, rng=rng)
