"""The seven evaluation models of Table I, scaled (see DESIGN.md).

Use :func:`repro.frontend.models.zoo.build_model` /
:func:`repro.frontend.models.zoo.model_input` to obtain a pruned model and
matching synthetic inputs. Per-model sparsity ratios follow Table I.
"""

from repro.frontend.models.zoo import (
    MODEL_INFO,
    MODEL_NAMES,
    REPRESENTATIVE_LAYERS,
    ModelInfo,
    build_model,
    model_input,
)

__all__ = [
    "MODEL_INFO",
    "MODEL_NAMES",
    "ModelInfo",
    "REPRESENTATIVE_LAYERS",
    "build_model",
    "model_input",
]
