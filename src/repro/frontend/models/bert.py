"""Scaled BERT (Table I model B; 60 % weight sparsity).

Token + positional embeddings, a stack of transformer encoder blocks and
a classification head over the first token, scaled down per DESIGN.md.
Inputs are integer token-id sequences ``(batch, seq_len)``.
"""

from __future__ import annotations

import numpy as np

from repro.config.layer import LayerKind
from repro.frontend.layers import Linear
from repro.frontend.models.blocks import Embedding, TransformerBlock
from repro.frontend.module import Module, Parameter

VOCAB_SIZE = 100
SEQ_LEN = 32
HIDDEN_DIM = 128
FFN_DIM = 256
NUM_BLOCKS = 2


class Bert(Module):
    def __init__(self, num_classes: int = 2, rng=None) -> None:
        super().__init__("bert")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.embedding = Embedding(VOCAB_SIZE, HIDDEN_DIM, rng=rng)
        self.position = Parameter(
            rng.standard_normal((SEQ_LEN, HIDDEN_DIM)) * 0.1
        )
        self.block1 = TransformerBlock(HIDDEN_DIM, FFN_DIM, name="tr1", rng=rng)
        self.block2 = TransformerBlock(HIDDEN_DIM, FFN_DIM, name="tr2", rng=rng)
        self.pooler = Linear(
            HIDDEN_DIM, HIDDEN_DIM, kind=LayerKind.LINEAR, name="pooler", rng=rng
        )
        self.classifier = Linear(
            HIDDEN_DIM, num_classes, kind=LayerKind.LINEAR, name="classifier", rng=rng
        )

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 2 or token_ids.shape[1] != SEQ_LEN:
            raise ValueError(
                f"BERT expects (batch, {SEQ_LEN}) token ids, got {token_ids.shape}"
            )
        x = self.embedding(token_ids) + self.position.data[None, :, :]
        x = self.block1(x)
        x = self.block2(x)
        pooled = np.tanh(self.pooler(x[:, 0, :]))
        return self.classifier(pooled)


def build_bert(num_classes: int = 2, rng=None) -> Bert:
    return Bert(num_classes=num_classes, rng=rng)
