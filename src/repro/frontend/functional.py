"""Native CPU implementations of every operation the framework supports.

These are the reference semantics: the Simulated* layers must produce
outputs matching these functions (Section V, functional validation). The
convolution here is computed directly over receptive-field windows with
``einsum`` — a different lowering and accumulation order than the
simulator's im2col GEMM — so agreement between the two paths is a
meaningful check rather than a tautology.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


def _windows(x: np.ndarray, r: int, s: int, stride: int) -> np.ndarray:
    """View of all (r x s) sliding windows: (n, c, xo, yo, r, s)."""
    n, c, h, w = x.shape
    xo = (h - r) // stride + 1
    yo = (w - s) // stride + 1
    st = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, xo, yo, r, s),
        strides=(st[0], st[1], st[2] * stride, st[3] * stride, st[2], st[3]),
        writeable=False,
    )


def pad2d(x: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> np.ndarray:
    """Direct 2-D convolution (cross-correlation, as in every DL framework).

    ``x``: (N, C, H, W); ``weight``: (K, C/groups, R, S).
    """
    x = np.asarray(x, dtype=np.float32)
    weight = np.asarray(weight, dtype=np.float32)
    if x.ndim != 4 or weight.ndim != 4:
        raise ConfigurationError("conv2d expects 4-D input and weight")
    k_total, c_g, r, s = weight.shape
    n, c_total, _h, _w = x.shape
    if c_total != c_g * groups or k_total % groups:
        raise ConfigurationError(
            f"group mismatch: x {x.shape}, w {weight.shape}, groups {groups}"
        )
    x = pad2d(x, padding)
    k_g = k_total // groups
    outputs = []
    for g in range(groups):
        xg = x[:, g * c_g : (g + 1) * c_g]
        wg = weight[g * k_g : (g + 1) * k_g]
        win = _windows(xg, r, s, stride)
        outputs.append(np.einsum("ncxyrs,kcrs->nkxy", win, wg, optimize=True))
    out = np.concatenate(outputs, axis=1).astype(np.float32)
    if bias is not None:
        out += np.asarray(bias, dtype=np.float32)[None, :, None, None]
    return out


def linear(
    x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None
) -> np.ndarray:
    """Fully-connected layer: ``x @ weight.T + bias``.

    ``x``: (..., in_features); ``weight``: (out_features, in_features).
    """
    out = np.asarray(x, dtype=np.float32) @ np.asarray(weight, dtype=np.float32).T
    if bias is not None:
        out = out + np.asarray(bias, dtype=np.float32)
    return out.astype(np.float32)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0).astype(np.float32)


def maxpool2d(x: np.ndarray, pool: int, stride: Optional[int] = None) -> np.ndarray:
    stride = stride or pool
    win = _windows(np.asarray(x, dtype=np.float32), pool, pool, stride)
    return win.max(axis=(4, 5)).astype(np.float32)


def avgpool2d(x: np.ndarray, pool: int, stride: Optional[int] = None) -> np.ndarray:
    stride = stride or pool
    win = _windows(np.asarray(x, dtype=np.float32), pool, pool, stride)
    return win.mean(axis=(4, 5)).astype(np.float32)


def global_avgpool2d(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float32).mean(axis=(2, 3)).astype(np.float32)


def batchnorm2d(
    x: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Inference-mode batch normalization using stored statistics."""
    scale = gamma / np.sqrt(var + eps)
    shift = beta - mean * scale
    return (x * scale[None, :, None, None] + shift[None, :, None, None]).astype(
        np.float32
    )


def layernorm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Layer normalization over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return ((x - mean) / np.sqrt(var + eps) * gamma + beta).astype(np.float32)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return (exp / exp.sum(axis=axis, keepdims=True)).astype(np.float32)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    return (shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))).astype(
        np.float32
    )
