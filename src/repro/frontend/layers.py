"""Layer zoo.

Every compute-intensive layer consults ``self.context``: with no context
attached it runs natively through :mod:`repro.frontend.functional`; with a
:class:`~repro.frontend.simulated.SimulationContext` it offloads to the
simulated accelerator, mirroring the paper's ``Simulated*`` operations
(Fig. 2d). Cheap operations (activations, normalization, softmax) always
run natively, "as it would be done in a real scenario".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config.layer import LayerKind
from repro.errors import ConfigurationError
from repro.frontend import functional as F
from repro.frontend.module import Module, Parameter

_DEFAULT_RNG = np.random.default_rng(1234)


def _rng_or_default(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else _DEFAULT_RNG


class Conv2d(Module):
    """2-D convolution with optional grouping (factorized convolutions)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        kind: LayerKind = LayerKind.CONV,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name or "conv2d")
        if in_channels % groups or out_channels % groups:
            raise ConfigurationError(
                f"channels ({in_channels}->{out_channels}) must divide groups "
                f"({groups})"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.kind = kind
        rng = _rng_or_default(rng)
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        # Kaiming-scaled weights with a small negative mean (~0.4 sigma of
        # the resulting pre-activation distribution): trained ReLU CNNs
        # exhibit 50-80 % post-activation sparsity, and synthetic symmetric
        # weights would not — this shift reproduces that data property,
        # which data-dependent optimizations like SNAPEA depend on.
        shift = 0.55 / np.sqrt(fan_in)
        # Trained filters differ widely in norm; a lognormal per-filter
        # scale reproduces that, and with it the per-filter *effective
        # size* variance after magnitude pruning that the paper's Fig. 7b
        # shows and its filter-scheduling study (use case 3) exploits.
        filter_scale = np.exp(0.5 * rng.standard_normal((out_channels, 1, 1, 1)))
        self.weight = Parameter(
            (
                rng.standard_normal(
                    (out_channels, in_channels // groups, kernel_size, kernel_size)
                )
                - shift
            )
            * scale
            * filter_scale
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.context is not None:
            out = self.context.conv(self, x)
        else:
            out = F.conv2d(
                x, self.weight.data, None, self.stride, self.padding, self.groups
            )
        if self.bias is not None:
            out = out + self.bias.data[None, :, None, None]
        return out.astype(np.float32)


class Linear(Module):
    """Fully-connected layer."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        kind: LayerKind = LayerKind.LINEAR,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name or "linear")
        self.in_features = in_features
        self.out_features = out_features
        self.kind = kind
        rng = _rng_or_default(rng)
        scale = np.sqrt(2.0 / in_features)
        self.weight = Parameter(
            rng.standard_normal((out_features, in_features)) * scale
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.context is not None:
            out = self.context.linear(self, x)
        else:
            out = F.linear(x, self.weight.data, None)
        if self.bias is not None:
            out = out + self.bias.data
        return out.astype(np.float32)


class MaxPool2d(Module):
    def __init__(self, pool: int, stride: Optional[int] = None, name: str = "") -> None:
        super().__init__(name or "maxpool2d")
        self.pool = pool
        self.stride = stride or pool
        self.kind = LayerKind.POOL

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.context is not None:
            return self.context.maxpool(self, x)
        return F.maxpool2d(x, self.pool, self.stride)


class AvgPool2d(Module):
    """Average pooling; ``pool=None`` means global average pooling."""

    def __init__(self, pool: Optional[int] = None, name: str = "") -> None:
        super().__init__(name or "avgpool2d")
        self.pool = pool
        self.kind = LayerKind.POOL

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.pool is None:
            return F.global_avgpool2d(x)
        return F.avgpool2d(x, self.pool)


class ReLU(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.relu(x)


class Softmax(Module):
    def __init__(self, axis: int = -1, name: str = "") -> None:
        super().__init__(name or "softmax")
        self.axis = axis

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.softmax(x, self.axis)


class LogSoftmax(Module):
    def __init__(self, axis: int = -1, name: str = "") -> None:
        super().__init__(name or "log_softmax")
        self.axis = axis

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.log_softmax(x, self.axis)


class Flatten(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(x.reshape(x.shape[0], -1))


class BatchNorm2d(Module):
    """Inference-mode batch normalization with synthetic statistics."""

    def __init__(
        self,
        channels: int,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name or "batchnorm2d")
        rng = _rng_or_default(rng)
        self.channels = channels
        self.gamma = Parameter(np.ones(channels) + 0.05 * rng.standard_normal(channels))
        self.beta = Parameter(0.05 * rng.standard_normal(channels))
        self.running_mean = Parameter(0.1 * rng.standard_normal(channels))
        self.running_var = Parameter(np.abs(1.0 + 0.1 * rng.standard_normal(channels)))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.batchnorm2d(
            x,
            self.running_mean.data,
            self.running_var.data,
            self.gamma.data,
            self.beta.data,
        )


class LayerNorm(Module):
    """Layer normalization over the last dimension (transformers)."""

    def __init__(self, features: int, name: str = "") -> None:
        super().__init__(name or "layernorm")
        self.features = features
        self.gamma = Parameter(np.ones(features))
        self.beta = Parameter(np.zeros(features))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.layernorm(x, self.gamma.data, self.beta.data)
