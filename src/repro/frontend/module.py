"""Module system: a deliberately small torch-like container hierarchy.

Modules register parameters and child modules through attribute
assignment, support recursive iteration, and carry an optional
*simulation context* that the offloading layers consult (see
:mod:`repro.frontend.simulated`). Everything is eager NumPy; there is no
autograd because the paper simulates inference only (training support is
listed as the authors' ongoing work).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import ConfigurationError


class Parameter:
    """A named tensor owned by a module (weights, biases, BN statistics)."""

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data, dtype=np.float32)

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def sparsity(self) -> float:
        if self.data.size == 0:
            return 0.0
        return float(np.count_nonzero(self.data == 0) / self.data.size)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class of all layers and models."""

    def __init__(self, name: str = "") -> None:
        object.__setattr__(self, "_params", {})
        object.__setattr__(self, "_modules", {})
        self.name = name or type(self).__name__.lower()
        #: simulation context (None = run natively on the CPU)
        self.context = None

    # ---- registration ----------------------------------------------------
    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._params[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    # ---- iteration --------------------------------------------------------
    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def modules(self) -> Iterator["Module"]:
        """Depth-first iteration over self and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        own = prefix or self.name
        yield own, self
        for key, child in self._modules.items():
            yield from child.named_modules(f"{own}.{key}")

    def parameters(self) -> Iterator[Parameter]:
        for module in self.modules():
            yield from module._params.values()

    def named_parameters(self) -> Iterator[Tuple[str, Parameter]]:
        for mod_name, module in self.named_modules():
            for key, param in module._params.items():
                yield f"{mod_name}.{key}", param

    def num_parameters(self) -> int:
        return sum(param.size for param in self.parameters())

    # ---- execution ----------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError(
            f"{type(self).__name__} does not implement forward()"
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class Sequential(Module):
    """Runs child modules in order."""

    def __init__(self, *layers: Module, name: str = "") -> None:
        super().__init__(name or "sequential")
        if not layers:
            raise ConfigurationError("Sequential needs at least one layer")
        self.layers: List[Module] = []
        for index, layer in enumerate(layers):
            key = f"layer{index}"
            setattr(self, key, layer)
            self.layers.append(layer)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
