"""Offloading glue between the framework and the simulation platform.

A :class:`SimulationContext` plays the role of the paper's modified
PyTorch runtime: it owns (or wraps) an :class:`~repro.engine.Accelerator`
and translates framework-level layer calls into STONNE operations. Two
usage styles are supported, matching Fig. 2d:

1. **Explicit simulated layers** — build the model with
   :class:`SimulatedConv2d` / :class:`SimulatedLinear` /
   :class:`SimulatedMaxPool2d`, each constructed with the context (the
   analogue of passing ``stonne_hw.cfg`` to every ``Simulated*`` call).
2. **Transparent attachment** — build a normal model and call
   :func:`simulate` (or :func:`attach_context`) to offload its
   compute-intensive layers without touching the model definition.

Layer outputs are bit-identical to what the accelerator's functional path
produces, so full-model predictions can be compared against the native CPU
execution exactly as in the paper's functional validation.
"""

from __future__ import annotations

import numpy as np

from repro.engine.accelerator import Accelerator
from repro.errors import ConfigurationError
from repro.frontend.layers import Conv2d, Linear, MaxPool2d
from repro.frontend.module import Module


class SimulationContext:
    """Binds a model execution to one simulated accelerator instance.

    ``tiles`` optionally maps layer names to explicit
    :class:`~repro.config.TileConfig` mappings — the per-layer tile
    configuration the paper's modified models carry alongside the hardware
    ``.cfg`` file. Layers without an entry use the mapper's automatic
    tile.
    """

    def __init__(
        self, accelerator: Accelerator, round_builder=None, tiles=None
    ) -> None:
        self.accelerator = accelerator
        #: filter-scheduling policy for sparse executions (use case 3)
        self.round_builder = round_builder
        #: per-layer tile overrides, keyed by layer name
        self.tiles = dict(tiles or {})
        self._op_index = 0

    def _next_name(self, module: Module, kind: str) -> str:
        self._op_index += 1
        return f"{self._op_index:03d}-{module.name or kind}"

    @property
    def is_sparse(self) -> bool:
        return self.accelerator.sparse_controller is not None

    # ---- offloaded operations -------------------------------------------
    def conv(self, module: Conv2d, x: np.ndarray) -> np.ndarray:
        return self.accelerator.run_conv(
            module.weight.data,
            x,
            stride=module.stride,
            padding=module.padding,
            groups=module.groups,
            tile=self.tiles.get(module.name),
            name=self._next_name(module, "conv"),
            round_builder=self.round_builder,
        )

    def linear(self, module: Linear, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        lead_shape = x.shape[:-1]
        flat = x.reshape(-1, x.shape[-1])
        name = self._next_name(module, "linear")
        weight = module.weight.data
        if self.is_sparse:
            out = self.accelerator.run_spmm(
                weight, flat.T, round_builder=self.round_builder, name=name
            ).T
        else:
            out = self.accelerator.run_gemm(
                weight, flat.T, tile=self.tiles.get(module.name), name=name
            ).T
        return out.reshape(*lead_shape, weight.shape[0]).astype(np.float32)

    def matmul(self, a: np.ndarray, b: np.ndarray, name: str = "matmul") -> np.ndarray:
        """Dynamic activation-by-activation GEMM (transformer attention)."""
        self._op_index += 1
        name = f"{self._op_index:03d}-{name}"
        if self.is_sparse:
            return self.accelerator.run_spmm(
                a, b, round_builder=self.round_builder, name=name
            )
        return self.accelerator.run_gemm(a, b, name=name)

    def maxpool(self, module: MaxPool2d, x: np.ndarray) -> np.ndarray:
        return self.accelerator.run_maxpool(
            x, module.pool, module.stride, name=self._next_name(module, "maxpool")
        )


def attach_context(model: Module, context: SimulationContext) -> Module:
    """Offload ``model``'s compute-intensive layers to ``context``."""
    for module in model.modules():
        module.context = context
    return model


def detach_context(model: Module) -> Module:
    """Return the model to native CPU execution."""
    for module in model.modules():
        module.context = None
    return model


def simulate(
    model: Module, accelerator: Accelerator, round_builder=None, tiles=None
) -> SimulationContext:
    """Attach ``model`` to ``accelerator``; returns the created context."""
    context = SimulationContext(
        accelerator, round_builder=round_builder, tiles=tiles
    )
    attach_context(model, context)
    return context


def simulate_parallel(
    model: Module,
    accelerator: Accelerator,
    x: np.ndarray,
    jobs: int = 1,
    cache=None,
    round_builder=None,
    tiles=None,
    progress=None,
):
    """Run ``model(x)`` with layers timed across a process pool.

    The merged per-layer reports land in ``accelerator.report`` exactly as
    a serial :func:`simulate` run would leave them (byte-identical cycles,
    counters and outputs — pinned by the differential suite). ``cache``
    optionally reuses results from a :class:`~repro.parallel.SimCache`;
    ``progress`` optionally streams per-layer completion through a
    :class:`~repro.observability.telemetry.ProgressEmitter`.
    Returns the :class:`~repro.parallel.runner.ModelRunResult`.
    """
    from repro.parallel import ParallelModelRunner

    runner = ParallelModelRunner(
        accelerator.config,
        jobs=jobs,
        cache=cache,
        observability=accelerator.obs,
        round_builder=round_builder,
        tiles=tiles,
        progress=progress,
    )
    result = runner.run_model(
        model, x, base_cycle=accelerator.report.total_cycles
    )
    for layer in result.report.layers:
        accelerator.report.append(layer)
    for key, value in result.report.metadata.items():
        if key.startswith("parallel_"):
            accelerator.report.metadata[key] = value
    return result


class SimulatedConv2d(Conv2d):
    """A convolution constructed directly in simulated mode (Fig. 2d)."""

    def __init__(self, context: SimulationContext, *args, **kwargs) -> None:
        if not isinstance(context, SimulationContext):
            raise ConfigurationError(
                "SimulatedConv2d needs a SimulationContext as its first argument"
            )
        super().__init__(*args, **kwargs)
        self.context = context


class SimulatedLinear(Linear):
    """A fully-connected layer constructed directly in simulated mode."""

    def __init__(self, context: SimulationContext, *args, **kwargs) -> None:
        if not isinstance(context, SimulationContext):
            raise ConfigurationError(
                "SimulatedLinear needs a SimulationContext as its first argument"
            )
        super().__init__(*args, **kwargs)
        self.context = context


class SimulatedMaxPool2d(MaxPool2d):
    """A pooling layer constructed directly in simulated mode."""

    def __init__(self, context: SimulationContext, *args, **kwargs) -> None:
        if not isinstance(context, SimulationContext):
            raise ConfigurationError(
                "SimulatedMaxPool2d needs a SimulationContext as its first argument"
            )
        super().__init__(*args, **kwargs)
        self.context = context
