"""Declarative (Caffe-style) model descriptions.

The original tool integrates two front-ends: PyTorch (imperative, the
:mod:`repro.frontend.module` analogue) and Caffe, whose networks are
*declared* in prototxt files rather than written as code. This module is
the Caffe-flavoured path of the reproduction: a network is a list of layer
declarations (dicts, or a JSON document), compiled into the same
:class:`~repro.frontend.module.Module` graph — so declared networks
simulate, validate and offload exactly like imperative ones.

Supported layer types::

    {"type": "conv",      "name": ..., "in": C, "out": K, "kernel": k,
     "stride": 1, "padding": 0, "groups": 1}
    {"type": "linear",    "name": ..., "in": F, "out": G}
    {"type": "relu"} | {"type": "softmax"} | {"type": "log_softmax"}
    {"type": "maxpool",   "pool": p, "stride": p}
    {"type": "avgpool",   "pool": p or null (global)}
    {"type": "batchnorm", "channels": C}
    {"type": "flatten"}

Example::

    net = build_from_description({
        "name": "lenet-ish",
        "layers": [
            {"type": "conv", "in": 1, "out": 8, "kernel": 5},
            {"type": "relu"},
            {"type": "maxpool", "pool": 2},
            {"type": "flatten"},
            {"type": "linear", "in": 8 * 12 * 12, "out": 10},
        ],
    }, seed=0)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.frontend.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    LogSoftmax,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.frontend.module import Module, Sequential

_REQUIRED_KEYS = {
    "conv": ("in", "out", "kernel"),
    "linear": ("in", "out"),
    "maxpool": ("pool",),
    "batchnorm": ("channels",),
}


def _build_layer(spec: Dict, index: int, rng: np.random.Generator) -> Module:
    if "type" not in spec:
        raise ConfigurationError(f"layer {index}: missing 'type'")
    kind = str(spec["type"]).lower()
    for key in _REQUIRED_KEYS.get(kind, ()):
        if key not in spec:
            raise ConfigurationError(
                f"layer {index} ({kind}): missing required key {key!r}"
            )
    name = spec.get("name", f"{kind}{index}")

    if kind == "conv":
        return Conv2d(
            int(spec["in"]), int(spec["out"]), int(spec["kernel"]),
            stride=int(spec.get("stride", 1)),
            padding=int(spec.get("padding", 0)),
            groups=int(spec.get("groups", 1)),
            bias=bool(spec.get("bias", True)),
            name=name, rng=rng,
        )
    if kind == "linear":
        return Linear(
            int(spec["in"]), int(spec["out"]),
            bias=bool(spec.get("bias", True)), name=name, rng=rng,
        )
    if kind == "relu":
        return ReLU()
    if kind == "softmax":
        return Softmax(name=name)
    if kind == "log_softmax":
        return LogSoftmax(name=name)
    if kind == "maxpool":
        return MaxPool2d(int(spec["pool"]), int(spec.get("stride", spec["pool"])),
                         name=name)
    if kind == "avgpool":
        pool = spec.get("pool")
        return AvgPool2d(int(pool) if pool is not None else None, name=name)
    if kind == "batchnorm":
        return BatchNorm2d(int(spec["channels"]), name=name, rng=rng)
    if kind == "flatten":
        return Flatten()
    raise ConfigurationError(f"layer {index}: unknown layer type {kind!r}")


def build_from_description(description: Dict, seed: int = 0) -> Sequential:
    """Compile a declarative network description into a Sequential model."""
    if "layers" not in description or not description["layers"]:
        raise ConfigurationError("a network description needs a 'layers' list")
    rng = np.random.default_rng(seed)
    layers: List[Module] = [
        _build_layer(spec, index, rng)
        for index, spec in enumerate(description["layers"])
    ]
    return Sequential(*layers, name=description.get("name", "declared-net"))


def load_network(path: Union[str, Path], seed: int = 0) -> Sequential:
    """Build a model from a JSON network description file."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"network description not found: {path}")
    try:
        description = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"malformed network description: {exc}") from exc
    return build_from_description(description, seed=seed)


def describe(model: Sequential) -> Dict:
    """The inverse: a description dict for a Sequential of known layers.

    Lossy only in weights (descriptions declare structure; weights come
    from the seed), so ``build_from_description(describe(m), seed)`` gives
    a structurally identical network.
    """
    layers: List[Dict] = []
    for layer in model.layers:
        if isinstance(layer, Conv2d):
            layers.append({
                "type": "conv", "name": layer.name,
                "in": layer.in_channels, "out": layer.out_channels,
                "kernel": layer.kernel_size, "stride": layer.stride,
                "padding": layer.padding, "groups": layer.groups,
                "bias": layer.bias is not None,
            })
        elif isinstance(layer, Linear):
            layers.append({
                "type": "linear", "name": layer.name,
                "in": layer.in_features, "out": layer.out_features,
                "bias": layer.bias is not None,
            })
        elif isinstance(layer, MaxPool2d):
            layers.append({"type": "maxpool", "name": layer.name,
                           "pool": layer.pool, "stride": layer.stride})
        elif isinstance(layer, AvgPool2d):
            layers.append({"type": "avgpool", "name": layer.name,
                           "pool": layer.pool})
        elif isinstance(layer, BatchNorm2d):
            layers.append({"type": "batchnorm", "name": layer.name,
                           "channels": layer.channels})
        elif isinstance(layer, ReLU):
            layers.append({"type": "relu"})
        elif isinstance(layer, Softmax):
            layers.append({"type": "softmax"})
        elif isinstance(layer, LogSoftmax):
            layers.append({"type": "log_softmax"})
        elif isinstance(layer, Flatten):
            layers.append({"type": "flatten"})
        else:
            raise ConfigurationError(
                f"cannot describe layer of type {type(layer).__name__}"
            )
    return {"name": model.name, "layers": layers}
