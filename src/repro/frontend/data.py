"""Seeded synthetic inputs.

Functional validation (paper Section V) only needs *identical inputs* fed
to the native and simulated paths; these generators provide deterministic
image batches and token sequences standing in for the ImageNet / COCO /
SQuAD samples (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np


def synthetic_images(
    batch: int = 1, channels: int = 3, size: int = 32, seed: int = 0
) -> np.ndarray:
    """Normalized image-like tensors (N, C, H, W) with spatial structure.

    A mixture of low-frequency gradients and noise, roughly matching the
    statistics of normalized natural images (zero mean, unit-ish scale) so
    that ReLU sparsity and value magnitudes behave plausibly.
    """
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:size, 0:size] / max(size - 1, 1)
    images = np.empty((batch, channels, size, size), dtype=np.float32)
    for n in range(batch):
        for c in range(channels):
            gx, gy, phase = rng.uniform(-2, 2, size=3)
            smooth = np.sin(2 * np.pi * (gx * xx + gy * yy) + phase)
            noise = rng.standard_normal((size, size)) * 0.3
            images[n, c] = smooth + noise
    images -= images.mean()
    images /= images.std() + 1e-8
    return images.astype(np.float32)


def synthetic_token_ids(
    batch: int = 1, seq_len: int = 16, vocab_size: int = 100, seed: int = 0
) -> np.ndarray:
    """Random token id sequences (N, L) standing in for tokenized text."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, vocab_size, size=(batch, seq_len), dtype=np.int64)
