"""The Input Module: a NumPy mini DL framework (paper Fig. 2).

STONNE plugs into a DL framework as an accelerator device; the framework
drives execution layer by layer, offloads compute-intensive operations to
the simulator and runs the rest natively, so complete DNN models execute
with real values. This package is that framework for the reproduction
(see DESIGN.md for the PyTorch substitution rationale):

- :mod:`repro.frontend.module` / :mod:`repro.frontend.layers` — the module
  system and layer zoo (Conv2d, Linear, MaxPool2d, BatchNorm2d, ...).
- :mod:`repro.frontend.functional` — the native CPU implementations
  (the reference outputs for functional validation).
- :mod:`repro.frontend.simulated` — the offloading glue: a
  :class:`SimulationContext` attached to a model redirects its
  compute-intensive layers to a simulated accelerator, exactly like the
  paper's ``SimulatedConv2d`` / ``SimulatedLinear`` calls.
- :mod:`repro.frontend.models` — scaled, structurally faithful versions
  of the seven Table I models with Table I sparsity levels.
- :mod:`repro.frontend.data` — seeded synthetic inputs.
"""

from repro.frontend.declarative import (
    build_from_description,
    describe,
    load_network,
)
from repro.frontend.folding import fold_batchnorms, fold_conv_bn
from repro.frontend.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    LayerNorm,
    Linear,
    LogSoftmax,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.frontend.module import Module, Parameter, Sequential
from repro.frontend.simulated import (
    SimulatedConv2d,
    SimulatedLinear,
    SimulatedMaxPool2d,
    SimulationContext,
    attach_context,
    detach_context,
    simulate,
)

__all__ = [
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Flatten",
    "LayerNorm",
    "Linear",
    "LogSoftmax",
    "MaxPool2d",
    "Module",
    "Parameter",
    "ReLU",
    "Sequential",
    "SimulatedConv2d",
    "SimulatedLinear",
    "SimulatedMaxPool2d",
    "SimulationContext",
    "Softmax",
    "attach_context",
    "build_from_description",
    "describe",
    "detach_context",
    "fold_batchnorms",
    "fold_conv_bn",
    "load_network",
    "simulate",
]
