"""Wall-clock profiling hooks for the simulator itself.

Unlike the tracer and metrics recorder — which observe the *simulated*
machine on its cycle axis — the profiler observes the *simulator*: where
Python wall-clock time goes while producing those cycles. The engines
bracket their work in named phases (``map``, ``distribute``, ``compute``,
``reduce``, ``drain``, plus ``functional`` for the NumPy execution), so
``--profile`` answers "what would a performance PR need to speed up?".

The disabled path hands out one preallocated no-op context manager, so an
unprofiled simulation pays a single attribute lookup per phase.
"""

from __future__ import annotations

import time
from typing import Dict, List


class _NullPhase:
    """Reusable do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_PHASE = _NullPhase()


class NullProfiler:
    """The disabled profiler: ``phase()`` returns a shared no-op context."""

    enabled = False

    def phase(self, name: str) -> _NullPhase:
        return _NULL_PHASE

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {}


#: process-wide singleton — the default profiler of every component
NULL_PROFILER = NullProfiler()


class _Phase:
    """Times one ``with profiler.phase(name):`` block."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Phase":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profiler._record(self._name, time.perf_counter() - self._start)
        return None


class Profiler(NullProfiler):
    """Accumulates wall-clock seconds and call counts per named phase."""

    enabled = True

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    def phase(self, name: str) -> _Phase:
        return _Phase(self, name)

    def _record(self, name: str, seconds: float) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + 1

    @property
    def phases(self) -> List[str]:
        return sorted(self._seconds)

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        return self._calls.get(name, 0)

    def total_seconds(self) -> float:
        return sum(self._seconds.values())

    def summary(self) -> Dict[str, Dict[str, float]]:
        total = self.total_seconds()
        return {
            name: {
                "seconds": self._seconds[name],
                "calls": float(self._calls[name]),
                "share": self._seconds[name] / total if total else 0.0,
            }
            for name in sorted(self._seconds, key=self._seconds.get, reverse=True)
        }

    def format_summary(self) -> str:
        """Human-readable table, largest phase first."""
        lines = [f"{'phase':<14s} {'calls':>8s} {'wall ms':>10s} {'share':>7s}"]
        for name, row in self.summary().items():
            lines.append(
                f"{name:<14s} {int(row['calls']):>8d} "
                f"{row['seconds'] * 1e3:>10.3f} {row['share']:>6.1%}"
            )
        lines.append(
            f"{'total':<14s} {'':>8s} {self.total_seconds() * 1e3:>10.3f} {'100.0%':>7s}"
        )
        return "\n".join(lines)

    def reset(self) -> None:
        self._seconds.clear()
        self._calls.clear()
