"""The unified host-side metrics facade: counters, gauges, histograms.

The simulated machine already has first-class observability (cycle-level
traces, counter time series, the run registry); this module gives the
*simulator host* the same treatment. One :class:`Telemetry` registry
holds named instruments with Prometheus-style labels:

- :class:`CounterMetric` — monotonically increasing totals
  (cache hits, registry writes, evictions);
- :class:`GaugeMetric` — last-write-wins levels
  (pool queue depth, cache bytes on disk per shard);
- :class:`HistogramMetric` — bucketed distributions of observations
  (per-stage wall seconds, per-task pool seconds).

Everything is plain instance state behind one lock per instrument, so
instrumented call sites are safe to hit from executor done-callbacks.
A process-global registry (:func:`telemetry`) starts *disabled*: every
instrument method is a cheap no-op until :func:`enable_telemetry` flips
it on (the CLI's ``--telemetry`` flag, the bench harness, or a test).
Telemetry never touches simulation state — the differential suite pins
telemetry-on and telemetry-off runs byte-identical.

Exporters (Prometheus text exposition, JSONL snapshots) live in
:mod:`repro.observability.telemetry.export`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: canonical label form: name-sorted (key, value) pairs
LabelKey = Tuple[Tuple[str, str], ...]

#: default histogram buckets, in seconds (wall-clock oriented)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Instrument:
    """Base of all telemetry instruments; owned by one :class:`Telemetry`."""

    kind = "untyped"

    def __init__(self, owner: "Telemetry", name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._owner = owner
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._owner.enabled

    def series(self) -> Dict[LabelKey, object]:
        """Label-set → value snapshot (shape depends on the kind)."""
        raise NotImplementedError


class CounterMetric(Instrument):
    """A monotonically increasing total, optionally per label set."""

    kind = "counter"

    def __init__(self, owner: "Telemetry", name: str, help: str = "") -> None:
        super().__init__(owner, name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: str) -> None:
        if not self.enabled:
            return
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: str) -> float:
        key = _label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return sum(self._values.values())

    def series(self) -> Dict[LabelKey, object]:
        with self._lock:
            return dict(self._values)


class GaugeMetric(Instrument):
    """A last-write-wins level, optionally per label set."""

    kind = "gauge"

    def __init__(self, owner: "Telemetry", name: str, help: str = "") -> None:
        super().__init__(owner, name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def add(self, delta: float, **labels: str) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(delta)

    def value(self, **labels: str) -> float:
        key = _label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def series(self) -> Dict[LabelKey, object]:
        with self._lock:
            return dict(self._values)


class HistogramMetric(Instrument):
    """A bucketed distribution with per-label-set count and sum."""

    kind = "histogram"

    def __init__(
        self,
        owner: "Telemetry",
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(owner, name, help)
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.buckets = bounds
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: str) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * len(self.buckets)
                self._counts[key] = counts
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + float(value)
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        with self._lock:
            return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: str) -> float:
        with self._lock:
            return self._sums.get(_label_key(labels), 0.0)

    def total_sum(self) -> float:
        """Sum of observations over every label set."""
        with self._lock:
            return sum(self._sums.values())

    def series(self) -> Dict[LabelKey, object]:
        with self._lock:
            return {
                key: {
                    "count": self._totals.get(key, 0),
                    "sum": self._sums.get(key, 0.0),
                    "buckets": list(self._counts.get(key, [])),
                }
                for key in self._totals
            }


class Telemetry:
    """A named-instrument registry; get-or-create semantics per name."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: Dict[str, Instrument] = {}

    # ---- instrument factories -----------------------------------------
    def _get_or_create(self, cls: type, name: str, help: str,
                       **kwargs: object) -> Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"telemetry instrument {name!r} already registered "
                        f"as a {existing.kind}"
                    )
                return existing
            instrument = cls(self, name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> CounterMetric:
        instrument = self._get_or_create(CounterMetric, name, help)
        assert isinstance(instrument, CounterMetric)
        return instrument

    def gauge(self, name: str, help: str = "") -> GaugeMetric:
        instrument = self._get_or_create(GaugeMetric, name, help)
        assert isinstance(instrument, GaugeMetric)
        return instrument

    def histogram(
        self, name: str, help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> HistogramMetric:
        instrument = self._get_or_create(
            HistogramMetric, name, help, buckets=buckets
        )
        assert isinstance(instrument, HistogramMetric)
        return instrument

    # ---- introspection ------------------------------------------------
    def instruments(self) -> List[Instrument]:
        """Every registered instrument, name-sorted (export order)."""
        with self._lock:
            return [self._instruments[n] for n in sorted(self._instruments)]

    def get(self, name: str) -> Optional[Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-able view: name → {kind, help, series} with string labels."""
        result: Dict[str, Dict[str, object]] = {}
        for instrument in self.instruments():
            series = {
                ",".join(f"{k}={v}" for k, v in key) or "": value
                for key, value in sorted(instrument.series().items())
            }
            result[instrument.name] = {
                "kind": instrument.kind,
                "help": instrument.help,
                "series": series,
            }
        return result

    def reset(self) -> None:
        """Drop every instrument (tests and bench phases)."""
        with self._lock:
            self._instruments.clear()


#: the process-global registry: disabled until a surface opts in
_GLOBAL = Telemetry(enabled=False)


def telemetry() -> Telemetry:
    """The process-global telemetry registry."""
    return _GLOBAL


def enable_telemetry(enabled: bool = True) -> Telemetry:
    """Flip the global registry on (or back off); returns it."""
    _GLOBAL.enabled = enabled
    return _GLOBAL


def telemetry_enabled() -> bool:
    return _GLOBAL.enabled
