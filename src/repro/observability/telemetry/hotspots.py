"""Sampling hotspot profiler: host wall-clock per simulator component.

``stonne insight attribute`` answers "which component costs the most
*simulated cycles*"; this module answers the ROADMAP-item-1 question —
"which component costs the most *host seconds* to simulate". A daemon
thread samples the target thread's stack via ``sys._current_frames()``
at a fixed interval and attributes each sample to a component:

1. an explicit :func:`~repro.observability.telemetry.scopes.component_scope`
   pushed by the sampled thread wins, else
2. the innermost stack frame whose filename lives under ``repro/`` maps
   through :func:`component_of_path` (``repro/engine/systolic.py`` →
   ``engine.systolic``, ``repro/noc/distribution.py`` →
   ``noc.distribution``, …), else
3. the sample is ``external`` (interpreter/numpy/stdlib with no repro
   frame) or ``idle`` (thread gone).

Samples also keep a per-``module:function`` breakdown so a report can
show the top call sites inside the winning component. The profiler is
read-only with respect to the simulation: it never touches payloads,
so telemetry-on and -off runs stay byte-identical.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StonneError

#: (subpackage, module-stem) pairs that get a refined component name;
#: any other ``repro/<sub>/...`` frame attributes to its subpackage
_REFINED: Dict[Tuple[str, str], str] = {
    ("engine", "systolic"): "engine.systolic",
    ("engine", "vector"): "engine.vector",
    ("noc", "distribution"): "noc.distribution",
    ("noc", "reduction"): "noc.reduction",
    ("memory", "dram"): "memory.dram",
}

#: attribution sinks that do not count as "named components"
UNATTRIBUTED = ("external", "idle")


def component_of_path(filename: str) -> Optional[str]:
    """Map a frame filename to a component name, or ``None``.

    ``.../repro/<sub>/<mod>.py`` → a refined name when (sub, mod) is in
    ``_REFINED``, else ``<sub>``; ``.../repro/<mod>.py`` → ``<mod>``.
    Paths outside a ``repro`` package return ``None``.
    """
    normalized = filename.replace("\\", "/")
    parts = normalized.split("/")
    try:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return None
    tail = parts[anchor + 1:]
    if not tail:
        return None
    if len(tail) == 1:
        stem = tail[0]
        return stem[:-3] if stem.endswith(".py") else stem
    sub = tail[0]
    stem = tail[1][:-3] if tail[1].endswith(".py") else tail[1]
    return _REFINED.get((sub, stem), sub)


def _frame_site(frame: Any) -> str:
    code = frame.f_code
    component = component_of_path(code.co_filename)
    module = component if component is not None else "external"
    return f"{module}:{code.co_name}"


class HotspotReport:
    """Aggregated sample counts with share math and renderers."""

    def __init__(
        self,
        samples: int,
        components: Dict[str, int],
        sites: Dict[str, Dict[str, int]],
        interval_s: float,
    ) -> None:
        self.samples = samples
        self.components = dict(components)
        self.sites = {k: dict(v) for k, v in sites.items()}
        self.interval_s = interval_s
        #: true wall seconds of the profiled call, when the caller knows it
        self.wall_s: Optional[float] = None

    # ---- derived views ------------------------------------------------
    def shares(self) -> Dict[str, float]:
        """Component → fraction of all samples (sorted descending)."""
        if self.samples == 0:
            return {}
        items = sorted(
            self.components.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return {name: count / self.samples for name, count in items}

    def attributed_fraction(self) -> float:
        """Fraction of samples landing on a named component."""
        if self.samples == 0:
            return 0.0
        named = sum(
            count for name, count in self.components.items()
            if name not in UNATTRIBUTED
        )
        return named / self.samples

    def top_component(self) -> Optional[str]:
        named = {
            name: count for name, count in self.components.items()
            if name not in UNATTRIBUTED
        }
        if not named:
            return None
        return min(named, key=lambda name: (-named[name], name))

    def top_sites(self, component: str, limit: int = 5) -> List[Tuple[str, int]]:
        sites = self.sites.get(component, {})
        ordered = sorted(sites.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered[:limit]

    # ---- renderers ----------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        return {
            "samples": self.samples,
            "interval_s": self.interval_s,
            "wall_s": self.wall_s,
            "wall_s_sampled": self.samples * self.interval_s,
            "attributed_fraction": self.attributed_fraction(),
            "top_component": self.top_component(),
            "shares": self.shares(),
            "components": dict(
                sorted(self.components.items(), key=lambda kv: (-kv[1], kv[0]))
            ),
            "sites": {
                component: dict(
                    sorted(sites.items(), key=lambda kv: (-kv[1], kv[0]))
                )
                for component, sites in sorted(self.sites.items())
            },
        }

    def to_text(self) -> str:
        lines = [
            "host wall-clock hotspots "
            f"({self.samples} samples @ {self.interval_s * 1000:.1f} ms, "
            f"{self.attributed_fraction() * 100:.1f}% attributed)",
        ]
        for name, share in self.shares().items():
            count = self.components[name]
            lines.append(f"  {name:<20s} {share * 100:6.1f}%  ({count} samples)")
            if name not in UNATTRIBUTED:
                for site, hits in self.top_sites(name, limit=3):
                    lines.append(f"      {site:<30s} {hits}")
        top = self.top_component()
        if top is not None:
            lines.append(f"top component: {top}")
        return "\n".join(lines)

    def to_html(self) -> str:
        rows = []
        for name, share in self.shares().items():
            width = max(1, int(round(share * 300)))
            rows.append(
                "<tr><td>{name}</td><td>{pct:.1f}%</td>"
                "<td><div class='bar' style='width:{w}px'></div></td>"
                "<td>{count}</td></tr>".format(
                    name=name, pct=share * 100, w=width,
                    count=self.components[name],
                )
            )
        payload = json.dumps(self.to_json(), indent=2, sort_keys=True)
        return (
            "<!doctype html><html><head><meta charset='utf-8'>"
            "<title>stonne hotspots</title><style>"
            "body{font-family:monospace;margin:2em}"
            "table{border-collapse:collapse}"
            "td{padding:2px 12px;border-bottom:1px solid #ddd}"
            ".bar{background:#4a78c0;height:12px}"
            "</style></head><body>"
            f"<h1>Host wall-clock hotspots</h1>"
            f"<p>{self.samples} samples @ {self.interval_s * 1000:.1f} ms, "
            f"{self.attributed_fraction() * 100:.1f}% attributed to named "
            "components.</p>"
            "<table><tr><th>component</th><th>share</th><th></th>"
            f"<th>samples</th></tr>{''.join(rows)}</table>"
            f"<h2>Raw data</h2><pre>{payload}</pre>"
            "</body></html>"
        )


class HotspotSampler:
    """Samples one thread's stack on a daemon thread.

    Use as a context manager around the work to profile::

        with HotspotSampler(interval_s=0.002) as sampler:
            run_model(...)
        report = sampler.report()

    ``record(frame)`` is the attribution core and is separable for
    tests: synthetic duck-typed frames (``f_code.co_filename``,
    ``f_back``) exercise the mapping without any threading.
    """

    def __init__(
        self,
        interval_s: float = 0.002,
        thread_id: Optional[int] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval_s = interval_s
        self.thread_id = (
            thread_id if thread_id is not None else threading.get_ident()
        )
        self.samples = 0
        self.components: Dict[str, int] = {}
        self.sites: Dict[str, Dict[str, int]] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ---- attribution core ---------------------------------------------
    def record(self, frame: Any) -> str:
        """Attribute one sampled stack; returns the component charged."""
        from repro.observability.telemetry.scopes import current_component

        self.samples += 1
        component: Optional[str] = None
        if frame is None:
            component = "idle"
        else:
            component = current_component(self.thread_id)
        site: Optional[str] = None
        if component is None or component not in UNATTRIBUTED:
            walker = frame
            while walker is not None:
                mapped = component_of_path(walker.f_code.co_filename)
                if mapped is not None:
                    if component is None:
                        component = mapped
                    site = _frame_site(walker)
                    break
                walker = walker.f_back
        if component is None:
            component = "external"
        self.components[component] = self.components.get(component, 0) + 1
        if site is not None and component not in UNATTRIBUTED:
            bucket = self.sites.setdefault(component, {})
            bucket[site] = bucket.get(site, 0) + 1
        return component

    # ---- lifecycle ----------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self.thread_id)
            self.record(frame)

    def start(self) -> "HotspotSampler":
        if self._thread is not None:
            raise StonneError("hotspot sampler already started")
        from repro.observability.telemetry.scopes import activate_scopes

        activate_scopes(True)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="stonne-hotspot-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        from repro.observability.telemetry.scopes import activate_scopes

        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        activate_scopes(False)

    def __enter__(self) -> "HotspotSampler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def report(self) -> HotspotReport:
        return HotspotReport(
            self.samples, self.components, self.sites, self.interval_s
        )


def profile_call(
    fn: Any, interval_s: float = 0.002
) -> Tuple[Any, HotspotReport]:
    """Run ``fn()`` under a sampler; returns ``(result, report)``."""
    sampler = HotspotSampler(interval_s=interval_s)
    start = time.perf_counter()
    with sampler:
        result = fn()
    elapsed = time.perf_counter() - start
    report = sampler.report()
    report.wall_s = elapsed
    return result, report
