"""Component scopes: cheap per-thread markers for the hotspot sampler.

The sampling profiler attributes a stack by walking frames and mapping
filenames to components, but some host time is spent in code that is
*on behalf of* a component without living in its package — e.g. the
dense controller accounting NoC deliveries from ``repro.memory``. A
:func:`component_scope` context manager pushes an explicit component
name onto a per-thread stack; while a sampler is active, the innermost
pushed name wins over the frame-derived guess.

Scopes are designed to cost nothing when no sampler runs: ``push`` is a
single attribute read returning ``False`` until :func:`activate` turns
the registry on. They carry **no state into simulation results** — the
differential suite pins telemetry-on and -off runs byte-identical.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional


class _ScopeRegistry:
    """Per-thread stacks of active component names."""

    def __init__(self) -> None:
        self.active = False
        self._lock = threading.Lock()
        self._stacks: Dict[int, List[str]] = {}

    def activate(self, on: bool) -> None:
        with self._lock:
            self.active = on
            if not on:
                self._stacks.clear()

    def push(self, name: str) -> bool:
        """Push ``name`` for the calling thread; no-op unless active."""
        if not self.active:
            return False
        tid = threading.get_ident()
        with self._lock:
            self._stacks.setdefault(tid, []).append(name)
        return True

    def pop(self) -> None:
        tid = threading.get_ident()
        with self._lock:
            stack = self._stacks.get(tid)
            if stack:
                stack.pop()
                if not stack:
                    del self._stacks[tid]

    def current(self, thread_id: Optional[int] = None) -> Optional[str]:
        """The innermost scope of ``thread_id`` (caller's thread default)."""
        tid = thread_id if thread_id is not None else threading.get_ident()
        with self._lock:
            stack = self._stacks.get(tid)
            if not stack:
                return None
            return stack[-1]


_SCOPES = _ScopeRegistry()


def scope_registry() -> _ScopeRegistry:
    return _SCOPES


def activate_scopes(on: bool = True) -> None:
    """Turn scope tracking on/off (driven by the hotspot sampler)."""
    _SCOPES.activate(on)


def current_component(thread_id: Optional[int] = None) -> Optional[str]:
    return _SCOPES.current(thread_id)


class _ComponentScope:
    __slots__ = ("name", "_pushed")

    def __init__(self, name: str) -> None:
        self.name = name
        self._pushed = False

    def __enter__(self) -> "_ComponentScope":
        self._pushed = _SCOPES.push(self.name)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._pushed:
            _SCOPES.pop()
            self._pushed = False


def component_scope(name: str) -> _ComponentScope:
    """Mark the enclosed host work as belonging to component ``name``.

    Free (one attribute read) unless a hotspot sampler is running.
    """
    return _ComponentScope(name)
