"""Live progress streaming for model runs and sweeps.

A :class:`ProgressEmitter` turns per-layer completion callbacks from the
parallel runner into three user-facing surfaces:

- a ``--live`` TTY renderer (single status line rewritten in place);
- plain per-layer lines when the stream is not a terminal (CI logs,
  ``| tee``), so piping ``--live`` output never emits control codes;
- an optional JSONL event stream (``model_start`` / ``layer_done`` /
  ``model_end`` events) for future simulation-as-a-service clients.

ETA comes from :class:`EtaEstimator`: the run registry keeps wall-clock
seconds for past runs of the same (workload, config-hash) pair, so the
first layers of a fresh run can already show a history-based estimate,
blended toward the observed rate as layers complete. The emitter is a
pure observer — it reads completion events and never touches payloads.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Dict, IO, List, Optional, Union


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class EtaEstimator:
    """Blends registry history with the observed per-layer rate."""

    def __init__(self, history_wall_s: Optional[List[float]] = None) -> None:
        self.history_wall_s = [
            float(v) for v in (history_wall_s or []) if v and v > 0
        ]

    @classmethod
    def from_registry(
        cls,
        registry_path: Optional[Union[str, Path]],
        workload: str,
        config_hash: str,
        limit: int = 10,
    ) -> "EtaEstimator":
        """History from past non-cached runs of the same config hash.

        Any registry problem (missing directory, locked or corrupt
        database) degrades to an empty history — progress still renders,
        just without an upfront ETA.
        """
        import sqlite3

        from repro.observability.registry import RunRegistry

        samples: List[float] = []
        try:
            with RunRegistry(registry_path) as registry:
                for record in registry.list_runs(
                    workload=workload, config_hash=config_hash, limit=limit
                ):
                    if record.cached or record.wall_clock_s is None:
                        continue
                    samples.append(float(record.wall_clock_s))
        except (OSError, ValueError, sqlite3.Error):
            # degraded mode: no history, no upfront ETA — never sink a run
            return cls([])
        return cls(samples)

    def estimate(
        self, done: int, total: int, elapsed_s: float
    ) -> Optional[float]:
        """Estimated remaining seconds, or ``None`` with no basis."""
        if total <= 0 or done >= total:
            return 0.0 if total > 0 else None
        history = _median(self.history_wall_s) if self.history_wall_s else None
        if done <= 0:
            return history
        rate_eta = (elapsed_s / done) * (total - done)
        if history is None:
            return rate_eta
        frac = done / total
        history_eta = max(history - elapsed_s, 0.0)
        return frac * rate_eta + (1.0 - frac) * history_eta


def _format_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "--:--"
    seconds = max(int(round(eta_s)), 0)
    if seconds >= 3600:
        return f"{seconds // 3600}:{(seconds % 3600) // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60}:{seconds % 60:02d}"


class ProgressEmitter:
    """Streams per-layer progress to a TTY, plain lines, and/or JSONL.

    Thread-safe: the parallel runner fires ``layer_done`` from executor
    done-callbacks. ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        workload: str,
        total: int,
        stream: Optional[IO[str]] = None,
        live: bool = False,
        jsonl_path: Optional[Union[str, Path]] = None,
        eta: Optional[EtaEstimator] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.workload = workload
        self.total = int(total)
        self.stream = stream
        self.live = live
        self.eta = eta if eta is not None else EtaEstimator()
        self.clock = clock
        self.done = 0
        self._lock = threading.Lock()
        self._start = self.clock()
        self._tty = bool(
            live and stream is not None
            and getattr(stream, "isatty", lambda: False)()
        )
        self._jsonl: Optional[IO[str]] = None
        if jsonl_path is not None:
            path = Path(jsonl_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._jsonl = path.open("w", encoding="utf-8")

    # ---- events --------------------------------------------------------
    def model_start(self) -> None:
        with self._lock:
            self._start = self.clock()
            self._emit_event({
                "event": "model_start",
                "workload": self.workload,
                "total": self.total,
            })
            if self.stream is not None and not self._tty:
                self.stream.write(
                    f"[{self.workload}] simulating {self.total} layers\n"
                )
                self.stream.flush()

    def layer_done(
        self, index: int, name: str, kind: str, mode: str
    ) -> None:
        """One layer finished; ``mode`` is simulated/cached/deduplicated."""
        with self._lock:
            self.done += 1
            elapsed = self.clock() - self._start
            eta_s = self.eta.estimate(self.done, self.total, elapsed)
            self._emit_event({
                "event": "layer_done",
                "workload": self.workload,
                "index": index,
                "layer": name,
                "kind": kind,
                "mode": mode,
                "done": self.done,
                "total": self.total,
                "elapsed_s": round(elapsed, 4),
                "eta_s": round(eta_s, 4) if eta_s is not None else None,
            })
            if self.stream is None:
                return
            if self._tty:
                line = (
                    f"\r[{self.workload}] {self.done}/{self.total} "
                    f"{name} ({mode})  elapsed {elapsed:.1f}s  "
                    f"eta {_format_eta(eta_s)}   "
                )
                self.stream.write(line)
            else:
                self.stream.write(
                    f"[{self.workload}] {self.done}/{self.total} "
                    f"{name} ({mode}) elapsed={elapsed:.1f}s "
                    f"eta={_format_eta(eta_s)}\n"
                )
            self.stream.flush()

    def model_end(self) -> None:
        with self._lock:
            elapsed = self.clock() - self._start
            self._emit_event({
                "event": "model_end",
                "workload": self.workload,
                "done": self.done,
                "total": self.total,
                "elapsed_s": round(elapsed, 4),
            })
            if self.stream is not None:
                if self._tty:
                    self.stream.write("\n")
                self.stream.write(
                    f"[{self.workload}] done: {self.done}/{self.total} "
                    f"layers in {elapsed:.1f}s\n"
                )
                self.stream.flush()
            if self._jsonl is not None:
                self._jsonl.close()
                self._jsonl = None

    # ---- plumbing ------------------------------------------------------
    def _emit_event(self, event: Dict[str, object]) -> None:
        if self._jsonl is not None:
            self._jsonl.write(json.dumps(event, sort_keys=True) + "\n")
            self._jsonl.flush()

    def close(self) -> None:
        with self._lock:
            if self._jsonl is not None:
                self._jsonl.close()
                self._jsonl = None
