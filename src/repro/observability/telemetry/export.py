"""Telemetry exporters: Prometheus text exposition and JSONL snapshots.

:func:`to_prometheus` renders a :class:`Telemetry` registry in the
Prometheus text exposition format (``# HELP``/``# TYPE`` headers,
labelled samples, histogram ``_bucket``/``_sum``/``_count`` series with
cumulative ``le`` bounds). :func:`parse_prometheus` reads that format
back into plain dictionaries — used by the round-trip test and handy
for ad-hoc analysis without a Prometheus server.

:func:`write_snapshot` appends one JSON object per call to a ``.jsonl``
file, so long sweeps can leave a time series of registry states behind.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.observability.telemetry.facade import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    LabelKey,
    Telemetry,
)


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _render_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = tuple(key) + extra
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: Telemetry) -> str:
    """Render every instrument in Prometheus text exposition format."""
    lines: List[str] = []
    for instrument in registry.instruments():
        name = instrument.name
        lines.append(f"# HELP {name} {_escape(instrument.help)}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, (CounterMetric, GaugeMetric)):
            for key, value in sorted(instrument.series().items()):
                assert isinstance(value, float)
                lines.append(
                    f"{name}{_render_labels(key)} {_format_value(value)}"
                )
        elif isinstance(instrument, HistogramMetric):
            for key, data in sorted(instrument.series().items()):
                assert isinstance(data, dict)
                buckets = data["buckets"]
                assert isinstance(buckets, list)
                # HistogramMetric stores cumulative bucket counts, which
                # is exactly the exposition-format contract for le=
                for bound, count in zip(instrument.buckets, buckets):
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(key, (('le', repr(float(bound))),))}"
                        f" {count}"
                    )
                total = data["count"]
                assert isinstance(total, int)
                lines.append(
                    f"{name}_bucket{_render_labels(key, (('le', '+Inf'),))}"
                    f" {total}"
                )
                total_sum = data["sum"]
                assert isinstance(total_sum, float)
                lines.append(
                    f"{name}_sum{_render_labels(key)} "
                    f"{_format_value(total_sum)}"
                )
                lines.append(f"{name}_count{_render_labels(key)} {total}")
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    index = 0
    while index < len(text):
        eq = text.index("=", index)
        key = text[index:eq].strip().lstrip(",").strip()
        assert text[eq + 1] == '"'
        cursor = eq + 2
        value_chars: List[str] = []
        while text[cursor] != '"':
            if text[cursor] == "\\":
                nxt = text[cursor + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt)
                )
                cursor += 2
            else:
                value_chars.append(text[cursor])
                cursor += 1
        labels[key] = "".join(value_chars)
        index = cursor + 1
    return labels


def parse_prometheus(text: str) -> Dict[str, Dict[str, object]]:
    """Parse exposition text back to ``name → {kind, help, samples}``.

    ``samples`` maps the rendered sample name (including ``_bucket`` /
    ``_sum`` / ``_count`` suffixes) plus its sorted label string to the
    numeric value — enough structure for round-trip assertions.
    """
    result: Dict[str, Dict[str, object]] = {}

    def _family(name: str) -> Dict[str, object]:
        return result.setdefault(
            name, {"kind": "untyped", "help": "", "samples": {}}
        )

    def _owner_of(sample_name: str) -> Dict[str, float]:
        candidates = [n for n in result if sample_name.startswith(n)]
        name = max(candidates, key=len) if candidates else sample_name
        family_samples = _family(name)["samples"]
        assert isinstance(family_samples, dict)
        return family_samples

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            _family(name)["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            _family(name)["kind"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.rindex("}")
            sample_name = line[:brace]
            labels = _parse_labels(line[brace + 1:close])
            value_text = line[close + 1:].strip()
        else:
            sample_name, _, value_text = line.partition(" ")
            labels = {}
        label_text = ",".join(
            f"{k}={v}" for k, v in sorted(labels.items())
        )
        samples = _owner_of(sample_name)
        samples[f"{sample_name}{{{label_text}}}"] = float(value_text)
    return result


def write_snapshot(
    registry: Telemetry,
    path: Union[str, Path],
    context: Optional[Dict[str, object]] = None,
) -> Path:
    """Append one JSONL snapshot of the registry to ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    record: Dict[str, object] = {"telemetry": registry.snapshot()}
    if context:
        record["context"] = dict(context)
    with target.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return target


def write_telemetry(
    registry: Telemetry,
    path: Union[str, Path],
    format: str = "prom",
    context: Optional[Dict[str, object]] = None,
) -> Path:
    """CLI entry: write the registry as ``prom`` text or a JSONL snapshot."""
    if format == "prom":
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(to_prometheus(registry), encoding="utf-8")
        return target
    if format == "jsonl":
        return write_snapshot(registry, path, context=context)
    raise ValueError(f"unknown telemetry format {format!r}")
