"""Host-side telemetry: metrics facade, hotspot profiler, live progress.

The cycle-level instruments in :mod:`repro.observability` watch the
*simulated machine*; this package watches the *simulator host* — where
wall-clock goes (``hotspots``), how the cache and worker pool behave
(``facade`` instruments), how far a run has progressed (``progress``),
and how to get it all out (``export``). All of it is opt-in and proven
arithmetically neutral by the differential suite.
"""

from repro.observability.telemetry.facade import (
    DEFAULT_BUCKETS,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    Telemetry,
    enable_telemetry,
    telemetry,
    telemetry_enabled,
)
from repro.observability.telemetry.hotspots import (
    HotspotReport,
    HotspotSampler,
    component_of_path,
    profile_call,
)
from repro.observability.telemetry.progress import EtaEstimator, ProgressEmitter
from repro.observability.telemetry.scopes import (
    activate_scopes,
    component_scope,
    current_component,
)
from repro.observability.telemetry.export import (
    parse_prometheus,
    to_prometheus,
    write_snapshot,
    write_telemetry,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "Telemetry",
    "enable_telemetry",
    "telemetry",
    "telemetry_enabled",
    "HotspotReport",
    "HotspotSampler",
    "component_of_path",
    "profile_call",
    "EtaEstimator",
    "ProgressEmitter",
    "activate_scopes",
    "component_scope",
    "current_component",
    "parse_prometheus",
    "to_prometheus",
    "write_snapshot",
    "write_telemetry",
]
