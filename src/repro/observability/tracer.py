"""Cycle-level event tracing.

The simulator fast-forwards through steady phases, so a trace is not a
log of ``cycle()`` calls: engine components emit *spans* — named windows
on the simulated-cycle axis ("this DN delivered operands during cycles
[120, 152)") — plus instant and counter events. :class:`Tracer` collects
them; :class:`NullTracer` is the always-installed no-op fast path, so an
untraced simulation pays only an attribute lookup and a predictable
``if tracer.enabled`` branch per phase.

Timestamps are **accelerator clock cycles**, not wall time. The Chrome
exporter writes cycles into the ``ts``/``dur`` microsecond fields, so in
``chrome://tracing`` / Perfetto one displayed microsecond equals one
simulated cycle (the ``otherData.time_unit`` field records this).

Two exporters are provided:

- :meth:`Tracer.to_chrome` — the Chrome ``trace_event`` JSON object
  format (``{"traceEvents": [...]}``) with per-component thread lanes,
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev;
- :meth:`Tracer.to_jsonl` — one plain JSON object per line, for ad-hoc
  scripting (``jq``, pandas).

:func:`parse_chrome_trace` reads the Chrome format back into
:class:`TraceEvent` records (the schema round-trip the tests pin down).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import SimulationError

#: Chrome trace_event phase codes used by this tracer.
PHASE_SPAN = "X"      # complete event (ts + dur)
PHASE_INSTANT = "i"   # instant event
PHASE_COUNTER = "C"   # counter sample
PHASE_METADATA = "M"  # thread/process naming


@dataclass(frozen=True)
class TraceEvent:
    """One trace record on the simulated-cycle timeline."""

    name: str
    component: str
    phase: str
    start: int
    duration: int = 0
    depth: int = 0
    args: Mapping[str, object] = field(default_factory=dict)

    @property
    def end(self) -> int:
        return self.start + self.duration


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Installed on every :class:`~repro.noc.base.ClockedComponent` by
    default so emission sites never need a ``None`` check; the
    ``enabled`` flag lets hot paths skip building event arguments
    entirely. The contract — no state, no allocation, no recorded
    events — is pinned by ``tests/unit/test_tracer.py``.
    """

    enabled = False
    events: Tuple[TraceEvent, ...] = ()

    def span(self, name: str, component: str, start: int, end: int, **args) -> None:
        pass

    def begin(self, name: str, component: str, cycle: int, **args) -> None:
        pass

    def end(self, cycle: int, **args) -> None:
        pass

    def instant(self, name: str, component: str, cycle: int, **args) -> None:
        pass

    def counter(self, name: str, component: str, cycle: int,
                values: Mapping[str, float]) -> None:
        pass

    def extend(self, events, offset: int = 0) -> None:
        pass


#: process-wide singleton — the default tracer of every component
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Collects span / instant / counter events on the cycle timeline."""

    enabled = True

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        # (name, component, start_cycle, args) of the open begin() spans
        self._stack: List[Tuple[str, str, int, Dict[str, object]]] = []

    # ---- emission -----------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:  # type: ignore[override]
        return self._events

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def span(self, name: str, component: str, start: int, end: int, **args) -> None:
        """Record a closed window [start, end) as one complete event."""
        if end < start:
            raise SimulationError(
                f"span {name!r} ends before it starts ({end} < {start})"
            )
        self._events.append(TraceEvent(
            name=name, component=component, phase=PHASE_SPAN,
            start=int(start), duration=int(end - start),
            depth=len(self._stack), args=dict(args),
        ))

    def begin(self, name: str, component: str, cycle: int, **args) -> None:
        """Open a nested span; close it with :meth:`end`."""
        self._stack.append((name, component, int(cycle), dict(args)))

    def end(self, cycle: int, **args) -> None:
        """Close the innermost open span at ``cycle``."""
        if not self._stack:
            raise SimulationError("Tracer.end() without a matching begin()")
        name, component, start, open_args = self._stack.pop()
        if cycle < start:
            raise SimulationError(
                f"span {name!r} ends before it starts ({cycle} < {start})"
            )
        open_args.update(args)
        self._events.append(TraceEvent(
            name=name, component=component, phase=PHASE_SPAN,
            start=start, duration=int(cycle) - start,
            depth=len(self._stack), args=open_args,
        ))

    def instant(self, name: str, component: str, cycle: int, **args) -> None:
        self._events.append(TraceEvent(
            name=name, component=component, phase=PHASE_INSTANT,
            start=int(cycle), depth=len(self._stack), args=dict(args),
        ))

    def counter(self, name: str, component: str, cycle: int,
                values: Mapping[str, float]) -> None:
        """Record a counter sample (rendered as stacked area tracks)."""
        self._events.append(TraceEvent(
            name=name, component=component, phase=PHASE_COUNTER,
            start=int(cycle), args={k: float(v) for k, v in values.items()},
        ))

    def extend(self, events, offset: int = 0) -> None:
        """Merge foreign events, shifted by ``offset`` cycles.

        A worker process traces each layer on its own accelerator, whose
        clock starts at zero; the parent rebases those events onto the
        model timeline by passing the layer's absolute start cycle. Events
        may be :class:`TraceEvent` records or their ``dataclasses.asdict``
        dictionaries (the wire form workers return).
        """
        for event in events:
            if isinstance(event, Mapping):
                event = TraceEvent(
                    name=str(event["name"]),
                    component=str(event["component"]),
                    phase=str(event["phase"]),
                    start=int(event["start"]),
                    duration=int(event.get("duration", 0)),
                    depth=int(event.get("depth", 0)),
                    args=dict(event.get("args", {})),
                )
            self._events.append(TraceEvent(
                name=event.name, component=event.component, phase=event.phase,
                start=event.start + int(offset), duration=event.duration,
                depth=event.depth, args=dict(event.args),
            ))

    def clear(self) -> None:
        self._events = []
        self._stack = []

    # ---- exporters ----------------------------------------------------
    def _thread_ids(self) -> Dict[str, int]:
        """Stable component → tid mapping in first-appearance order."""
        tids: Dict[str, int] = {}
        for event in self._events:
            if event.component not in tids:
                tids[event.component] = len(tids)
        return tids

    def to_chrome(self, path: Optional[Union[str, Path]] = None,
                  metadata: Optional[Mapping[str, object]] = None) -> str:
        """Serialize to Chrome ``trace_event`` JSON (object format)."""
        if self._stack:
            raise SimulationError(
                f"{len(self._stack)} span(s) still open; end() them before export"
            )
        tids = self._thread_ids()
        records: List[Dict[str, object]] = [{
            "name": "process_name", "ph": PHASE_METADATA, "pid": 0, "tid": 0,
            "args": {"name": "stonne-repro"},
        }]
        for component, tid in tids.items():
            records.append({
                "name": "thread_name", "ph": PHASE_METADATA, "pid": 0,
                "tid": tid, "args": {"name": component},
            })
        for event in self._events:
            record: Dict[str, object] = {
                "name": event.name, "ph": event.phase, "pid": 0,
                "tid": tids[event.component], "ts": event.start,
            }
            if event.phase == PHASE_SPAN:
                record["dur"] = event.duration
            if event.phase == PHASE_INSTANT:
                record["s"] = "t"  # thread-scoped instant
            args: Dict[str, object] = dict(event.args)
            if event.phase == PHASE_SPAN and event.depth:
                args.setdefault("depth", event.depth)
            if args or event.phase == PHASE_COUNTER:
                record["args"] = args
            records.append(record)
        payload: Dict[str, object] = {
            "traceEvents": records,
            "displayTimeUnit": "ms",
            "otherData": {"time_unit": "cycle", **dict(metadata or {})},
        }
        text = json.dumps(payload, indent=1)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def to_jsonl(self, path: Optional[Union[str, Path]] = None) -> str:
        """Serialize to one JSON object per line."""
        lines = []
        for event in self._events:
            lines.append(json.dumps({
                "name": event.name, "component": event.component,
                "phase": event.phase, "start": event.start,
                "duration": event.duration, "depth": event.depth,
                "args": dict(event.args),
            }, sort_keys=True))
        text = "\n".join(lines) + ("\n" if lines else "")
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text


def parse_chrome_trace(text: str) -> List[TraceEvent]:
    """Read a Chrome trace JSON produced by :meth:`Tracer.to_chrome`
    back into :class:`TraceEvent` records (metadata events excluded)."""
    payload = json.loads(text)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("not a Chrome trace object: missing 'traceEvents'")
    names: Dict[int, str] = {}
    for record in payload["traceEvents"]:
        if record.get("ph") == PHASE_METADATA and record.get("name") == "thread_name":
            names[int(record["tid"])] = str(record["args"]["name"])
    events: List[TraceEvent] = []
    for record in payload["traceEvents"]:
        phase = record.get("ph")
        if phase == PHASE_METADATA:
            continue
        args = dict(record.get("args", {}))
        depth = int(args.pop("depth", 0))
        events.append(TraceEvent(
            name=str(record["name"]),
            component=names.get(int(record["tid"]), str(record["tid"])),
            phase=str(phase),
            start=int(record["ts"]),
            duration=int(record.get("dur", 0)),
            depth=depth,
            args=args,
        ))
    return events
