"""Run provenance: who/what/when metadata stamped on every report.

A statistics file that cannot be traced back to the exact configuration,
package version and seed that produced it is a liability once results
are compared across machines or months. :func:`run_metadata` collects
the reproducibility-relevant facts; :func:`config_hash` gives a stable
short digest of a :class:`~repro.config.hardware.HardwareConfig` so two
reports can be matched ("same hardware point?") without diffing every
field.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
import platform
from datetime import datetime, timezone
from typing import Dict, Optional

from repro.config.hardware import HardwareConfig
from repro.version import __version__


def _jsonable(value):
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def config_digest_source(config: HardwareConfig) -> str:
    """The canonical JSON text the config hash is computed over."""
    return json.dumps(_jsonable(config), sort_keys=True)


@functools.lru_cache(maxsize=256)
def config_hash(config: HardwareConfig) -> str:
    """Short stable digest identifying a hardware configuration.

    Memoized: configs are frozen (hashable, compared by value) and the
    simulation cache digests one per layer lookup.
    """
    return hashlib.sha256(
        config_digest_source(config).encode("utf-8")
    ).hexdigest()[:16]


def run_metadata(config: Optional[HardwareConfig] = None,
                 seed: Optional[int] = None) -> Dict[str, object]:
    """Provenance record for one simulation run."""
    import numpy

    metadata: Dict[str, object] = {
        "tool": "stonne-repro",
        "version": __version__,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    if config is not None:
        metadata["config_name"] = config.name
        metadata["config_hash"] = config_hash(config)
    if seed is not None:
        metadata["seed"] = int(seed)
    return metadata
