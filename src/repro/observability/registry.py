"""Durable run registry: every simulation leaves a record to diff against.

The telemetry the other observability instruments collect evaporates
when the process exits — there is no way to ask "did this mapping get
slower since last week?" or "which of my sweep runs produced that
utilization anomaly?". :class:`RunRegistry` closes that gap: runs append
a durable :class:`RunRecord` — provenance, config hash, per-layer
cycles/counters/energy, wall-clock, metrics summary — to a SQLite store
under ``~/.stonne_runs/`` (override with the ``STONNE_RUNS_DIR``
environment variable or an explicit path).

Registration is an *observer*: it reads the finished
:class:`~repro.engine.stats.SimulationReport` and never touches the
simulation, so registered runs stay byte-identical to unregistered ones.
Recording surfaces:

- the CLI records every ``conv`` / ``gemm`` / ``model`` / ``experiment``
  run by default (``--no-registry`` opts out, ``STONNE_REGISTRY=0``
  disables globally);
- :meth:`repro.api.StonneInstance.register_run` records API-driven runs
  (``STONNE_REGISTRY=1`` makes ``run_model`` record automatically);
- parallel workers never open a registry of their own — only the parent
  records, once, after the merged report exists.

Cross-run analysis (diff, regression gating, bottleneck attribution,
HTML reports) lives in :mod:`repro.observability.insight`.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import uuid
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.observability.telemetry.facade import telemetry

#: bump when the stored record payload changes shape
#: (2: per-layer stall-attribution ledgers persisted as layer["stalls"];
#:  3: per-layer fabric-observatory ledgers persisted as layer["fabric"])
#: Readers must stay backward compatible: payloads are plain JSON and
#: older records simply lack the newer per-layer keys, so every consumer
#: treats layer["stalls"] / layer["fabric"] as optional.
SCHEMA_VERSION = 3

#: The committed shape of what :meth:`RunRecord.from_report` persists,
#: per schema version: the top-level payload keys and the per-layer row
#: keys. Append-only history — every version ever shipped keeps its
#: entry so readers know what a stored record of that vintage contains.
#: The SCHEMA-DRIFT lint pass re-derives the *current* key sets straight
#: from the AST of ``from_report`` / ``LayerReport.to_payload`` and
#: diffs them against the entry for SCHEMA_VERSION: changing what gets
#: persisted without bumping the version (and appending here) is a
#: finding before it can corrupt a single store.
REGISTRY_SCHEMA_MANIFEST: Dict[int, Dict[str, List[str]]] = {
    1: {
        "payload": ["config", "layers", "metadata", "metrics", "schema",
                    "totals", "utilization", "workload"],
        "layer": ["counters", "cycles", "energy_total_uj", "kind", "macs",
                  "multiplier_utilization", "name", "outputs"],
    },
    2: {
        "payload": ["config", "extra", "layers", "metadata", "metrics",
                    "schema", "totals", "utilization", "workload"],
        "layer": ["counters", "cycles", "energy_total_uj", "kind", "macs",
                  "multiplier_utilization", "name", "outputs", "stalls"],
    },
    3: {
        "payload": ["config", "extra", "layers", "metadata", "metrics",
                    "schema", "totals", "utilization", "workload"],
        "layer": ["counters", "cycles", "energy_total_uj", "fabric", "kind",
                  "macs", "multiplier_utilization", "name", "outputs",
                  "stalls"],
    },
}

#: environment override for the registry directory
RUNS_DIR_ENV = "STONNE_RUNS_DIR"

#: environment force-switch: "0" disables all recording, "1" also turns
#: on automatic API-level recording
REGISTRY_ENV = "STONNE_REGISTRY"

_DB_NAME = "registry.sqlite3"
_FALSEY = {"0", "false", "no", "off", ""}


def default_registry_dir() -> Path:
    """The registry directory honoring ``STONNE_RUNS_DIR``."""
    override = os.environ.get(RUNS_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".stonne_runs"


def registry_enabled(default: bool = False) -> bool:
    """Resolve the ``STONNE_REGISTRY`` switch against a surface default."""
    value = os.environ.get(REGISTRY_ENV)
    if value is None:
        return default
    return value.strip().lower() not in _FALSEY


@dataclass(frozen=True)
class RunRecord:
    """One registered run: indexed headline columns + the full payload."""

    run_id: str
    created_utc: str
    workload: str
    source: str
    config_name: str
    config_hash: str
    total_cycles: int
    total_macs: int
    energy_total_uj: float
    wall_clock_s: Optional[float]
    cached: bool
    payload: Dict

    @property
    def layers(self) -> List[Dict]:
        return list(self.payload.get("layers", []))

    @property
    def schema(self) -> int:
        """Payload schema version; pre-versioning records read as 1."""
        try:
            return int(self.payload.get("schema", 1))
        except (TypeError, ValueError):
            return 1

    def as_dict(self) -> Dict:
        return {
            "run_id": self.run_id,
            "created_utc": self.created_utc,
            "workload": self.workload,
            "source": self.source,
            "config_name": self.config_name,
            "config_hash": self.config_hash,
            "total_cycles": self.total_cycles,
            "total_macs": self.total_macs,
            "energy_total_uj": self.energy_total_uj,
            "wall_clock_s": self.wall_clock_s,
            "cached": self.cached,
            **{k: v for k, v in self.payload.items() if k != "workload"},
        }

    @classmethod
    def from_report(
        cls,
        report,
        workload: str,
        source: str = "api",
        wall_clock_s: Optional[float] = None,
        cached: bool = False,
        metrics: Optional[Mapping[str, float]] = None,
        extra: Optional[Mapping[str, object]] = None,
    ) -> "RunRecord":
        """Build a record from a :class:`SimulationReport`.

        ``metrics`` is a :meth:`MetricsRecorder.summary` mapping when the
        run sampled a counter time series; ``cached`` marks runs whose
        layers were all replayed from the simulation cache (they still
        register — the cycles are real, only the wall-clock is not
        comparable).
        """
        config = report.config
        energy = report.total_energy()
        layers = []
        for layer in report.layers:
            row = layer.to_payload()
            extra_blob = row.pop("extra", None) or {}
            # traces/metrics do not belong in the DB, but the compact
            # stall ledger does — it is what `insight explain` reads
            stalls = extra_blob.get("stalls")
            if stalls is not None:
                row["stalls"] = stalls
            fabric = extra_blob.get("fabric")
            if fabric is not None:
                row["fabric"] = fabric
            row["energy_total_uj"] = round(layer.energy(config).total_uj, 6)
            layers.append(row)
        payload: Dict = {
            "schema": SCHEMA_VERSION,
            "workload": workload,
            "metadata": dict(report.metadata),
            "config": {
                "name": config.name,
                "num_ms": config.num_ms,
                "dn_bandwidth": config.dn_bandwidth,
                "rn_bandwidth": config.rn_bandwidth,
                "clock_ghz": config.clock_ghz,
                "dtype": config.dtype.value,
                "controller": config.controller.value,
                "dram_bandwidth_gbps": config.dram.bandwidth_gbps,
            },
            "totals": {
                "cycles": report.total_cycles,
                "macs": report.total_macs,
                "runtime_us": report.total_cycles / (config.clock_ghz * 1e3),
                "energy_total_uj": round(energy.total_uj, 6),
            },
            "utilization": report.component_utilization(),
            "metrics": dict(metrics) if metrics else {"samples": 0.0},
            "layers": layers,
        }
        if extra:
            payload["extra"] = dict(extra)
        return cls(
            run_id=uuid.uuid4().hex[:12],
            created_utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            workload=workload,
            source=source,
            config_name=config.name,
            config_hash=str(report.metadata.get("config_hash", "")),
            total_cycles=report.total_cycles,
            total_macs=report.total_macs,
            energy_total_uj=round(energy.total_uj, 6),
            wall_clock_s=wall_clock_s,
            cached=bool(cached),
            payload=payload,
        )

    @classmethod
    def from_payload(
        cls,
        workload: str,
        payload: Mapping[str, object],
        source: str = "experiment",
        wall_clock_s: Optional[float] = None,
        total_cycles: int = 0,
        energy_total_uj: float = 0.0,
        config_name: str = "-",
        config_hash: str = "",
    ) -> "RunRecord":
        """Build a record from an arbitrary payload (experiments, benches)."""
        body = {"schema": SCHEMA_VERSION, "workload": workload, **dict(payload)}
        return cls(
            run_id=uuid.uuid4().hex[:12],
            created_utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            workload=workload,
            source=source,
            config_name=config_name,
            config_hash=config_hash,
            total_cycles=int(total_cycles),
            total_macs=0,
            energy_total_uj=float(energy_total_uj),
            wall_clock_s=wall_clock_s,
            cached=False,
            payload=body,
        )


class RunRegistry:
    """SQLite-backed store of :class:`RunRecord` rows.

    ``path`` may be a directory (the database lands at
    ``<path>/registry.sqlite3``), an explicit ``*.sqlite3`` file, or
    ``None`` for :func:`default_registry_dir`.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        base = Path(path).expanduser() if path is not None else default_registry_dir()
        if base.suffix == ".sqlite3":
            self.db_path = base
        else:
            self.db_path = base / _DB_NAME
        self.db_path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.db_path)
        self._conn.execute(
            """
            CREATE TABLE IF NOT EXISTS runs (
                run_id          TEXT PRIMARY KEY,
                created_utc     TEXT NOT NULL,
                workload        TEXT NOT NULL,
                source          TEXT NOT NULL,
                config_name     TEXT NOT NULL,
                config_hash     TEXT NOT NULL,
                total_cycles    INTEGER NOT NULL,
                total_macs      INTEGER NOT NULL,
                energy_total_uj REAL NOT NULL,
                wall_clock_s    REAL,
                cached          INTEGER NOT NULL DEFAULT 0,
                payload         TEXT NOT NULL
            )
            """
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_runs_workload "
            "ON runs (workload, config_hash)"
        )
        self._conn.commit()

    # ---- write --------------------------------------------------------
    def record(self, record: RunRecord) -> str:
        """Append one record; returns its run id."""
        started = time.perf_counter()
        self._conn.execute(
            "INSERT INTO runs (run_id, created_utc, workload, source, "
            "config_name, config_hash, total_cycles, total_macs, "
            "energy_total_uj, wall_clock_s, cached, payload) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.run_id, record.created_utc, record.workload,
                record.source, record.config_name, record.config_hash,
                record.total_cycles, record.total_macs,
                record.energy_total_uj, record.wall_clock_s,
                int(record.cached), json.dumps(record.payload),
            ),
        )
        self._conn.commit()
        registry = telemetry()
        registry.counter(
            "stonne_registry_writes_total",
            "Run records appended to the registry, by source",
        ).inc(source=record.source)
        registry.histogram(
            "stonne_registry_write_seconds",
            "Host wall seconds per registry write (insert + commit)",
        ).observe(time.perf_counter() - started)
        return record.run_id

    def record_report(self, report, workload: str, **kwargs) -> str:
        """Shorthand: build a record from a report and append it."""
        return self.record(RunRecord.from_report(report, workload, **kwargs))

    def record_payload(self, workload: str, payload: Mapping[str, object],
                       **kwargs) -> str:
        """Shorthand: append a payload-only record (experiment/bench)."""
        return self.record(RunRecord.from_payload(workload, payload, **kwargs))

    # ---- read ---------------------------------------------------------
    _COLUMNS = (
        "run_id, created_utc, workload, source, config_name, config_hash, "
        "total_cycles, total_macs, energy_total_uj, wall_clock_s, cached, "
        "payload"
    )

    @staticmethod
    def _row_to_record(row) -> RunRecord:
        return RunRecord(
            run_id=row[0], created_utc=row[1], workload=row[2], source=row[3],
            config_name=row[4], config_hash=row[5], total_cycles=row[6],
            total_macs=row[7], energy_total_uj=row[8], wall_clock_s=row[9],
            cached=bool(row[10]), payload=json.loads(row[11]),
        )

    def list_runs(
        self,
        workload: Optional[str] = None,
        config_hash: Optional[str] = None,
        source: Optional[str] = None,
        limit: Optional[int] = 50,
    ) -> List[RunRecord]:
        """Newest-first run listing, optionally filtered."""
        clauses, params = [], []
        for column, value in (("workload", workload),
                              ("config_hash", config_hash),
                              ("source", source)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        sql = f"SELECT {self._COLUMNS} FROM runs{where} ORDER BY rowid DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        return [
            self._row_to_record(row)
            for row in self._conn.execute(sql, params).fetchall()
        ]

    def get(self, run_id: str) -> RunRecord:
        """Fetch by exact run id or unique prefix; raises ``KeyError``."""
        rows = self._conn.execute(
            f"SELECT {self._COLUMNS} FROM runs WHERE run_id = ?", (run_id,)
        ).fetchall()
        if not rows:
            rows = self._conn.execute(
                f"SELECT {self._COLUMNS} FROM runs WHERE run_id LIKE ? "
                "ORDER BY rowid DESC",
                (run_id + "%",),
            ).fetchall()
        if not rows:
            raise KeyError(f"no registered run matches {run_id!r}")
        if len(rows) > 1:
            candidates = ", ".join(row[0] for row in rows[:5])
            raise KeyError(
                f"run id prefix {run_id!r} is ambiguous ({candidates}...)"
            )
        return self._row_to_record(rows[0])

    def latest(
        self,
        workload: Optional[str] = None,
        config_hash: Optional[str] = None,
    ) -> Optional[RunRecord]:
        """The most recently recorded run matching the filters, if any."""
        runs = self.list_runs(workload=workload, config_hash=config_hash,
                              limit=1)
        return runs[0] if runs else None

    def resolve(self, ref: str) -> RunRecord:
        """Resolve a CLI run reference.

        ``latest`` → newest run; ``latest:<workload>`` → newest run of
        that workload; anything else → run id or unique prefix.
        """
        if ref == "latest":
            record = self.latest()
            if record is None:
                raise KeyError("registry is empty")
            return record
        if ref.startswith("latest:"):
            record = self.latest(workload=ref[len("latest:"):])
            if record is None:
                raise KeyError(f"no registered run for workload {ref[7:]!r}")
            return record
        return self.get(ref)

    def count(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0])

    # ---- maintenance --------------------------------------------------
    def prune_candidates(
        self, keep: int = 20, workload: Optional[str] = None
    ) -> List[str]:
        """Run ids :meth:`prune` would delete, newest-first, no writes."""
        if keep < 0:
            raise ValueError("keep must be >= 0")
        params: List[object] = []
        where = ""
        if workload is not None:
            where = " WHERE workload = ?"
            params.append(workload)
        rows = self._conn.execute(
            f"SELECT run_id, workload, config_hash FROM runs{where} "
            "ORDER BY rowid DESC",
            params,
        ).fetchall()
        seen: Dict[tuple, int] = {}
        doomed: List[str] = []
        for run_id, wl, chash in rows:
            key = (wl, chash)
            seen[key] = seen.get(key, 0) + 1
            if seen[key] > keep:
                doomed.append(run_id)
        return doomed

    def prune(self, keep: int = 20, workload: Optional[str] = None) -> int:
        """Keep the newest ``keep`` runs per (workload, config_hash).

        Returns the number of deleted rows. With ``workload`` given only
        that workload's groups are pruned.
        """
        doomed = self.prune_candidates(keep=keep, workload=workload)
        if doomed:
            self._conn.executemany(
                "DELETE FROM runs WHERE run_id = ?", [(d,) for d in doomed]
            )
            self._conn.commit()
        return len(doomed)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
