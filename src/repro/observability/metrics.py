"""Metrics time-series: periodic sampling of activity-counter deltas.

End-of-run aggregates cannot show *when* the Global Buffer saturated or
the reduction network idled. :class:`MetricsRecorder` turns the
cumulative :class:`~repro.noc.base.CounterSet` values the components
already maintain into a time series: a sample every ``every`` cycles,
held in a bounded ring buffer.

Because the engines fast-forward through steady phases, counters do not
advance one cycle at a time — the recorder is fed *observations* at
phase boundaries (:meth:`observe` with the absolute cycle and the
current cumulative counters) and linearly interpolates the cumulative
values onto the sampling grid. Within one steady phase the per-cycle
activity really is uniform (that is what makes fast-forwarding exact),
so the interpolation reconstructs precisely what per-cycle sampling
would have recorded, phase boundaries excepted by less than one step.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Mapping, Optional, Union

from repro.noc.base import CounterSet

#: the headline activity signals: mirrored into Chrome traces as counter
#: tracks and used as the default column set of :meth:`MetricsRecorder.summary`
#: so empty runs still report a stable, zeroed schema
HEADLINE_COUNTERS = (
    "gb_reads",
    "gb_writes",
    "mn_multiplications",
    "dn_elements_sent",
    "rn_outputs_written",
    "dram_bytes_read",
    "dram_bytes_written",
)


@dataclass(frozen=True)
class MetricsSample:
    """Cumulative counter values interpolated at one grid cycle."""

    cycle: int
    values: Mapping[str, float]


class MetricsRecorder:
    """Ring-buffered time series of counter samples every N cycles."""

    def __init__(self, every: int = 64, capacity: int = 65536) -> None:
        if every < 1:
            raise ValueError("sampling cadence must be >= 1 cycle")
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.every = every
        self.capacity = capacity
        self._ring: Deque[MetricsSample] = deque(maxlen=capacity)
        self.dropped = 0
        #: monotonically increasing count of samples ever emitted
        self.total_emitted = 0
        self._last_cycle = 0
        self._last_values: Dict[str, float] = {}

    # ---- ingestion ----------------------------------------------------
    def observe(self, cycle: int, counters: Union[CounterSet, Mapping[str, float]],
                ) -> List[MetricsSample]:
        """Feed one observation; returns the newly emitted grid samples.

        ``cycle`` is the absolute accelerator clock and must not move
        backwards; ``counters`` are the *cumulative* values at that
        cycle. Every multiple of ``every`` inside ``(previous, cycle]``
        yields one sample with values linearly interpolated between the
        two observations.
        """
        if cycle < self._last_cycle:
            raise ValueError(
                f"observation cycle went backwards ({cycle} < {self._last_cycle})"
            )
        values = dict(counters.as_dict()) if isinstance(counters, CounterSet) \
            else {k: float(v) for k, v in counters.items()}
        new: List[MetricsSample] = []
        span = cycle - self._last_cycle
        first_grid = (self._last_cycle // self.every + 1) * self.every
        for grid in range(first_grid, cycle + 1, self.every):
            frac = (grid - self._last_cycle) / span if span else 1.0
            keys = self._last_values.keys() | values.keys()
            point = {
                key: self._last_values.get(key, 0.0)
                + frac * (values.get(key, 0.0) - self._last_values.get(key, 0.0))
                for key in sorted(keys)
            }
            sample = MetricsSample(cycle=grid, values=point)
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(sample)
            self.total_emitted += 1
            new.append(sample)
        self._last_cycle = cycle
        self._last_values = values
        return new

    def ingest(
        self,
        samples: List[MetricsSample],
        cycle_offset: int = 0,
        value_offsets: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Append samples recorded by another recorder (a worker process).

        Worker samples carry layer-local cycles and per-layer cumulative
        counter values; ``cycle_offset`` rebases them onto the parent's
        absolute timeline and ``value_offsets`` adds the counters
        accumulated by every earlier layer, so the merged series reads
        like one continuous run. Samples must arrive in timeline order.
        """
        offsets = dict(value_offsets or {})
        for sample in samples:
            cycle = sample.cycle + int(cycle_offset)
            if cycle < self._last_cycle:
                raise ValueError(
                    f"ingested cycle went backwards ({cycle} < {self._last_cycle})"
                )
            keys = set(offsets) | set(sample.values)
            values = {
                key: offsets.get(key, 0.0) + float(sample.values.get(key, 0.0))
                for key in sorted(keys)
            }
            rebased = MetricsSample(cycle=cycle, values=values)
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(rebased)
            self.total_emitted += 1
            self._last_cycle = cycle
            self._last_values = dict(values)

    # ---- access -------------------------------------------------------
    @property
    def samples(self) -> List[MetricsSample]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def deltas(self) -> List[MetricsSample]:
        """Per-interval activity: consecutive-sample differences.

        The derivative view ("GB reads during this window") that
        utilization-over-time plots want, as opposed to the cumulative
        values :attr:`samples` holds.
        """
        result: List[MetricsSample] = []
        previous: Optional[MetricsSample] = None
        for sample in self._ring:
            if previous is not None:
                keys = previous.values.keys() | sample.values.keys()
                result.append(MetricsSample(
                    cycle=sample.cycle,
                    values={
                        key: sample.values.get(key, 0.0) - previous.values.get(key, 0.0)
                        for key in sorted(keys)
                    },
                ))
            previous = sample
        return result

    def columns(self) -> List[str]:
        keys: set = set()
        for sample in self._ring:
            keys.update(sample.values)
        return sorted(keys)

    # ---- exporters ----------------------------------------------------
    def to_csv(self, path: Optional[Union[str, Path]] = None,
               cumulative: bool = False) -> str:
        """CSV with one row per sample (per-interval deltas by default)."""
        columns = self.columns()
        rows = ["cycle," + ",".join(columns)]
        series = self.samples if cumulative else self.deltas()
        for sample in series:
            cells = [str(sample.cycle)]
            for column in columns:
                value = sample.values.get(column, 0.0)
                cells.append(f"{value:g}")
            rows.append(",".join(cells))
        text = "\n".join(rows) + "\n"
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        payload = {
            "every": self.every,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "samples": [
                {"cycle": s.cycle, "values": dict(s.values)} for s in self._ring
            ],
        }
        text = json.dumps(payload, indent=2)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def summary(self, columns: Optional[List[str]] = None) -> Dict[str, float]:
        """Headline numbers for report attachment.

        Always includes ``samples`` (``0.0`` on an empty ring) and one
        entry per counter column — the last cumulative value, or ``0.0``
        when nothing was recorded — so downstream consumers (the run
        registry, CSV tooling) see a stable schema instead of having to
        special-case empty runs.
        """
        if columns is None:
            columns = self.columns() or list(HEADLINE_COUNTERS)
        last = self._ring[-1].values if self._ring else {}
        result = {
            "every": float(self.every),
            "samples": float(len(self._ring)),
            "dropped": float(self.dropped),
        }
        for column in columns:
            result[column] = float(last.get(column, 0.0))
        return result


def utilization_series(recorder: MetricsRecorder, num_ms: int) -> List[Dict[str, float]]:
    """Multiplier-utilization-over-time derived from the recorded deltas."""
    if num_ms < 1:
        raise ValueError("num_ms must be >= 1")
    rows: List[Dict[str, float]] = []
    for delta in recorder.deltas():
        mults = delta.values.get("mn_multiplications", 0.0)
        window = recorder.every
        rows.append({
            "cycle": float(delta.cycle),
            "utilization": min(1.0, mults / (num_ms * window)) if window else 0.0,
        })
    return rows
