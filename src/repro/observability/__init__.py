"""Observability: tracing, metrics time-series and profiling hooks.

Three coordinated instruments over one simulation:

- :mod:`repro.observability.tracer` — span/instant/counter events on the
  simulated-cycle timeline, exported as Chrome ``trace_event`` JSON
  (``chrome://tracing`` / Perfetto) or JSONL;
- :mod:`repro.observability.metrics` — periodic sampling of activity
  counters into a ring-buffered time series (CSV / JSON);
- :mod:`repro.observability.profiler` — wall-clock phase timers over the
  simulator itself (``map`` / ``distribute`` / ``compute`` / ``reduce``
  / ``drain``);

plus :mod:`repro.observability.stalls` (cycle-exact stall attribution:
every simulated cycle of every component classified into a closed
taxonomy under a conservation invariant, surfaced as ``stonne insight
explain``), :mod:`repro.observability.fabric` (the fabric observatory:
spatially-resolved per-level DN/MN/RN utilization, per-link congestion
and tier-boundary FIFO occupancy under an exact consistency invariant,
surfaced as ``stonne insight fabric``), :mod:`repro.observability.
provenance` (run metadata stamped
on every report), :mod:`repro.observability.validate` (trace schema
checking) and :mod:`repro.observability.telemetry` (host-side metrics
facade, sampling hotspot profiler, live progress, Prometheus/JSONL
exporters). :class:`Observability` bundles the instruments for one
accelerator; everything is off by default and near-free when disabled.

Usage::

    from repro import Accelerator, maeri_like
    from repro.observability import Observability

    obs = Observability.create(trace=True, metrics_every=64, profile=True)
    acc = Accelerator(maeri_like(num_ms=64, bandwidth=16), observability=obs)
    acc.run_gemm(a, b)
    obs.tracer.to_chrome("trace.json")     # load in chrome://tracing
    obs.metrics.to_csv("metrics.csv")
    print(obs.profiler.format_summary())

See ``docs/OBSERVABILITY.md`` for the full workflow.
"""

from repro.observability.context import DISABLED, TRACE_COUNTER_SERIES, Observability
from repro.observability.fabric import (
    FABRIC_COUNTERS,
    FABRIC_TIERS,
    FIFO_ANCHORS,
    FabricConsistencyError,
    FabricLedger,
    hottest_links,
    merge_fabric,
    tournament_levels,
    validate_fabric,
)
from repro.observability.metrics import (
    HEADLINE_COUNTERS,
    MetricsRecorder,
    MetricsSample,
    utilization_series,
)
from repro.observability.profiler import NULL_PROFILER, NullProfiler, Profiler
from repro.observability.provenance import config_hash, run_metadata
from repro.observability.registry import (
    RunRecord,
    RunRegistry,
    default_registry_dir,
    registry_enabled,
)
from repro.observability.stalls import (
    STALL_BUCKETS,
    StallConservationError,
    StallLedger,
    classify_bound,
    merge_ledgers,
    validate_ledger,
)
from repro.observability.telemetry import (
    HotspotReport,
    HotspotSampler,
    ProgressEmitter,
    Telemetry,
    component_scope,
    enable_telemetry,
    telemetry,
    to_prometheus,
)
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    parse_chrome_trace,
)
from repro.observability.validate import validate_chrome_trace, validate_metrics_json

__all__ = [
    "DISABLED",
    "FABRIC_COUNTERS",
    "FABRIC_TIERS",
    "FIFO_ANCHORS",
    "FabricConsistencyError",
    "FabricLedger",
    "HEADLINE_COUNTERS",
    "HotspotReport",
    "HotspotSampler",
    "MetricsRecorder",
    "MetricsSample",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "Observability",
    "Profiler",
    "ProgressEmitter",
    "RunRecord",
    "RunRegistry",
    "STALL_BUCKETS",
    "StallConservationError",
    "StallLedger",
    "TRACE_COUNTER_SERIES",
    "Telemetry",
    "TraceEvent",
    "Tracer",
    "classify_bound",
    "component_scope",
    "config_hash",
    "default_registry_dir",
    "enable_telemetry",
    "hottest_links",
    "merge_fabric",
    "merge_ledgers",
    "parse_chrome_trace",
    "registry_enabled",
    "run_metadata",
    "tournament_levels",
    "validate_fabric",
    "validate_ledger",
    "telemetry",
    "to_prometheus",
    "utilization_series",
    "validate_chrome_trace",
    "validate_metrics_json",
]
