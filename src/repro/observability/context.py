"""The per-accelerator observability context.

One :class:`Observability` object bundles the three instruments —
:class:`~repro.observability.tracer.Tracer` (simulated-cycle events),
:class:`~repro.observability.metrics.MetricsRecorder` (counter time
series) and :class:`~repro.observability.profiler.Profiler` (simulator
wall-clock) — and owns the piece of state they share: the absolute cycle
``base`` of the layer currently executing. Engine components emit with
layer-relative cycles (the only clock they know); the context translates
to the absolute timeline the exporters use.

The default-constructed context is fully disabled: the null tracer and
profiler singletons plus no metrics recorder, so instrumented code paths
cost one attribute lookup and a branch.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.noc.base import CounterSet
from repro.observability.metrics import (
    HEADLINE_COUNTERS,
    MetricsRecorder,
    MetricsSample,
)
from repro.observability.fabric import FabricLedger
from repro.observability.profiler import NULL_PROFILER, NullProfiler, Profiler
from repro.observability.stalls import StallLedger
from repro.observability.tracer import NULL_TRACER, NullTracer, Tracer

#: cumulative counter series mirrored into the Chrome trace as counter
#: tracks (kept to the headline signals so traces stay viewer-friendly)
TRACE_COUNTER_SERIES = HEADLINE_COUNTERS


class Observability:
    """Tracer + metrics + profiler wired to one accelerator instance."""

    def __init__(
        self,
        tracer: Optional[NullTracer] = None,
        metrics: Optional[MetricsRecorder] = None,
        profiler: Optional[NullProfiler] = None,
        stalls: Optional[StallLedger] = None,
        fabric: Optional[FabricLedger] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        #: stall-attribution ledger; ``None`` keeps every charging site a
        #: single attribute test (attribution is off by default)
        self.stalls = stalls
        #: spatial fabric ledger (per-level DN/MN/RN + FIFO occupancy);
        #: same off-by-default single-attribute-test discipline
        self.fabric = fabric
        #: absolute cycle at which the current layer started
        self.base = 0
        self._snapshot: Optional[Callable[[], CounterSet]] = None
        self._emitted_at_layer_start = 0

    @classmethod
    def create(cls, trace: bool = False, metrics_every: int = 0,
               profile: bool = False, stalls: bool = False,
               fabric: bool = False) -> "Observability":
        """Convenience factory from the CLI-flag view of the options."""
        return cls(
            tracer=Tracer() if trace else None,
            metrics=MetricsRecorder(every=metrics_every) if metrics_every else None,
            profiler=Profiler() if profile else None,
            stalls=StallLedger() if stalls else None,
            fabric=FabricLedger() if fabric else None,
        )

    @property
    def enabled(self) -> bool:
        return (self.tracer.enabled or self.metrics is not None
                or self.profiler.enabled or self.stalls is not None
                or self.fabric is not None)

    # ---- accelerator protocol -----------------------------------------
    def bind(self, snapshot: Callable[[], CounterSet]) -> None:
        """Install the accelerator's merged-counter snapshot provider."""
        self._snapshot = snapshot

    def start_layer(self, base_cycle: int) -> None:
        self.base = base_cycle
        if self.metrics is not None:
            self._emitted_at_layer_start = self.metrics.total_emitted
        if self.stalls is not None:
            self.stalls.reset()
        if self.fabric is not None:
            self.fabric.reset()

    def layer_samples(self) -> List[MetricsSample]:
        """Samples emitted since :meth:`start_layer` (ring-bounded)."""
        if self.metrics is None:
            return []
        emitted = self.metrics.total_emitted - self._emitted_at_layer_start
        if emitted <= 0:
            return []
        samples = self.metrics.samples
        return samples[-min(emitted, len(samples)):]

    def sample(self, rel_cycle: int) -> List[MetricsSample]:
        """Observe the counters at ``base + rel_cycle``.

        Called by the engines at phase boundaries; the metrics recorder
        interpolates the cumulative values onto its sampling grid. Newly
        emitted grid samples are mirrored into the trace as counter
        events so ``chrome://tracing`` shows the time series alongside
        the spans.
        """
        if self.metrics is None or self._snapshot is None:
            return []
        new = self.metrics.observe(self.base + rel_cycle, self._snapshot())
        if self.tracer.enabled:
            for sample in new:
                values = {
                    key: sample.values[key]
                    for key in TRACE_COUNTER_SERIES if key in sample.values
                }
                if values:
                    self.tracer.counter("activity", "metrics", sample.cycle, values)
        return new

    def end_layer(self, rel_end_cycle: int) -> None:
        """Anchor the metrics interpolation at the layer boundary."""
        self.sample(rel_end_cycle)


#: shared disabled context — the default of every ClockedComponent until
#: an Accelerator attaches its own
DISABLED = Observability()
