"""Cross-run analysis over the run registry: diff, gate, attribute, report.

Three analyses over :mod:`repro.observability.registry` records:

- **regression sentinel** — ``diff`` compares two runs and ``check``
  compares the latest registry runs against a committed baseline file,
  keyed by (workload, config hash); deltas beyond the configured
  thresholds exit non-zero, which is what lets CI gate on them;
- **bottleneck attribution** — each layer is classified as compute- /
  distribution- / reduction- / memory-bound from its activity counters
  and the hardware's port widths, with a top-N "where the cycles went"
  table;
- **HTML report** — a self-contained page (inline SVG + CSS, no
  JavaScript) with the run timeline, a per-layer utilization heatmap,
  the attribution table, and — when a baseline is given — the
  regression table.

Runnable as a module (also reachable as ``stonne insight ...``)::

    python -m repro.observability.insight list
    python -m repro.observability.insight diff <run> <run>
    python -m repro.observability.insight check --baseline baseline.json
    python -m repro.observability.insight report latest -o report.html
    python -m repro.observability.insight fabric latest

``fabric`` (and the matching report section) reads the spatially-
resolved per-level DN/MN/RN ledgers recorded with ``--fabric`` — see
:mod:`repro.observability.fabric`.
"""

from __future__ import annotations

import argparse
import html
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.observability.fabric import (
    FABRIC_TIERS,
    hottest_links,
    merge_fabric,
    validate_fabric,
)
from repro.observability.registry import RunRecord, RunRegistry
from repro.observability.stalls import (
    STALL_BUCKETS,
    classify_bound,
    merge_ledgers,
    validate_ledger,
)

#: bottleneck classes, in tie-breaking priority order
BOUND_KINDS = ("compute", "distribution", "reduction", "memory")

#: a layer whose busiest resource sits below this fraction is not
#: meaningfully bound by anything — call it underutilized instead
UNDERUTILIZED_BELOW = 0.05

#: baseline file schema version
BASELINE_SCHEMA = 1


# ----------------------------------------------------------------------
# bottleneck attribution
# ----------------------------------------------------------------------
def layer_utilization(layer: Mapping, config: Mapping) -> Dict[str, float]:
    """Per-resource busy fractions of one recorded layer.

    Mirrors :meth:`SimulationReport.component_utilization` at layer
    granularity, extended with a DRAM-pressure axis so memory-bound
    layers are attributable: each axis is activity divided by the
    resource's capacity over the layer's cycle window.
    """
    cycles = int(layer.get("cycles", 0))
    if cycles <= 0:
        return {kind: 0.0 for kind in BOUND_KINDS}
    counters = layer.get("counters", {})
    num_ms = max(1, int(config.get("num_ms", 1)))
    dn_bw = max(1, int(config.get("dn_bandwidth", 1)))
    rn_bw = max(1, int(config.get("rn_bandwidth", 1)))
    clock = float(config.get("clock_ghz", 1.0)) or 1.0
    dram_bpc = float(config.get("dram_bandwidth_gbps", 0.0)) / clock

    compute = float(layer.get("macs", 0)) / (num_ms * cycles)
    distribution = max(
        float(counters.get("dn_busy_cycles", 0.0)) / cycles,
        min(1.0, float(counters.get("gb_reads", 0.0)) / (dn_bw * cycles)),
    )
    reduction = min(1.0, float(counters.get("gb_writes", 0.0)) / (rn_bw * cycles))
    dram_bytes = (float(counters.get("dram_bytes_read", 0.0))
                  + float(counters.get("dram_bytes_written", 0.0)))
    memory = (min(1.0, dram_bytes / (dram_bpc * cycles)) if dram_bpc > 0
              else 0.0)
    return {
        "compute": round(compute, 6),
        "distribution": round(distribution, 6),
        "reduction": round(reduction, 6),
        "memory": round(memory, 6),
    }


def classify_layer(layer: Mapping, config: Mapping) -> Dict[str, object]:
    """Utilization axes plus the bound classification of one layer."""
    utilization = layer_utilization(layer, config)
    if int(layer.get("cycles", 0)) <= 0:
        bound = "idle"
    else:
        bound = max(BOUND_KINDS, key=lambda kind: utilization[kind])
        if utilization[bound] < UNDERUTILIZED_BELOW:
            bound = "underutilized"
    return {"bound": bound, **utilization}


def attribute(record: RunRecord) -> List[Dict[str, object]]:
    """Per-layer bottleneck rows for one registered run, in layer order."""
    config = record.payload.get("config", {})
    total = record.total_cycles or 0
    rows: List[Dict[str, object]] = []
    for layer in record.layers:
        row = {
            "layer": layer.get("name", "?"),
            "kind": layer.get("kind", "?"),
            "cycles": int(layer.get("cycles", 0)),
            "share": (int(layer.get("cycles", 0)) / total) if total else 0.0,
            **classify_layer(layer, config),
        }
        rows.append(row)
    return rows


def top_layers(record: RunRecord, n: int = 10) -> List[Dict[str, object]]:
    """The n most cycle-expensive layers — "where the cycles went"."""
    rows = attribute(record)
    rows.sort(key=lambda row: (-row["cycles"], row["layer"]))
    return rows[:n]


def bound_summary(record: RunRecord) -> Dict[str, float]:
    """Fraction of total cycles spent in each bottleneck class."""
    total = record.total_cycles or 0
    shares: Dict[str, float] = {}
    for row in attribute(record):
        shares[row["bound"]] = shares.get(row["bound"], 0.0) + row["cycles"]
    if total:
        shares = {k: round(v / total, 6) for k, v in shares.items()}
    return dict(sorted(shares.items(), key=lambda kv: -kv[1]))


# ----------------------------------------------------------------------
# stall-ledger explanation (cycle-exact, from extra["stalls"])
# ----------------------------------------------------------------------
def primary_stall_row(stalls: Mapping[str, Mapping[str, int]]) -> Tuple[str, Dict[str, int]]:
    """The component whose accounting is exhaustive for the layer.

    Every component row sums to the layer's cycles, so summing rows
    would double-count; the layer-level story is the row with the least
    ``idle`` filler — the component that was actually orchestrating
    (dense/sparse ``controller``, systolic ``pe_array``), whose every
    cycle is attributed to a real cause.
    """
    component = min(sorted(stalls), key=lambda c: int(stalls[c].get("idle", 0)))
    return component, {b: int(v) for b, v in stalls[component].items()}


def explain_record(record: RunRecord) -> Dict[str, object]:
    """Cycle-exact stall attribution of one registered run.

    Raises :class:`ValueError` with an actionable message when the run
    carries no ledgers (it was recorded without ``--stalls``).
    Conservation is re-validated here — a ledger that stopped summing to
    its layer's cycles is reported, never silently renormalized.
    """
    layers: List[Dict[str, object]] = []
    violations: List[str] = []
    ledgers: List[Mapping[str, Mapping[str, int]]] = []
    totals: Dict[str, int] = {bucket: 0 for bucket in STALL_BUCKETS}
    attributed = 0
    total = record.total_cycles or 0
    for index, layer in enumerate(record.layers):
        stalls = layer.get("stalls")
        if stalls is None:
            continue
        name = layer.get("name", f"layer[{index}]")
        cycles = int(layer.get("cycles", 0))
        violations += [
            f"{name}: {problem}"
            for problem in validate_ledger(stalls, cycles)
        ]
        component, buckets = primary_stall_row(stalls)
        for bucket, value in buckets.items():
            if bucket in totals:
                totals[bucket] += value
        attributed += cycles
        ledgers.append(stalls)
        layers.append({
            "layer": name,
            "kind": layer.get("kind", "?"),
            "cycles": cycles,
            "share": (cycles / total) if total else 0.0,
            "bound": classify_bound(buckets),
            "primary_component": component,
            "buckets": {b: buckets.get(b, 0) for b in STALL_BUCKETS},
            "components": stalls,
        })
    if not layers:
        raise ValueError(
            f"run {record.run_id} has no stall ledgers — re-run the "
            f"workload with --stalls (CLI) or "
            f"Observability.create(stalls=True) (API) to record "
            f"attribution"
        )
    return {
        "run_id": record.run_id,
        "workload": record.workload,
        "config_name": record.config_name,
        "config_hash": record.config_hash,
        "total_cycles": total,
        "attributed_cycles": attributed,
        "coverage": (attributed / total) if total else 1.0,
        "bound": classify_bound(totals),
        "buckets": totals,
        "components": merge_ledgers(list(ledgers)),
        "layers": layers,
        "conservation": {"ok": not violations, "violations": violations},
    }


def explain_diff(old: RunRecord, new: RunRecord) -> Dict[str, object]:
    """Attribute the cycle delta between two runs to stall buckets.

    With full attribution coverage on both sides, the per-bucket deltas
    sum exactly to the total cycle delta — the answer to "the run got
    1.2k cycles slower; *which cause* got slower?".
    """
    old_explained = explain_record(old)
    new_explained = explain_record(new)
    buckets = {
        bucket: {
            "old": old_explained["buckets"][bucket],
            "new": new_explained["buckets"][bucket],
            "delta": (new_explained["buckets"][bucket]
                      - old_explained["buckets"][bucket]),
        }
        for bucket in STALL_BUCKETS
    }
    violations = (old_explained["conservation"]["violations"]
                  + new_explained["conservation"]["violations"])
    return {
        "old_run": old.run_id,
        "new_run": new.run_id,
        "workload_match": old.workload == new.workload,
        "config_match": (bool(old.config_hash)
                         and old.config_hash == new.config_hash),
        "old_cycles": old_explained["attributed_cycles"],
        "new_cycles": new_explained["attributed_cycles"],
        "cycle_delta": (new_explained["attributed_cycles"]
                        - old_explained["attributed_cycles"]),
        "old_bound": old_explained["bound"],
        "new_bound": new_explained["bound"],
        "buckets": buckets,
        "conservation": {"ok": not violations, "violations": violations},
    }


#: short column labels for the 9-bucket text table
_BUCKET_ABBREV = {
    "compute_busy": "busy",
    "weight_fill": "wfill",
    "pipeline_drain": "drain",
    "dram_stall": "dram",
    "noc_distribution": "dn",
    "noc_reduction": "rn",
    "fifo_backpressure": "fifo",
    "edge_underutilization": "edge",
    "idle": "idle",
}


def _format_explain_text(result: Mapping, top: int) -> str:
    lines = [
        f"run {result['run_id']}  {result['workload']}  "
        f"config {result['config_hash'] or result['config_name']}",
        f"{result['total_cycles']:,} cycles over "
        f"{len(result['layers'])} attributed layer(s), "
        f"coverage {result['coverage']:.1%} — {result['bound']}",
        "",
        "where the cycles went (run level):",
    ]
    total = result["attributed_cycles"] or 1
    for bucket in STALL_BUCKETS:
        cycles = result["buckets"][bucket]
        if not cycles:
            continue
        bar = "#" * max(1, round(40 * cycles / total))
        lines.append(f"  {bucket:<22s} {cycles:>12,d} "
                     f"{cycles / total:>6.1%}  {bar}")
    lines.append("")
    ranked = sorted(result["layers"],
                    key=lambda row: (-row["cycles"], row["layer"]))[:top]
    header = (f"{'layer':<26s} {'kind':<8s} {'cycles':>10s} {'share':>6s} "
              f"{'bound':<16s}")
    header += "".join(f"{_BUCKET_ABBREV[b]:>6s}" for b in STALL_BUCKETS)
    lines.append(f"top {len(ranked)} layers by cycles:")
    lines.append(header)
    for row in ranked:
        cycles = row["cycles"] or 1
        line = (f"{row['layer'][:26]:<26s} {row['kind']:<8s} "
                f"{row['cycles']:>10,d} {row['share']:>6.1%} "
                f"{row['bound']:<16s}")
        line += "".join(
            f"{row['buckets'][b] / cycles:>6.0%}" for b in STALL_BUCKETS
        )
        lines.append(line)
    return "\n".join(lines) + "\n"


def _format_explain_diff_text(result: Mapping) -> str:
    lines = [
        f"{result['old_run']} -> {result['new_run']}: "
        f"{result['old_cycles']:,} -> {result['new_cycles']:,} cycles "
        f"({result['cycle_delta']:+,d}); "
        f"{result['old_bound']} -> {result['new_bound']}",
        "",
        f"{'bucket':<22s} {'old':>12s} {'new':>12s} {'delta':>12s}",
    ]
    for bucket in STALL_BUCKETS:
        delta = result["buckets"][bucket]
        if not (delta["old"] or delta["new"]):
            continue
        lines.append(f"{bucket:<22s} {delta['old']:>12,d} "
                     f"{delta['new']:>12,d} {delta['delta']:>+12,d}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# fabric observatory (spatially-resolved, from extra["fabric"])
# ----------------------------------------------------------------------
def fabric_record(record: RunRecord) -> Dict[str, object]:
    """Spatially-resolved fabric view of one registered run.

    Merges the per-layer fabric ledgers into a run-level payload (levels
    and link counts add, FIFO watermarks keep the max), re-validates the
    consistency invariant of every layer against its own counter delta,
    and ranks the hottest individual links. Raises :class:`ValueError`
    with an actionable message when the run carries no fabric ledgers
    (it was recorded without ``--fabric``).
    """
    ledgers: List[Mapping[str, object]] = []
    layers: List[Dict[str, object]] = []
    violations: List[str] = []
    uninstrumented: List[str] = []
    covered = 0
    total = record.total_cycles or 0
    for index, layer in enumerate(record.layers):
        fabric = layer.get("fabric")
        if fabric is None:
            continue
        name = layer.get("name", f"layer[{index}]")
        cycles = int(layer.get("cycles", 0))
        counters = layer.get("counters", {})
        violations += [
            f"{name}: {problem}"
            for problem in validate_fabric(fabric, counters, cycles)
        ]
        if fabric.get("uninstrumented"):
            uninstrumented.append(name)
        tiers = fabric.get("tiers") or {}
        if not tiers:
            # a layer that touched no instrumented fabric (e.g. maxpool)
            # contributes nothing spatial; keep it out of the merge so
            # tier geometry checks only compare fabric-active layers
            continue
        covered += cycles
        ledgers.append(fabric)
        row: Dict[str, object] = {
            "layer": name,
            "kind": layer.get("kind", "?"),
            "cycles": cycles,
            "share": (cycles / total) if total else 0.0,
        }
        for tier in FABRIC_TIERS:
            utilization = (tiers.get(tier) or {}).get("utilization") or []
            row[tier] = max(utilization) if utilization else 0.0
        row["fifo_hwm"] = {
            fifo_name: int(cell.get("high_watermark", 0))
            for fifo_name, cell in (fabric.get("fifos") or {}).items()
        }
        layers.append(row)
    if not ledgers:
        raise ValueError(
            f"run {record.run_id} has no fabric ledgers — re-run the "
            f"workload with --fabric (CLI) or "
            f"Observability.create(fabric=True) (API) to record the "
            f"fabric observatory"
        )
    merged = merge_fabric(ledgers)
    return {
        "run_id": record.run_id,
        "workload": record.workload,
        "config_name": record.config_name,
        "config_hash": record.config_hash,
        "total_cycles": total,
        "covered_cycles": covered,
        "coverage": (covered / total) if total else 1.0,
        "fabric": merged,
        "hottest_links": hottest_links(merged),
        "layers": layers,
        "uninstrumented": uninstrumented,
        "consistency": {"ok": not violations, "violations": violations},
    }


def _format_fabric_text(result: Mapping, top: int) -> str:
    lines = [
        f"run {result['run_id']}  {result['workload']}  "
        f"config {result['config_hash'] or result['config_name']}",
        f"{result['total_cycles']:,} cycles, fabric ledgers on "
        f"{len(result['layers'])} layer(s), "
        f"coverage {result['coverage']:.1%}",
    ]
    fabric = result["fabric"]
    tiers = fabric.get("tiers") or {}
    for tier in FABRIC_TIERS:
        cell = tiers.get(tier)
        if cell is None:
            continue
        lines.append("")
        lines.append(f"{tier.upper()} (anchor {cell['counter']}):")
        lines.append(f"  {'level':>5s} {'links':>6s} {'busy':>14s} "
                     f"{'util/link':>10s}")
        for index, level in enumerate(cell["levels"]):
            width = cell["links_per_level"][index]
            util = cell["utilization"][index]
            bar = "#" * max(0, min(40, round(40 * util)))
            lines.append(f"  {index:>5d} {width:>6d} {level:>14,d} "
                         f"{util:>10.2%}  {bar}")
    fifos = fabric.get("fifos") or {}
    if fifos:
        lines.append("")
        lines.append("tier-boundary FIFO occupancy:")
        lines.append(f"  {'fifo':<8s} {'cap':>4s} {'pushes':>12s} "
                     f"{'pops':>12s} {'hwm':>4s}")
        for name in sorted(fifos):
            cell = fifos[name]
            flag = ("  NEAR CAPACITY"
                    if int(cell["high_watermark"]) >= int(cell["capacity"])
                    else "")
            lines.append(f"  {name:<8s} {cell['capacity']:>4d} "
                         f"{cell['pushes']:>12,d} {cell['pops']:>12,d} "
                         f"{cell['high_watermark']:>4d}{flag}")
    links = result["hottest_links"][:max(0, int(top))]
    if links:
        lines.append("")
        lines.append(f"hottest {len(links)} link(s):")
        lines.append(f"  {'tier':<5s} {'level':>5s} {'link':>5s} "
                     f"{'traversals':>12s} {'per cycle':>10s}")
        for row in links:
            lines.append(f"  {row['tier']:<5s} {row['level']:>5d} "
                         f"{row['link']:>5d} {row['traversals']:>12,d} "
                         f"{row['per_cycle']:>10.4f}")
    ranked = sorted(result["layers"],
                    key=lambda row: (-row["cycles"], row["layer"]))[:top]
    if ranked:
        lines.append("")
        lines.append(f"top {len(ranked)} layers by cycles "
                     f"(peak level utilization):")
        lines.append(f"  {'layer':<26s} {'kind':<8s} {'cycles':>10s} "
                     f"{'share':>6s} {'dn':>7s} {'mn':>7s} {'rn':>7s}")
        for row in ranked:
            lines.append(f"  {row['layer'][:26]:<26s} {row['kind']:<8s} "
                         f"{row['cycles']:>10,d} {row['share']:>6.1%} "
                         f"{row['dn']:>7.1%} {row['mn']:>7.1%} "
                         f"{row['rn']:>7.1%}")
    if result["uninstrumented"]:
        lines.append("")
        lines.append("WARNING: NoC activity without fabric instrumentation "
                     "in: " + ", ".join(result["uninstrumented"]))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# regression sentinel
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Thresholds:
    """Relative-delta gates, in percent; ``None`` disables an axis."""

    cycles_pct: float = 0.0
    energy_pct: float = 0.5
    wall_pct: Optional[float] = None


def _pct(old: float, new: float) -> float:
    if old == 0:
        return 0.0 if new == 0 else float("inf")
    return (new - old) / old * 100.0


def diff_records(
    old: RunRecord, new: RunRecord, thresholds: Thresholds = Thresholds()
) -> Dict[str, object]:
    """Compare two registered runs; flags deltas beyond the thresholds.

    Cycles and energy are gated on absolute relative delta (a change in
    either direction means the runs no longer agree); wall-clock — when
    gated at all — only on increases, since hosts differ.
    """
    deltas = {
        "cycles": {
            "old": old.total_cycles, "new": new.total_cycles,
            "pct": _pct(old.total_cycles, new.total_cycles),
        },
        "energy_total_uj": {
            "old": old.energy_total_uj, "new": new.energy_total_uj,
            "pct": _pct(old.energy_total_uj, new.energy_total_uj),
        },
    }
    if old.wall_clock_s is not None and new.wall_clock_s is not None:
        deltas["wall_clock_s"] = {
            "old": old.wall_clock_s, "new": new.wall_clock_s,
            "pct": _pct(old.wall_clock_s, new.wall_clock_s),
        }

    violations: List[str] = []
    if (thresholds.cycles_pct is not None
            and abs(deltas["cycles"]["pct"]) > thresholds.cycles_pct):
        violations.append(
            f"cycles {old.total_cycles} -> {new.total_cycles} "
            f"({deltas['cycles']['pct']:+.3f}% > ±{thresholds.cycles_pct}%)"
        )
    if (thresholds.energy_pct is not None
            and abs(deltas["energy_total_uj"]["pct"]) > thresholds.energy_pct):
        violations.append(
            f"energy {old.energy_total_uj:.4f} -> {new.energy_total_uj:.4f} uJ "
            f"({deltas['energy_total_uj']['pct']:+.3f}% "
            f"> ±{thresholds.energy_pct}%)"
        )
    if (thresholds.wall_pct is not None and "wall_clock_s" in deltas
            and deltas["wall_clock_s"]["pct"] > thresholds.wall_pct):
        violations.append(
            f"wall-clock {old.wall_clock_s:.3f}s -> {new.wall_clock_s:.3f}s "
            f"({deltas['wall_clock_s']['pct']:+.1f}% > +{thresholds.wall_pct}%)"
        )

    old_layers = {(i, l.get("name")): l for i, l in enumerate(old.layers)}
    layer_deltas: List[Dict[str, object]] = []
    for i, layer in enumerate(new.layers):
        key = (i, layer.get("name"))
        base = old_layers.get(key)
        if base is None:
            layer_deltas.append({"layer": layer.get("name"), "status": "added"})
            continue
        if int(base.get("cycles", 0)) != int(layer.get("cycles", 0)):
            layer_deltas.append({
                "layer": layer.get("name"),
                "status": "changed",
                "old_cycles": int(base.get("cycles", 0)),
                "new_cycles": int(layer.get("cycles", 0)),
                "pct": _pct(base.get("cycles", 0), layer.get("cycles", 0)),
            })
    if len(old.layers) != len(new.layers):
        violations.append(
            f"layer count {len(old.layers)} -> {len(new.layers)}"
        )

    return {
        "old_run": old.run_id,
        "new_run": new.run_id,
        "workload_match": old.workload == new.workload,
        "config_match": (bool(old.config_hash)
                         and old.config_hash == new.config_hash),
        "deltas": deltas,
        "layer_deltas": layer_deltas,
        "violations": violations,
        "ok": not violations,
    }


def load_baseline(path: Path) -> Dict:
    """Read and structurally validate a committed baseline file."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "baselines" not in payload:
        raise ValueError(f"{path}: baseline file needs a 'baselines' list")
    if int(payload.get("schema", 0)) != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: baseline schema {payload.get('schema')!r} != "
            f"{BASELINE_SCHEMA}"
        )
    for index, entry in enumerate(payload["baselines"]):
        for key in ("workload", "config_hash", "total_cycles"):
            if key not in entry:
                raise ValueError(
                    f"{path}: baselines[{index}] missing {key!r}"
                )
    return payload


def baseline_thresholds(payload: Mapping,
                        override: Optional[Thresholds] = None) -> Thresholds:
    if override is not None:
        return override
    raw = payload.get("thresholds", {})
    return Thresholds(
        cycles_pct=float(raw.get("cycles_pct", 0.0)),
        energy_pct=float(raw.get("energy_pct", 0.5)),
        wall_pct=raw.get("wall_pct"),
    )


def check_baseline(
    registry: RunRegistry,
    baseline: Mapping,
    thresholds: Optional[Thresholds] = None,
) -> Tuple[List[Dict[str, object]], bool]:
    """Gate the latest registry runs against every baseline entry.

    For each (workload, config hash) entry the newest matching run is
    compared; a missing run fails the check — a sentinel that silently
    skips workloads is not a sentinel.
    """
    gates = baseline_thresholds(baseline, thresholds)
    results: List[Dict[str, object]] = []
    ok = True
    for entry in baseline["baselines"]:
        record = registry.latest(
            workload=entry["workload"], config_hash=entry["config_hash"]
        )
        if record is None:
            results.append({
                "workload": entry["workload"],
                "config_hash": entry["config_hash"],
                "status": "missing",
                "detail": "no registered run for this (workload, config)",
            })
            ok = False
            continue
        violations: List[str] = []
        cycles_pct = _pct(entry["total_cycles"], record.total_cycles)
        if abs(cycles_pct) > gates.cycles_pct:
            violations.append(
                f"cycles {entry['total_cycles']} -> {record.total_cycles} "
                f"({cycles_pct:+.3f}%)"
            )
        if "energy_total_uj" in entry and gates.energy_pct is not None:
            energy_pct = _pct(entry["energy_total_uj"], record.energy_total_uj)
            if abs(energy_pct) > gates.energy_pct:
                violations.append(
                    f"energy {entry['energy_total_uj']:.4f} -> "
                    f"{record.energy_total_uj:.4f} uJ ({energy_pct:+.3f}%)"
                )
        results.append({
            "workload": entry["workload"],
            "config_hash": entry["config_hash"],
            "run_id": record.run_id,
            "status": "ok" if not violations else "regressed",
            "baseline_cycles": entry["total_cycles"],
            "run_cycles": record.total_cycles,
            "cycles_pct": cycles_pct,
            "detail": "; ".join(violations),
        })
        ok = ok and not violations
    return results, ok


def export_baseline(records: Sequence[RunRecord],
                    thresholds: Thresholds = Thresholds()) -> Dict:
    """Baseline payload pinning the given runs (one entry per record)."""
    return {
        "schema": BASELINE_SCHEMA,
        "thresholds": {
            "cycles_pct": thresholds.cycles_pct,
            "energy_pct": thresholds.energy_pct,
        },
        "baselines": [
            {
                "workload": record.workload,
                "config_name": record.config_name,
                "config_hash": record.config_hash,
                "total_cycles": record.total_cycles,
                "total_macs": record.total_macs,
                "energy_total_uj": record.energy_total_uj,
                "run_id": record.run_id,
                "created_utc": record.created_utc,
            }
            for record in records
        ],
    }


# ----------------------------------------------------------------------
# HTML report (inline SVG, no JavaScript)
# ----------------------------------------------------------------------
_BOUND_COLORS = {
    "compute": "#4c78a8",
    "distribution": "#f58518",
    "reduction": "#54a24b",
    "memory": "#e45756",
    "underutilized": "#b5b5b5",
    "idle": "#dddddd",
}

#: the heatmap draws at most this many layers (largest first); the
#: report states the truncation explicitly rather than hiding it
HEATMAP_MAX_LAYERS = 48

#: stall-bucket colors for the stacked breakdown (compute-side blues and
#: greens, data-movement-side warm tones, idle grey)
_STALL_COLORS = {
    "compute_busy": "#4c78a8",
    "edge_underutilization": "#9ecae9",
    "pipeline_drain": "#54a24b",
    "weight_fill": "#eeca3b",
    "dram_stall": "#e45756",
    "noc_distribution": "#f58518",
    "noc_reduction": "#b279a2",
    "fifo_backpressure": "#ff9da6",
    "idle": "#dddddd",
}


def _esc(value: object) -> str:
    return html.escape(str(value))


def _timeline_svg(record: RunRecord, rows: List[Dict], width: int = 940,
                  height: int = 56) -> str:
    """One horizontal bar: layer windows colored by bottleneck class."""
    total = record.total_cycles
    if not total or not rows:
        return "<p>(no cycles recorded)</p>"
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="run timeline">'
    ]
    x = 0.0
    for row in rows:
        w = width * row["cycles"] / total
        color = _BOUND_COLORS.get(row["bound"], "#888888")
        title = (f"{row['layer']} ({row['kind']}): {row['cycles']} cycles, "
                 f"{row['share']:.1%}, {row['bound']}-bound")
        parts.append(
            f'<rect x="{x:.2f}" y="8" width="{max(w, 0.5):.2f}" height="32" '
            f'fill="{color}" stroke="#ffffff" stroke-width="0.5">'
            f"<title>{_esc(title)}</title></rect>"
        )
        x += w
    parts.append(
        f'<text x="0" y="{height - 4}" font-size="11" fill="#555">0</text>'
        f'<text x="{width}" y="{height - 4}" font-size="11" fill="#555" '
        f'text-anchor="end">{total} cycles</text></svg>'
    )
    return "".join(parts)


def _heatmap_svg(rows: List[Dict], cell: int = 26, label_w: int = 220) -> str:
    """Layers × bottleneck-axes utilization heatmap."""
    if not rows:
        return "<p>(no layers)</p>"
    shown = sorted(rows, key=lambda r: -r["cycles"])[:HEATMAP_MAX_LAYERS]
    shown.sort(key=lambda r: rows.index(r))  # back to execution order
    width = label_w + cell * len(BOUND_KINDS) + 8
    height = 22 + cell * len(shown)
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="utilization heatmap">'
    ]
    for i, kind in enumerate(BOUND_KINDS):
        parts.append(
            f'<text x="{label_w + i * cell + cell / 2}" y="14" '
            f'font-size="10" text-anchor="middle" fill="#333">'
            f"{kind[:4]}</text>"
        )
    for j, row in enumerate(shown):
        y = 22 + j * cell
        parts.append(
            f'<text x="{label_w - 6}" y="{y + cell / 2 + 4}" font-size="10" '
            f'text-anchor="end" fill="#333">{_esc(row["layer"][:34])}</text>'
        )
        for i, kind in enumerate(BOUND_KINDS):
            value = float(row[kind])
            parts.append(
                f'<rect x="{label_w + i * cell}" y="{y}" width="{cell - 2}" '
                f'height="{cell - 2}" fill="{_BOUND_COLORS[kind]}" '
                f'fill-opacity="{max(0.06, value):.3f}" stroke="#eee">'
                f"<title>{_esc(row['layer'])} {kind}: {value:.1%}</title>"
                f"</rect>"
            )
    parts.append("</svg>")
    note = ""
    if len(rows) > len(shown):
        note = (f"<p class='note'>showing the {len(shown)} most "
                f"cycle-expensive of {len(rows)} layers</p>")
    return "".join(parts) + note


def _attribution_table(rows: List[Dict], n: int) -> str:
    ranked = sorted(rows, key=lambda r: (-r["cycles"], r["layer"]))[:n]
    body = "".join(
        "<tr>"
        f"<td>{_esc(row['layer'])}</td><td>{_esc(row['kind'])}</td>"
        f"<td class='num'>{row['cycles']}</td>"
        f"<td class='num'>{row['share']:.1%}</td>"
        f"<td><span class='dot' style='background:"
        f"{_BOUND_COLORS.get(row['bound'], '#888')}'></span>"
        f"{_esc(row['bound'])}</td>"
        f"<td class='num'>{row['compute']:.1%}</td>"
        f"<td class='num'>{row['distribution']:.1%}</td>"
        f"<td class='num'>{row['reduction']:.1%}</td>"
        f"<td class='num'>{row['memory']:.1%}</td>"
        "</tr>"
        for row in ranked
    )
    return (
        "<table><thead><tr><th>layer</th><th>kind</th><th>cycles</th>"
        "<th>share</th><th>bound</th><th>MN</th><th>DN</th><th>RN</th>"
        "<th>DRAM</th></tr></thead><tbody>" + body + "</tbody></table>"
    )


def _stall_breakdown_svg(layers: List[Dict], cell: int = 22,
                         label_w: int = 220, bar_w: int = 640) -> str:
    """Per-layer stacked bars: each layer's cycles split by stall bucket."""
    shown = sorted(layers, key=lambda r: -r["cycles"])[:HEATMAP_MAX_LAYERS]
    shown.sort(key=lambda r: layers.index(r))  # back to execution order
    width = label_w + bar_w + 8
    height = 6 + cell * len(shown)
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="stall breakdown">'
    ]
    for j, row in enumerate(shown):
        y = 4 + j * cell
        parts.append(
            f'<text x="{label_w - 6}" y="{y + cell / 2 + 3}" font-size="10" '
            f'text-anchor="end" fill="#333">{_esc(row["layer"][:34])}</text>'
        )
        cycles = row["cycles"] or 1
        x = float(label_w)
        for bucket in STALL_BUCKETS:
            value = row["buckets"].get(bucket, 0)
            if not value:
                continue
            w = bar_w * value / cycles
            title = (f"{row['layer']} {bucket}: {value} cycles "
                     f"({value / cycles:.1%})")
            parts.append(
                f'<rect x="{x:.2f}" y="{y}" width="{max(w, 0.5):.2f}" '
                f'height="{cell - 4}" fill="{_STALL_COLORS[bucket]}" '
                f'stroke="#fff" stroke-width="0.5">'
                f"<title>{_esc(title)}</title></rect>"
            )
            x += w
    parts.append("</svg>")
    note = ""
    if len(layers) > len(shown):
        note = (f"<p class='note'>showing the {len(shown)} most "
                f"cycle-expensive of {len(layers)} layers</p>")
    return "".join(parts) + note


def _stall_sections(record: RunRecord) -> List[str]:
    """The 'Stall attribution' report block (empty without ledgers)."""
    try:
        explained = explain_record(record)
    except ValueError:
        return []
    total = explained["attributed_cycles"] or 1
    legend = "".join(
        f"<span><span class='dot' style='background:{color}'></span>"
        f"{bucket}</span>"
        for bucket, color in _STALL_COLORS.items()
        if explained["buckets"].get(bucket)
    )
    bucket_rows = "".join(
        f"<tr><th>{_esc(bucket)}</th>"
        f"<td class='num'>{explained['buckets'][bucket]:,}</td>"
        f"<td class='num'>{explained['buckets'][bucket] / total:.1%}</td></tr>"
        for bucket in STALL_BUCKETS if explained["buckets"][bucket]
    )
    conservation = (
        "<p class='note'>conservation: every component's buckets sum to "
        "its layer's cycles exactly</p>"
        if explained["conservation"]["ok"] else
        "<p class='note' style='color:#c00'>conservation VIOLATED: "
        + _esc("; ".join(explained["conservation"]["violations"][:5]))
        + "</p>"
    )
    return [
        f"<h2>Stall attribution — {_esc(explained['bound'])}</h2>",
        f"<div class='legend'>{legend}</div>",
        _stall_breakdown_svg(explained["layers"]),
        f"<table>{bucket_rows}</table>",
        conservation,
    ]


#: tier accent colors for the fabric tree heatmap — matched to the
#: bottleneck palette (DN = distribution, MN = compute, RN = reduction)
_FABRIC_TIER_COLORS = {
    "dn": "#f58518",
    "mn": "#4c78a8",
    "rn": "#54a24b",
}


def _fabric_tree_svg(fabric: Mapping, label_w: int = 90,
                     max_w: int = 840) -> str:
    """Per-tier tree heatmap: one row per level, one cell per link.

    Cell opacity scales with the link's traversal count relative to the
    tier's busiest link; tiers without per-link detail (widest level
    beyond the link-detail limit) fall back to one cell per level shaded
    by that level's utilization.
    """
    tiers = fabric.get("tiers") or {}
    parts: List[str] = []
    y = 0
    rows: List[str] = []
    for tier in FABRIC_TIERS:
        cell = tiers.get(tier)
        if cell is None:
            continue
        color = _FABRIC_TIER_COLORS[tier]
        levels: List[int] = [int(v) for v in cell["levels"]]
        widths: List[int] = [int(v) for v in cell["links_per_level"]]
        links = cell.get("links")
        peak = max(
            (max(row) for row in links if row), default=0
        ) if links else 0
        row_h = 16
        for index, level_total in enumerate(levels):
            rows.append(
                f'<text x="{label_w - 6}" y="{y + row_h - 4}" '
                f'font-size="10" text-anchor="end" fill="#333">'
                f"{tier} L{index}</text>"
            )
            if links is not None and peak:
                row = links[index]
                cell_w = max(2.0, min(22.0, max_w / max(1, len(row))))
                for link, count in enumerate(row):
                    opacity = max(0.05, count / peak) if count else 0.04
                    title = (f"{tier} level {index} link {link}: "
                             f"{count} traversals")
                    rows.append(
                        f'<rect x="{label_w + link * cell_w:.1f}" y="{y}" '
                        f'width="{max(cell_w - 1, 1):.1f}" '
                        f'height="{row_h - 2}" fill="{color}" '
                        f'fill-opacity="{opacity:.3f}" stroke="#eee" '
                        f'stroke-width="0.5">'
                        f"<title>{_esc(title)}</title></rect>"
                    )
            else:
                utilization = float(cell["utilization"][index])
                title = (f"{tier} level {index}: {level_total} traversals "
                         f"over {widths[index]} links "
                         f"({utilization:.1%} busy)")
                rows.append(
                    f'<rect x="{label_w}" y="{y}" width="{max_w}" '
                    f'height="{row_h - 2}" fill="{color}" '
                    f'fill-opacity="{max(0.05, utilization):.3f}" '
                    f'stroke="#eee" stroke-width="0.5">'
                    f"<title>{_esc(title)}</title></rect>"
                )
            y += row_h
        y += 6
    if not rows:
        return "<p>(no fabric tiers charged)</p>"
    width = label_w + max_w + 8
    parts.append(
        f'<svg viewBox="0 0 {width} {y}" width="{width}" height="{y}" '
        f'role="img" aria-label="fabric tree heatmap">'
    )
    parts += rows
    parts.append("</svg>")
    return "".join(parts)


def _fabric_fifo_table(fifos: Mapping) -> str:
    body = "".join(
        "<tr class='{cls}'>"
        "<td><code>{name}</code></td><td class='num'>{cap}</td>"
        "<td class='num'>{pushes:,}</td><td class='num'>{pops:,}</td>"
        "<td class='num'>{hwm}</td><td>{note}</td></tr>".format(
            cls="bad" if cell["high_watermark"] >= cell["capacity"] else "",
            name=_esc(name),
            cap=cell["capacity"],
            pushes=cell["pushes"],
            pops=cell["pops"],
            hwm=cell["high_watermark"],
            note=("hit capacity — backpressure risk"
                  if cell["high_watermark"] >= cell["capacity"] else ""),
        )
        for name, cell in sorted(fifos.items())
    )
    return (
        "<table><thead><tr><th>fifo</th><th>capacity</th><th>pushes</th>"
        "<th>pops</th><th>high watermark</th><th></th></tr></thead>"
        "<tbody>" + body + "</tbody></table>"
    )


def _fabric_sections(record: RunRecord) -> List[str]:
    """The 'Fabric observatory' report block (empty without ledgers)."""
    try:
        result = fabric_record(record)
    except ValueError:
        return []
    fabric = result["fabric"]
    sections = [
        "<h2>Fabric observatory — per-level utilization</h2>",
        _fabric_tree_svg(fabric),
    ]
    links = result["hottest_links"][:5]
    if links:
        hottest = "".join(
            f"<tr><td>{_esc(row['tier'])}</td>"
            f"<td class='num'>{row['level']}</td>"
            f"<td class='num'>{row['link']}</td>"
            f"<td class='num'>{row['traversals']:,}</td>"
            f"<td class='num'>{row['per_cycle']:.4f}</td></tr>"
            for row in links
        )
        sections.append(
            "<h3>Hottest links</h3>"
            "<table><thead><tr><th>tier</th><th>level</th><th>link</th>"
            "<th>traversals</th><th>per cycle</th></tr></thead><tbody>"
            + hottest + "</tbody></table>"
        )
    fifos = fabric.get("fifos") or {}
    if fifos:
        sections.append("<h3>Tier-boundary FIFO occupancy</h3>")
        sections.append(_fabric_fifo_table(fifos))
    sections.append(
        "<p class='note'>consistency: every tier's per-level busy sums "
        "equal the layer's aggregate NoC counters exactly</p>"
        if result["consistency"]["ok"] else
        "<p class='note' style='color:#c00'>consistency VIOLATED: "
        + _esc("; ".join(result["consistency"]["violations"][:5]))
        + "</p>"
    )
    return sections


def _regression_table(results: List[Dict]) -> str:
    body = "".join(
        "<tr class='{cls}'>"
        "<td>{workload}</td><td><code>{chash}</code></td><td>{status}</td>"
        "<td class='num'>{base}</td><td class='num'>{run}</td>"
        "<td class='num'>{pct}</td><td>{detail}</td></tr>".format(
            cls="bad" if result["status"] != "ok" else "good",
            workload=_esc(result["workload"]),
            chash=_esc(result["config_hash"][:8]),
            status=_esc(result["status"]),
            base=_esc(result.get("baseline_cycles", "-")),
            run=_esc(result.get("run_cycles", "-")),
            pct=(f"{result['cycles_pct']:+.3f}%"
                 if "cycles_pct" in result else "-"),
            detail=_esc(result.get("detail", "")),
        )
        for result in results
    )
    return (
        "<table><thead><tr><th>workload</th><th>config</th><th>status</th>"
        "<th>baseline cycles</th><th>run cycles</th><th>Δ</th>"
        "<th>detail</th></tr></thead><tbody>" + body + "</tbody></table>"
    )


_CSS = """
body { font: 14px/1.45 -apple-system, 'Segoe UI', Roboto, sans-serif;
       color: #222; margin: 2rem auto; max-width: 980px; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: left; padding: 4px 8px; border-bottom: 1px solid #eee; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tr.bad td { background: #fdecea; } tr.good td { background: #f2f9f2; }
.dot { display: inline-block; width: 10px; height: 10px;
       border-radius: 2px; margin-right: 5px; }
.meta { color: #555; font-size: 12px; }
.legend span { margin-right: 14px; font-size: 12px; }
.note { color: #777; font-size: 12px; }
code { background: #f5f5f5; padding: 1px 4px; border-radius: 3px; }
"""


def render_html(
    record: RunRecord,
    check_results: Optional[List[Dict]] = None,
    top: int = 15,
) -> str:
    """Self-contained HTML report for one registered run."""
    rows = attribute(record)
    totals = record.payload.get("totals", {})
    metadata = record.payload.get("metadata", {})
    utilization = record.payload.get("utilization", {})
    shares = bound_summary(record)
    legend = "".join(
        f"<span><span class='dot' style='background:{color}'></span>"
        f"{kind}</span>"
        for kind, color in _BOUND_COLORS.items()
    )
    meta_rows = "".join(
        f"<tr><th>{_esc(key)}</th><td>{_esc(value)}</td></tr>"
        for key, value in (
            ("run id", record.run_id),
            ("workload", record.workload),
            ("recorded", record.created_utc),
            ("source", record.source),
            ("config", f"{record.config_name} "
                       f"(hash {record.config_hash or '-'})"),
            ("total cycles", f"{record.total_cycles:,}"),
            ("total MACs", f"{record.total_macs:,}"),
            ("energy", f"{record.energy_total_uj:.4f} uJ"),
            ("runtime", f"{totals.get('runtime_us', 0):.3f} us"),
            ("wall-clock", (f"{record.wall_clock_s:.3f} s"
                            if record.wall_clock_s is not None else "-")),
            ("cached", str(record.cached).lower()),
            ("tool", f"{metadata.get('tool', '?')} "
                     f"{metadata.get('version', '')}"),
        )
    )
    util_rows = "".join(
        f"<tr><th>{_esc(key)}</th><td class='num'>{value:.2%}</td></tr>"
        for key, value in utilization.items()
    )
    share_line = ", ".join(f"{kind}: {value:.1%}"
                           for kind, value in shares.items())
    sections = [
        f"<h1>STONNE run report — {_esc(record.workload)}</h1>",
        f"<table class='meta'>{meta_rows}</table>",
        "<h2>Timeline</h2>",
        f"<div class='legend'>{legend}</div>",
        _timeline_svg(record, rows),
        f"<p class='meta'>cycle share by bottleneck class: "
        f"{_esc(share_line) or '-'}</p>",
        f"<h2>Where the cycles went (top {top})</h2>",
        _attribution_table(rows, top),
        "<h2>Utilization heatmap</h2>",
        _heatmap_svg(rows),
        "<h2>Run-level utilization</h2>",
        f"<table>{util_rows or '<tr><td>(none)</td></tr>'}</table>",
    ]
    sections += _stall_sections(record)
    sections += _fabric_sections(record)
    if check_results is not None:
        sections += ["<h2>Regression check</h2>",
                     _regression_table(check_results)]
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>STONNE run {_esc(record.run_id)}</title>"
        f"<style>{_CSS}</style></head><body>"
        + "".join(sections) + "</body></html>"
    )


# ----------------------------------------------------------------------
# command line
# ----------------------------------------------------------------------
def _open_registry(args: argparse.Namespace) -> RunRegistry:
    return RunRegistry(args.registry_dir)


def _threshold_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cycles-pct", type=float, default=None,
                        help="max |cycle delta| in percent (default 0)")
    parser.add_argument("--energy-pct", type=float, default=None,
                        help="max |energy delta| in percent (default 0.5)")
    parser.add_argument("--wall-pct", type=float, default=None,
                        help="max wall-clock increase in percent "
                             "(default: not gated)")


def _thresholds_from(args: argparse.Namespace,
                     base: Thresholds = Thresholds()) -> Thresholds:
    return Thresholds(
        cycles_pct=(args.cycles_pct if args.cycles_pct is not None
                    else base.cycles_pct),
        energy_pct=(args.energy_pct if args.energy_pct is not None
                    else base.energy_pct),
        wall_pct=args.wall_pct if args.wall_pct is not None else base.wall_pct,
    )


def _cmd_list(args: argparse.Namespace) -> int:
    with _open_registry(args) as registry:
        records = registry.list_runs(workload=args.workload, limit=args.limit)
    if args.json:
        rows = [
            {
                "run_id": record.run_id,
                "created_utc": record.created_utc,
                "workload": record.workload,
                "source": record.source,
                "config_name": record.config_name,
                "config_hash": record.config_hash,
                "total_cycles": record.total_cycles,
                "total_macs": record.total_macs,
                "energy_total_uj": record.energy_total_uj,
                "wall_clock_s": record.wall_clock_s,
                "cached": record.cached,
            }
            for record in records
        ]
        print(json.dumps(rows, indent=2))
        return 0
    if not records:
        print("(registry is empty)")
        return 0
    print(f"{'run id':<13s} {'recorded (UTC)':<20s} {'workload':<28s} "
          f"{'config':<10s} {'cycles':>12s} {'energy uJ':>12s} "
          f"{'wall s':>8s} {'cached':>6s}")
    for record in records:
        wall = (f"{record.wall_clock_s:.2f}"
                if record.wall_clock_s is not None else "-")
        print(f"{record.run_id:<13s} {record.created_utc[:19]:<20s} "
              f"{record.workload[:28]:<28s} "
              f"{(record.config_hash or record.config_name)[:8]:<10s} "
              f"{record.total_cycles:>12,d} {record.energy_total_uj:>12.4f} "
              f"{wall:>8s} {str(record.cached).lower():>6s}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    with _open_registry(args) as registry:
        record = registry.resolve(args.run)
    print(json.dumps(record.as_dict(), indent=2))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    with _open_registry(args) as registry:
        old = registry.resolve(args.old)
        new = registry.resolve(args.new)
    result = diff_records(old, new, _thresholds_from(args))
    if not result["workload_match"]:
        print(f"note: comparing different workloads "
              f"({old.workload!r} vs {new.workload!r})", file=sys.stderr)
    if not result["config_match"]:
        print(f"note: comparing different configurations "
              f"({old.config_hash or '-'} vs {new.config_hash or '-'})",
              file=sys.stderr)
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        for axis, delta in result["deltas"].items():
            print(f"{axis:16s} {delta['old']} -> {delta['new']} "
                  f"({delta['pct']:+.3f}%)")
        for layer in result["layer_deltas"][:20]:
            if layer.get("status") == "changed":
                print(f"  layer {layer['layer']}: {layer['old_cycles']} -> "
                      f"{layer['new_cycles']} cycles ({layer['pct']:+.3f}%)")
            else:
                print(f"  layer {layer['layer']}: {layer['status']}")
        if len(result["layer_deltas"]) > 20:
            print(f"  ... {len(result['layer_deltas']) - 20} more "
                  f"layer deltas (use --json for all)")
    if result["violations"]:
        for violation in result["violations"]:
            print(f"REGRESSION: {violation}", file=sys.stderr)
        return 1
    print("ok: runs agree within thresholds")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    baseline = load_baseline(Path(args.baseline))
    override = None
    if (args.cycles_pct is not None or args.energy_pct is not None
            or args.wall_pct is not None):
        override = _thresholds_from(args, baseline_thresholds(baseline))
    with _open_registry(args) as registry:
        results, ok = check_baseline(registry, baseline, override)
    for result in results:
        status = result["status"]
        line = f"[{status:>9s}] {result['workload']} ({result['config_hash'][:8]})"
        if "run_cycles" in result:
            line += (f": {result['baseline_cycles']} -> "
                     f"{result['run_cycles']} cycles "
                     f"({result['cycles_pct']:+.3f}%)")
        if result.get("detail"):
            line += f" — {result['detail']}"
        print(line)
    if not ok:
        print("regression sentinel: FAIL", file=sys.stderr)
        return 1
    print(f"regression sentinel: {len(results)} workload(s) ok")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    with _open_registry(args) as registry:
        record = registry.resolve(args.run)
        check_results = None
        if args.baseline:
            baseline = load_baseline(Path(args.baseline))
            check_results, _ = check_baseline(registry, baseline)
    text = render_html(record, check_results, top=args.top)
    Path(args.out).write_text(text, encoding="utf-8")
    print(f"report written to {args.out}")
    return 0


def _cmd_attribute(args: argparse.Namespace) -> int:
    with _open_registry(args) as registry:
        record = registry.resolve(args.run)
    rows = top_layers(record, n=args.top)
    if args.json:
        print(json.dumps({
            "run_id": record.run_id,
            "workload": record.workload,
            "layers": rows,
            "bound_shares": bound_summary(record),
        }, indent=2))
        return 0
    print(f"{'layer':<30s} {'kind':<8s} {'cycles':>10s} {'share':>7s} "
          f"{'bound':<14s} {'MN':>6s} {'DN':>6s} {'RN':>6s} {'DRAM':>6s}")
    for row in rows:
        print(f"{row['layer'][:30]:<30s} {row['kind']:<8s} "
              f"{row['cycles']:>10d} {row['share']:>6.1%} "
              f"{row['bound']:<14s} {row['compute']:>6.1%} "
              f"{row['distribution']:>6.1%} {row['reduction']:>6.1%} "
              f"{row['memory']:>6.1%}")
    shares = bound_summary(record)
    print("cycle share by class: "
          + (", ".join(f"{k}: {v:.1%}" for k, v in shares.items()) or "-"))
    return 0


def _cmd_prune(args: argparse.Namespace) -> int:
    with _open_registry(args) as registry:
        if args.dry_run:
            doomed = registry.prune_candidates(
                keep=args.keep, workload=args.workload
            )
            total = registry.count()
            for run_id in doomed:
                print(f"would prune {run_id}")
            print(f"dry run: would prune {len(doomed)} run(s); "
                  f"{total - len(doomed)} would remain")
            return 0
        deleted = registry.prune(keep=args.keep, workload=args.workload)
        remaining = registry.count()
    print(f"pruned {deleted} run(s); {remaining} remain")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    with _open_registry(args) as registry:
        if args.diff:
            result = explain_diff(registry.resolve(args.diff[0]),
                                  registry.resolve(args.diff[1]))
            text = (json.dumps(result, indent=2) + "\n"
                    if args.format == "json"
                    else _format_explain_diff_text(result))
        else:
            result = explain_record(registry.resolve(args.run))
            text = (json.dumps(result, indent=2) + "\n"
                    if args.format == "json"
                    else _format_explain_text(result, top=args.top))
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"explanation written to {args.out}")
    else:
        print(text, end="")
    if not result["conservation"]["ok"]:
        for violation in result["conservation"]["violations"]:
            print(f"CONSERVATION VIOLATED: {violation}", file=sys.stderr)
        return 2
    return 0


def _cmd_fabric(args: argparse.Namespace) -> int:
    with _open_registry(args) as registry:
        result = fabric_record(registry.resolve(args.run))
    text = (json.dumps(result, indent=2) + "\n"
            if args.format == "json"
            else _format_fabric_text(result, top=args.top))
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"fabric view written to {args.out}")
    else:
        print(text, end="")
    if not result["consistency"]["ok"]:
        for violation in result["consistency"]["violations"]:
            print(f"CONSISTENCY VIOLATED: {violation}", file=sys.stderr)
        return 2
    return 0


def _cmd_export_baseline(args: argparse.Namespace) -> int:
    with _open_registry(args) as registry:
        records = [registry.resolve(ref) for ref in args.runs]
    payload = export_baseline(records, _thresholds_from(args))
    text = json.dumps(payload, indent=2) + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"baseline with {len(records)} entr(ies) written to {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_hotspots(args: argparse.Namespace) -> int:
    """Profile a short in-process model run; report host-time hotspots.

    This is the data source for ROADMAP item 1 (vectorizing the
    cycle-level hot paths): it answers "which simulator component costs
    the most *host seconds*", the wall-clock dual of ``attribute``.
    """
    from repro.engine.accelerator import Accelerator
    from repro.frontend.models import build_model, model_input
    from repro.frontend.simulated import detach_context, simulate
    from repro.observability.telemetry import profile_call

    from repro.config import maeri_like, sigma_like, tpu_like

    if args.arch == "tpu":
        config = tpu_like(num_pes=args.num_ms)
    elif args.arch == "sigma":
        config = sigma_like(num_ms=args.num_ms,
                            bandwidth=max(1, args.num_ms // 2))
    else:
        config = maeri_like(num_ms=args.num_ms,
                            bandwidth=max(1, args.num_ms // 2))

    model = build_model(args.model, seed=0)
    x = model_input(args.model, batch=1, seed=1)

    def _run() -> None:
        for _ in range(max(1, args.repeat)):
            acc = Accelerator(config)
            simulate(model, acc)
            model(x)
            detach_context(model)

    _, report = profile_call(_run, interval_s=args.interval_ms / 1000.0)

    if args.format == "json":
        text = json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
    elif args.format == "html":
        text = report.to_html()
    else:
        text = report.to_text() + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"hotspot report written to {args.out}")
    else:
        print(text, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.insight",
        description="cross-run analysis over the STONNE run registry",
    )
    parser.add_argument("--registry-dir", metavar="DIR", default=None,
                        help="registry location (default ~/.stonne_runs, "
                             "or $STONNE_RUNS_DIR)")
    sub = parser.add_subparsers(dest="command", required=True)

    cmd = sub.add_parser("list", help="list registered runs, newest first")
    cmd.add_argument("--workload", help="filter by workload name")
    cmd.add_argument("--limit", type=int, default=30)
    cmd.add_argument("--json", action="store_true",
                     help="machine-readable headline rows")
    cmd.set_defaults(func=_cmd_list)

    cmd = sub.add_parser("show", help="print one run's full record as JSON")
    cmd.add_argument("run", help="run id, unique prefix, or 'latest'")
    cmd.set_defaults(func=_cmd_show)

    cmd = sub.add_parser(
        "diff", help="compare two runs; exit 1 beyond thresholds"
    )
    cmd.add_argument("old")
    cmd.add_argument("new")
    cmd.add_argument("--json", action="store_true")
    _threshold_args(cmd)
    cmd.set_defaults(func=_cmd_diff)

    cmd = sub.add_parser(
        "check",
        help="gate latest runs against a committed baseline; exit 1 on "
             "regression (CI)",
    )
    cmd.add_argument("--baseline", required=True,
                     help="baseline JSON (see 'export-baseline')")
    _threshold_args(cmd)
    cmd.set_defaults(func=_cmd_check)

    cmd = sub.add_parser(
        "report", help="write a self-contained HTML report for one run"
    )
    cmd.add_argument("run", help="run id, unique prefix, or 'latest'")
    cmd.add_argument("-o", "--out", default="stonne-report.html")
    cmd.add_argument("--baseline",
                     help="include a regression table against this baseline")
    cmd.add_argument("--top", type=int, default=15)
    cmd.set_defaults(func=_cmd_report)

    cmd = sub.add_parser(
        "attribute", help="per-layer bottleneck attribution table"
    )
    cmd.add_argument("run", help="run id, unique prefix, or 'latest'")
    cmd.add_argument("--top", type=int, default=10)
    cmd.add_argument("--json", action="store_true",
                     help="machine-readable attribution rows")
    cmd.set_defaults(func=_cmd_attribute)

    cmd = sub.add_parser(
        "explain",
        help="attribute every simulated cycle to a stall-taxonomy bucket "
             "(requires a run recorded with --stalls)",
    )
    cmd.add_argument("run", nargs="?", default="latest",
                     help="run id, unique prefix, or 'latest' (default)")
    cmd.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                     help="attribute the cycle delta between two runs "
                          "to stall buckets instead")
    cmd.add_argument("--format", choices=("text", "json"), default="text")
    cmd.add_argument("--top", type=int, default=15,
                     help="layers shown in the text table")
    cmd.add_argument("-o", "--out", help="output path (default: stdout)")
    cmd.set_defaults(func=_cmd_explain)

    cmd = sub.add_parser(
        "fabric",
        help="spatially-resolved DN/MN/RN utilization, hottest links and "
             "FIFO occupancy (requires a run recorded with --fabric)",
    )
    cmd.add_argument("run", nargs="?", default="latest",
                     help="run id, unique prefix, or 'latest' (default)")
    cmd.add_argument("--format", choices=("text", "json"), default="text")
    cmd.add_argument("--top", type=int, default=10,
                     help="links and layers shown in the text tables")
    cmd.add_argument("-o", "--out", help="output path (default: stdout)")
    cmd.set_defaults(func=_cmd_fabric)

    cmd = sub.add_parser(
        "prune", help="keep only the newest N runs per (workload, config)"
    )
    cmd.add_argument("--keep", type=int, default=20)
    cmd.add_argument("--workload")
    cmd.add_argument("--dry-run", action="store_true",
                     help="list the runs prune would delete, delete nothing")
    cmd.set_defaults(func=_cmd_prune)

    cmd = sub.add_parser(
        "hotspots",
        help="sample a short model run; attribute host wall-clock to "
             "simulator components",
    )
    cmd.add_argument("--model", default="squeezenet",
                     help="Table I model to profile (default squeezenet)")
    cmd.add_argument("--arch", choices=("tpu", "maeri", "sigma"),
                     default="tpu")
    cmd.add_argument("--num-ms", type=int, default=16,
                     help="fabric size (default 16: long enough per layer "
                          "for dense sampling)")
    cmd.add_argument("--interval-ms", type=float, default=1.0,
                     help="sampling interval in milliseconds")
    cmd.add_argument("--repeat", type=int, default=5,
                     help="profile N back-to-back runs for more samples")
    cmd.add_argument("--format", choices=("text", "json", "html"),
                     default="text")
    cmd.add_argument("-o", "--out", help="output path (default: stdout)")
    cmd.set_defaults(func=_cmd_hotspots)

    cmd = sub.add_parser(
        "export-baseline",
        help="pin runs into a baseline JSON for 'check'",
    )
    cmd.add_argument("runs", nargs="+",
                     help="run ids / prefixes / 'latest:<workload>'")
    cmd.add_argument("--out", help="output path (default: stdout)")
    _threshold_args(cmd)
    cmd.set_defaults(func=_cmd_export_baseline)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
