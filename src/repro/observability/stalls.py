"""Cycle-exact stall attribution: where did every simulated cycle go?

The simulator reports *how many* cycles a layer took; this module
explains *why*. A :class:`StallLedger` classifies every simulated cycle
of every component into a closed taxonomy of buckets, and a
**conservation invariant** keeps the story honest: per layer and per
component, the bucket sums must equal the layer's total cycles exactly
(integer arithmetic, no rounding). Cycles a component was provably not
working are filled as ``idle`` at finalization; over-charging a
component raises :class:`StallConservationError` immediately.

The taxonomy
------------

============================ ==========================================
bucket                        meaning
============================ ==========================================
``compute_busy``              the component advanced useful work
``weight_fill``               configuration + stationary operand fill
``pipeline_drain``            fill/drain of in-flight pipeline stages
``dram_stall``                waiting on off-chip DRAM bandwidth
``noc_distribution``          distribution-network delivery bound the
                              step (Fig. 1b bandwidth starvation)
``noc_reduction``             reduction/merge throughput bound the step
``fifo_backpressure``         output/psum drain FIFOs bound the step
``edge_underutilization``     systolic wavefront skew: edge PEs idle
                              while the diagonal passes
``idle``                      provably no work for this component
============================ ==========================================

Attribution is **off by default** and arithmetically neutral: engines
charge the ledger only when one is attached
(``Observability.create(stalls=True)``), charging touches no
:class:`~repro.noc.base.CounterSet`, and the differential suite pins
that enabling it leaves cycles/counters/energy payloads byte-identical.

Both engine families produce the ledger through shared charging code
called with identical aggregate inputs (the dense segment table, the
systolic tile classes), so the ``cycle`` and ``vector`` engine modes
yield byte-identical ledgers by construction — also pinned by the
differential suite.

The per-bucket ``stall_*`` names below live in
:data:`repro.engine.stats.KNOWN_COUNTERS` like every other activity
name, which gives the lint pass and ``stonne insight explain`` one
shared registry of descriptions.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.errors import SimulationError

#: bucket -> registered ``stall_*`` counter name (the string literals
#: here are the canonical reference sites for the KNOWN_COUNTERS lint)
BUCKET_COUNTERS: Dict[str, str] = {
    "compute_busy": "stall_compute_busy",
    "weight_fill": "stall_weight_fill",
    "pipeline_drain": "stall_pipeline_drain",
    "dram_stall": "stall_dram_stall",
    "noc_distribution": "stall_noc_distribution",
    "noc_reduction": "stall_noc_reduction",
    "fifo_backpressure": "stall_fifo_backpressure",
    "edge_underutilization": "stall_edge_underutilization",
    "idle": "stall_idle",
}

#: the closed taxonomy, in canonical (display) order
STALL_BUCKETS = tuple(BUCKET_COUNTERS)

#: buckets that count toward "the hardware was doing compute-side work"
#: in the roofline-style bound classification
COMPUTE_BUCKETS = ("compute_busy", "edge_underutilization", "pipeline_drain")

#: buckets that mean "the hardware was starved for data movement"
BANDWIDTH_BUCKETS = (
    "weight_fill", "dram_stall", "noc_distribution", "noc_reduction",
    "fifo_backpressure",
)


class StallConservationError(SimulationError):
    """A component was charged more cycles than the layer ran."""


class StallLedger:
    """Per-layer, per-component stall accumulator.

    Engines call :meth:`charge` as they account phases; the accelerator
    calls :meth:`finalize` once per layer, which checks conservation,
    fills the ``idle`` remainder and returns the plain-dict ledger that
    travels in ``LayerReport.extra["stalls"]``.
    """

    __slots__ = ("_cells",)

    def __init__(self) -> None:
        self._cells: Dict[str, Dict[str, int]] = {}

    def reset(self) -> None:
        """Drop all charges (called at every layer start)."""
        self._cells = {}

    def charge(self, component: str, bucket: str, cycles: int) -> None:
        """Attribute ``cycles`` of ``component``'s time to ``bucket``."""
        if bucket not in BUCKET_COUNTERS:
            raise SimulationError(
                f"unknown stall bucket {bucket!r}; the taxonomy is closed "
                f"({', '.join(STALL_BUCKETS)})"
            )
        if cycles < 0:
            raise SimulationError(
                f"negative stall charge {cycles} for {component}/{bucket}"
            )
        if cycles == 0:
            return
        cells = self._cells.setdefault(component, {})
        cells[bucket] = cells.get(bucket, 0) + int(cycles)

    def finalize(self, total_cycles: int) -> Dict[str, Dict[str, int]]:
        """Close the layer: conservation-check and fill ``idle``.

        Components charged less than ``total_cycles`` get the remainder
        as ``idle`` (they provably had nothing to do); a component
        charged *more* is an accounting bug and raises. An empty ledger
        (an uninstrumented timing path) degrades to one all-idle
        ``controller`` row, which keeps the invariant trivially true and
        makes the gap visible in ``insight explain`` instead of hiding
        it.
        """
        if total_cycles < 0:
            raise SimulationError(f"negative layer cycle count {total_cycles}")
        cells = self._cells or {"controller": {}}
        out: Dict[str, Dict[str, int]] = {}
        for component in sorted(cells):
            buckets = {b: int(v) for b, v in cells[component].items() if v}
            charged = sum(buckets.values())
            if charged > total_cycles:
                raise StallConservationError(
                    f"component {component!r} charged {charged} cycles but "
                    f"the layer ran {total_cycles}"
                )
            if charged < total_cycles:
                buckets["idle"] = buckets.get("idle", 0) + total_cycles - charged
            out[component] = {b: buckets[b] for b in STALL_BUCKETS if b in buckets}
        return out


def validate_ledger(
    stalls: Mapping[str, Mapping[str, int]], cycles: int
) -> List[str]:
    """Conservation violations of a finalized ledger (empty = holds).

    Re-checked at report time (``stonne insight explain``) and by the
    test suite, so a ledger that was corrupted after finalization — or
    produced by a foreign tool — cannot masquerade as attribution.
    """
    problems: List[str] = []
    for component in sorted(stalls):
        buckets = stalls[component]
        unknown = sorted(set(buckets) - set(STALL_BUCKETS))
        if unknown:
            problems.append(
                f"{component}: unknown bucket(s) {', '.join(unknown)}"
            )
        total = sum(int(v) for b, v in buckets.items() if b in BUCKET_COUNTERS)
        if total != cycles:
            problems.append(
                f"{component}: buckets sum to {total}, layer ran {cycles}"
            )
        negative = sorted(b for b, v in buckets.items() if int(v) < 0)
        if negative:
            problems.append(
                f"{component}: negative bucket(s) {', '.join(negative)}"
            )
    return problems


def merge_ledgers(
    ledgers: List[Mapping[str, Mapping[str, int]]]
) -> Dict[str, Dict[str, int]]:
    """Sum per-layer ledgers into a run-level aggregate (same shape)."""
    merged: Dict[str, Dict[str, int]] = {}
    for ledger in ledgers:
        for component, buckets in ledger.items():
            cells = merged.setdefault(component, {})
            for bucket, value in buckets.items():
                cells[bucket] = cells.get(bucket, 0) + int(value)
    return {
        component: {
            b: merged[component][b]
            for b in STALL_BUCKETS if b in merged[component]
        }
        for component in sorted(merged)
    }


def classify_bound(buckets: Mapping[str, int]) -> str:
    """Roofline-style call for one component's bucket row.

    ``compute-bound`` when the compute-side buckets (busy + wavefront
    skew + pipeline fill/drain) dominate the data-movement buckets
    (weight fill, DRAM, NoC contention, FIFO backpressure); otherwise
    ``bandwidth-bound``. Idle cycles vote for neither side.
    """
    compute = sum(int(buckets.get(b, 0)) for b in COMPUTE_BUCKETS)
    bandwidth = sum(int(buckets.get(b, 0)) for b in BANDWIDTH_BUCKETS)
    return "compute-bound" if compute >= bandwidth else "bandwidth-bound"
