"""Observability export schema validation (traces and metrics).

:func:`validate_chrome_trace` checks the structural contract the trace
exporter promises (and ``chrome://tracing`` / Perfetto require): object
format with a ``traceEvents`` list, well-formed phase codes, numeric
non-negative timestamps/durations, and a ``thread_name`` metadata event
for every thread lane in use. :func:`validate_metrics_json` does the
same for :meth:`~repro.observability.metrics.MetricsRecorder.to_json`
exports: a ``samples`` list of non-decreasing cycles with numeric
cumulative values.

Runnable as a module for CI smoke checks; the file kind is detected from
its top-level keys (force it with ``--kind``)::

    python -m repro.observability.validate trace.json --expect DN: --expect RN:
    python -m repro.observability.validate metrics.json --expect gb_reads
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

#: phase codes the repro tracer emits
KNOWN_PHASES = {"X", "i", "C", "M"}


def validate_chrome_trace(payload: object) -> dict:
    """Validate a parsed Chrome trace object; returns summary statistics.

    Raises :class:`ValueError` describing the first violation found.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace must be a JSON object (Chrome object format)")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a 'traceEvents' list")
    if not events:
        raise ValueError("trace has no events")

    named_tids = set()
    used_tids = set()
    spans = instants = counters = 0
    span_names = set()
    for index, record in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(record, dict):
            raise ValueError(f"{where}: event is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in record:
                raise ValueError(f"{where}: missing required field {key!r}")
        phase = record["ph"]
        if phase not in KNOWN_PHASES:
            raise ValueError(f"{where}: unknown phase code {phase!r}")
        if not isinstance(record["name"], str) or not record["name"]:
            raise ValueError(f"{where}: event name must be a non-empty string")
        if phase == "M":
            if record["name"] == "thread_name":
                named_tids.add(record["tid"])
            continue
        used_tids.add(record["tid"])
        ts = record.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where}: 'ts' must be a non-negative number")
        if phase == "X":
            dur = record.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"{where}: complete event needs a non-negative 'dur'"
                )
            spans += 1
            span_names.add(record["name"])
        elif phase == "i":
            instants += 1
        elif phase == "C":
            args = record.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(value, (int, float)) for value in args.values()
            ):
                raise ValueError(
                    f"{where}: counter event needs numeric 'args' values"
                )
            counters += 1
    unnamed = used_tids - named_tids
    if unnamed:
        raise ValueError(
            f"thread lanes without thread_name metadata: {sorted(unnamed)}"
        )
    if spans == 0:
        raise ValueError("trace contains no spans (phase 'X' events)")
    return {
        "events": len(events),
        "spans": spans,
        "instants": instants,
        "counters": counters,
        "threads": len(used_tids),
        "span_names": sorted(span_names),
    }


def validate_metrics_json(payload: object) -> dict:
    """Validate a parsed metrics JSON export; returns summary statistics.

    Checks the contract of
    :meth:`~repro.observability.metrics.MetricsRecorder.to_json`:
    ``every`` / ``capacity`` positive, ``dropped`` non-negative, and a
    ``samples`` list whose cycles are non-negative, non-decreasing and
    whose values are numeric. Sample cycles are *not* required to be
    multiples of ``every``: merged parallel runs rebase worker samples
    by layer-start offsets that land off the grid.

    Raises :class:`ValueError` describing the first violation found.
    """
    if not isinstance(payload, dict):
        raise ValueError("metrics export must be a JSON object")
    samples = payload.get("samples")
    if not isinstance(samples, list):
        raise ValueError("metrics export must carry a 'samples' list")
    every = payload.get("every")
    if not isinstance(every, int) or every < 1:
        raise ValueError("'every' must be a positive integer cadence")
    capacity = payload.get("capacity")
    if not isinstance(capacity, int) or capacity < 1:
        raise ValueError("'capacity' must be a positive integer")
    dropped = payload.get("dropped")
    if not isinstance(dropped, int) or dropped < 0:
        raise ValueError("'dropped' must be a non-negative integer")

    columns = set()
    last_cycle = -1
    for index, sample in enumerate(samples):
        where = f"samples[{index}]"
        if not isinstance(sample, dict):
            raise ValueError(f"{where}: sample is not an object")
        cycle = sample.get("cycle")
        if not isinstance(cycle, int) or cycle < 0:
            raise ValueError(f"{where}: 'cycle' must be a non-negative integer")
        if cycle < last_cycle:
            raise ValueError(
                f"{where}: cycles went backwards ({cycle} < {last_cycle})"
            )
        last_cycle = cycle
        values = sample.get("values")
        if not isinstance(values, dict) or not all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in values.values()
        ):
            raise ValueError(f"{where}: 'values' must map names to numbers")
        columns.update(values)
    return {
        "samples": len(samples),
        "every": every,
        "dropped": dropped,
        "last_cycle": max(last_cycle, 0),
        "columns": sorted(columns),
    }


def _detect_kind(payload: object) -> str:
    if isinstance(payload, dict) and "traceEvents" in payload:
        return "trace"
    if isinstance(payload, dict) and "samples" in payload:
        return "metrics"
    raise ValueError(
        "cannot detect file kind (neither 'traceEvents' nor 'samples' "
        "present); force one with --kind"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.validate",
        description="validate a Chrome trace or metrics JSON export",
    )
    parser.add_argument("file", help="path to the trace or metrics JSON")
    parser.add_argument(
        "--kind", choices=("auto", "trace", "metrics"), default="auto",
        help="file kind (default: detect from top-level keys)",
    )
    parser.add_argument(
        "--expect", action="append", default=[],
        help="traces: require a span whose name starts with this prefix; "
             "metrics: require this counter column (repeatable)",
    )
    args = parser.parse_args(argv)
    path = Path(args.file)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        kind = _detect_kind(payload) if args.kind == "auto" else args.kind
        if kind == "trace":
            stats = validate_chrome_trace(payload)
            for prefix in args.expect:
                if not any(
                    name.startswith(prefix) for name in stats["span_names"]
                ):
                    raise ValueError(f"no span named {prefix}*")
        else:
            stats = validate_metrics_json(payload)
            for column in args.expect:
                if column not in stats["columns"]:
                    raise ValueError(f"no counter column {column!r}")
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"invalid {args.kind} file {path}: {exc}", file=sys.stderr)
        return 1
    if kind == "trace":
        print(
            f"valid trace: {stats['events']} events "
            f"({stats['spans']} spans, {stats['counters']} counter samples, "
            f"{stats['instants']} instants) across {stats['threads']} lanes"
        )
    else:
        print(
            f"valid metrics export: {stats['samples']} samples "
            f"every {stats['every']} cycles across "
            f"{len(stats['columns'])} columns "
            f"(last cycle {stats['last_cycle']}, {stats['dropped']} dropped)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
