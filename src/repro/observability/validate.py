"""Chrome trace-event JSON schema validation.

:func:`validate_chrome_trace` checks the structural contract the
exporter promises (and ``chrome://tracing`` / Perfetto require): object
format with a ``traceEvents`` list, well-formed phase codes, numeric
non-negative timestamps/durations, and a ``thread_name`` metadata event
for every thread lane in use.

Runnable as a module for CI smoke checks::

    python -m repro.observability.validate trace.json --expect DN: --expect RN:
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

#: phase codes the repro tracer emits
KNOWN_PHASES = {"X", "i", "C", "M"}


def validate_chrome_trace(payload: object) -> dict:
    """Validate a parsed Chrome trace object; returns summary statistics.

    Raises :class:`ValueError` describing the first violation found.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace must be a JSON object (Chrome object format)")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a 'traceEvents' list")
    if not events:
        raise ValueError("trace has no events")

    named_tids = set()
    used_tids = set()
    spans = instants = counters = 0
    span_names = set()
    for index, record in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(record, dict):
            raise ValueError(f"{where}: event is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in record:
                raise ValueError(f"{where}: missing required field {key!r}")
        phase = record["ph"]
        if phase not in KNOWN_PHASES:
            raise ValueError(f"{where}: unknown phase code {phase!r}")
        if not isinstance(record["name"], str) or not record["name"]:
            raise ValueError(f"{where}: event name must be a non-empty string")
        if phase == "M":
            if record["name"] == "thread_name":
                named_tids.add(record["tid"])
            continue
        used_tids.add(record["tid"])
        ts = record.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where}: 'ts' must be a non-negative number")
        if phase == "X":
            dur = record.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"{where}: complete event needs a non-negative 'dur'"
                )
            spans += 1
            span_names.add(record["name"])
        elif phase == "i":
            instants += 1
        elif phase == "C":
            args = record.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(value, (int, float)) for value in args.values()
            ):
                raise ValueError(
                    f"{where}: counter event needs numeric 'args' values"
                )
            counters += 1
    unnamed = used_tids - named_tids
    if unnamed:
        raise ValueError(
            f"thread lanes without thread_name metadata: {sorted(unnamed)}"
        )
    if spans == 0:
        raise ValueError("trace contains no spans (phase 'X' events)")
    return {
        "events": len(events),
        "spans": spans,
        "instants": instants,
        "counters": counters,
        "threads": len(used_tids),
        "span_names": sorted(span_names),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.validate",
        description="validate a Chrome trace-event JSON file",
    )
    parser.add_argument("trace", help="path to the trace JSON")
    parser.add_argument(
        "--expect", action="append", default=[],
        help="require at least one span whose name starts with this prefix "
             "(repeatable)",
    )
    args = parser.parse_args(argv)
    path = Path(args.trace)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        stats = validate_chrome_trace(payload)
        for prefix in args.expect:
            if not any(name.startswith(prefix) for name in stats["span_names"]):
                raise ValueError(f"no span named {prefix}*")
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"invalid trace {path}: {exc}", file=sys.stderr)
        return 1
    print(
        f"valid trace: {stats['events']} events "
        f"({stats['spans']} spans, {stats['counters']} counter samples, "
        f"{stats['instants']} instants) across {stats['threads']} lanes"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
