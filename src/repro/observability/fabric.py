"""Spatially-resolved fabric utilization: the per-level DN/MN/RN ledger.

The scalar NoC counters (``dn_switch_traversals``, ``rn_adder_ops``, ...)
say *that* a network was busy; this ledger says *where*. Each network
tier decomposes its aggregate activity across its physical tree levels
(and, for fabrics whose widest level has at most :data:`LINK_DETAIL_LIMIT`
links, across individual links), and two synthetic tier-boundary FIFOs
(``gb_dn`` between the global buffer and the DN, ``rn_gb`` between the RN
and the buffer) track occupancy: accumulated pushes/pops, the per-window
high-watermark, and a bounded windowed time series.

Charging follows the stall-ledger playbook exactly
(:mod:`repro.observability.stalls`): the cycle-stepped engine charges at
its existing ``counters.add`` sites (inside the NoC components' own
recording methods), the vector engine charges through the same shared
methods fed the same aggregate segment/tile-class tables, and addition
commutes — so the two engines produce byte-identical ledgers by
construction. Per-link spreads are computed once at :meth:`finalize`
from the per-level totals (never at charge time), so charge batching
cannot perturb the payload either.

The consistency invariant, enforced at :meth:`finalize` and re-validated
by ``insight fabric`` and the differential suite: for every charged
tier, the per-level busy sums equal the layer's existing aggregate NoC
counter *exactly* (``dn`` levels sum to ``dn_switch_traversals``, and so
on for the tier's anchor counter), and every recorded FIFO's anchored
push/pop total equals its ``ctrl_fifo_*`` counter. A violation raises
:class:`FabricConsistencyError` — decompositions are never renormalized.

Ledgers ride only in ``LayerReport.extra["fabric"]``; cycles, counters
and energy are untouched, so attribution on/off payloads stay
byte-identical (pinned by ``tests/differential/test_fabric_attribution``).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import SimulationError

#: per-link detail is emitted for a tier only when its widest level has
#: at most this many links — "fabrics up to 256 PEs" stay fully resolved,
#: larger fabrics keep the (bounded) per-level view
LINK_DETAIL_LIMIT = 256

#: the closed set of fabric tiers the ledger accepts
FABRIC_TIERS = ("dn", "mn", "rn")

#: the closed set of tier-boundary FIFOs, each anchored to the existing
#: controller FIFO counter its push/pop totals must reproduce exactly
FIFO_ANCHORS = {
    "gb_dn": ("ctrl_fifo_pushes", "pushes"),
    "rn_gb": ("ctrl_fifo_pops", "pops"),
}

#: per-level busy metrics live in ``extra["fabric"]["tiers"]``, never in
#: a CounterSet — the string literals here are the canonical reference
#: sites for the KNOWN_COUNTERS lint, mirroring stalls.BUCKET_COUNTERS
FABRIC_COUNTERS = {
    "dn": "fabric_dn_level_busy",
    "mn": "fabric_mn_level_busy",
    "rn": "fabric_rn_level_busy",
}

#: FIFO occupancy metrics live in ``extra["fabric"]["fifos"]`` — same
#: registry idiom: declared in KNOWN_COUNTERS, referenced here for lint
FIFO_OCCUPANCY_COUNTERS = {
    "depth": "fifo_occupancy_depth",
    "high_watermark": "fifo_occupancy_hwm",
    "windows": "fifo_occupancy_windows",
}

#: aggregate NoC activity counters a fabric-instrumented layer would have
#: decomposed; their presence in a layer delta with an *empty* ledger is
#: reported as visible degradation rather than silently passing
_NOC_ACTIVITY_COUNTERS = (
    "dn_switch_traversals",
    "dn_wire_traversals",
    "mn_multiplications",
    "rn_adder_ops",
    "rn_adder_ops_3to1",
    "rn_accumulator_ops",
)

#: windowed FIFO series are decimated (adjacent pairs merged, watermark
#: kept) whenever they exceed this many entries — bounded and, because
#: both engines append the same window sequence, engine-agnostic
FIFO_WINDOW_LIMIT = 64


class FabricConsistencyError(SimulationError):
    """A tier's per-level sums diverged from its aggregate counter."""


def _check_amount(kind: str, value: int) -> int:
    value = int(value)
    if value < 0:
        raise SimulationError(f"fabric ledger: negative {kind} ({value})")
    return value


class FabricLedger:
    """Per-layer accumulator for spatially-resolved fabric activity.

    One instance per observability context; :class:`~repro.engine.
    accelerator.Accelerator` resets it at layer start and finalizes it
    into ``extra["fabric"]`` at layer end, handing it the layer's
    counter delta so the consistency invariant can be enforced.
    """

    __slots__ = ("_tiers", "_fifos")

    def __init__(self) -> None:
        self._tiers: Dict[str, Dict[str, object]] = {}
        self._fifos: Dict[str, Dict[str, object]] = {}

    def reset(self) -> None:
        """Drop accumulated state at a layer boundary."""
        self._tiers.clear()
        self._fifos.clear()

    # -- charging ------------------------------------------------------
    def charge_levels(
        self,
        tier: str,
        counter: str,
        amounts: Sequence[int],
        widths: Sequence[int],
        times: int = 1,
        active: Optional[Sequence[int]] = None,
    ) -> None:
        """Add ``amounts[i] * times`` traversals to each level of a tier.

        ``widths[i]`` is the number of physical links on level ``i``
        (root-first for the DN, leaf-adjacent-first for the RN);
        ``active`` optionally narrows the links the finalize-time spread
        distributes over (e.g. the multipliers actually mapped). The
        level geometry of a tier is fixed within a layer: a later charge
        with a different shape or anchor counter is a bug and raises.
        """
        if tier not in FABRIC_TIERS:
            raise SimulationError(
                f"fabric ledger: unknown tier {tier!r} (the tier set "
                f"{FABRIC_TIERS} is closed)"
            )
        times = _check_amount("multiplier", times)
        amounts = [_check_amount(f"{tier} level charge", a) for a in amounts]
        if len(amounts) != len(widths):
            raise SimulationError(
                f"fabric ledger: {tier} charged {len(amounts)} level(s) "
                f"over {len(widths)} width(s)"
            )
        if not times or not any(amounts):
            return
        cell = self._tiers.get(tier)
        if cell is None:
            cell = {
                "counter": counter,
                "widths": [max(1, int(w)) for w in widths],
                "levels": [0] * len(amounts),
                "active": [max(1, int(w)) for w in widths],
            }
            self._tiers[tier] = cell
        if cell["counter"] != counter or len(cell["levels"]) != len(amounts):
            raise SimulationError(
                f"fabric ledger: {tier} recharged with a different shape "
                f"({counter!r} x{len(amounts)} after {cell['counter']!r} "
                f"x{len(cell['levels'])})"
            )
        levels: List[int] = cell["levels"]  # type: ignore[assignment]
        for index, amount in enumerate(amounts):
            levels[index] += amount * times
        if active is not None:
            actives: List[int] = cell["active"]  # type: ignore[assignment]
            widths_list: List[int] = cell["widths"]  # type: ignore[assignment]
            for index, count in enumerate(active):
                count = int(count)
                if 0 < count < actives[index]:
                    # narrow to the busiest narrowing seen, never below 1
                    # and never wider than the physical level
                    actives[index] = min(count, widths_list[index])

    def record_fifo(
        self,
        name: str,
        capacity: int,
        pushes: int,
        pops: int,
        depth: int,
        window_cycles: int,
    ) -> None:
        """Record one window of a tier-boundary FIFO's activity.

        ``depth`` is the window's concurrent-occupancy proxy (slots in
        flight per step); the high-watermark is the max over windows.
        """
        if name not in FIFO_ANCHORS:
            raise SimulationError(
                f"fabric ledger: unknown fifo {name!r} (the fifo set "
                f"{tuple(sorted(FIFO_ANCHORS))} is closed)"
            )
        pushes = _check_amount("fifo pushes", pushes)
        pops = _check_amount("fifo pops", pops)
        depth = _check_amount("fifo depth", depth)
        window_cycles = _check_amount("fifo window", window_cycles)
        cell = self._fifos.get(name)
        if cell is None:
            cell = {
                "capacity": max(1, int(capacity)),
                "pushes": 0,
                "pops": 0,
                "high_watermark": 0,
                "windows": [],
            }
            self._fifos[name] = cell
        cell["pushes"] = int(cell["pushes"]) + pushes
        cell["pops"] = int(cell["pops"]) + pops
        cell["high_watermark"] = max(int(cell["high_watermark"]), depth)
        windows: List[List[int]] = cell["windows"]  # type: ignore[assignment]
        windows.append([window_cycles, depth])
        if len(windows) > 2 * FIFO_WINDOW_LIMIT:
            cell["windows"] = _decimate(windows)

    # -- finalize ------------------------------------------------------
    def finalize(
        self, counters: Mapping[str, int], total_cycles: int
    ) -> Dict[str, object]:
        """Close the layer's ledger and enforce the consistency invariant.

        ``counters`` is the layer's counter delta; every charged tier's
        per-level sum must equal its anchor counter exactly, and every
        recorded FIFO's anchored total must equal its ``ctrl_fifo_*``
        counter. Layers that touched no instrumented fabric (maxpool)
        finalize to an empty ledger; a layer whose delta shows NoC
        activity the ledger never saw is flagged ``uninstrumented``
        rather than silently passing.
        """
        cycles = _check_amount("cycle total", total_cycles)
        tiers_out: Dict[str, object] = {}
        for tier in FABRIC_TIERS:
            cell = self._tiers.get(tier)
            if cell is None:
                continue
            counter = str(cell["counter"])
            levels: List[int] = list(cell["levels"])  # type: ignore[arg-type]
            widths: List[int] = list(cell["widths"])  # type: ignore[arg-type]
            active: List[int] = list(cell["active"])  # type: ignore[arg-type]
            charged = sum(levels)
            expected = int(counters.get(counter, 0))
            if charged != expected:
                raise FabricConsistencyError(
                    f"fabric tier {tier!r}: levels sum to {charged} but "
                    f"the layer's {counter} counter recorded {expected}"
                )
            utilization = [
                round(level / (width * cycles), 6) if cycles else 0.0
                for level, width in zip(levels, widths)
            ]
            links = None
            if widths and max(widths) <= LINK_DETAIL_LIMIT:
                links = [
                    _spread(level, active[i], widths[i])
                    for i, level in enumerate(levels)
                ]
            tiers_out[tier] = {
                "counter": counter,
                "levels": levels,
                "links_per_level": widths,
                "utilization": utilization,
                "links": links,
            }

        fifos_out: Dict[str, object] = {}
        for name in sorted(self._fifos):
            cell = self._fifos[name]
            anchor_counter, anchor_field = FIFO_ANCHORS[name]
            recorded = int(cell[anchor_field])  # type: ignore[arg-type]
            expected = int(counters.get(anchor_counter, 0))
            if recorded != expected:
                raise FabricConsistencyError(
                    f"fabric fifo {name!r}: recorded {recorded} "
                    f"{anchor_field} but the layer's {anchor_counter} "
                    f"counter recorded {expected}"
                )
            windows: List[List[int]] = cell["windows"]  # type: ignore[assignment]
            while len(windows) > FIFO_WINDOW_LIMIT:
                windows = _decimate(windows)
            fifos_out[name] = {
                "capacity": int(cell["capacity"]),  # type: ignore[arg-type]
                "pushes": int(cell["pushes"]),  # type: ignore[arg-type]
                "pops": int(cell["pops"]),  # type: ignore[arg-type]
                "high_watermark": int(cell["high_watermark"]),  # type: ignore[arg-type]
                "windows": [list(window) for window in windows],
            }

        payload: Dict[str, object] = {
            "tiers": tiers_out,
            "fifos": fifos_out,
            "cycles": cycles,
        }
        if not tiers_out:
            missed = sorted(
                name for name in _NOC_ACTIVITY_COUNTERS
                if int(counters.get(name, 0))
            )
            if missed:
                payload["uninstrumented"] = missed
        return payload


def _spread(total: int, active: int, width: int) -> List[int]:
    """Distribute a level total uniformly over its active links.

    Quotient everywhere, remainder to the lowest-indexed links —
    deterministic, and exact: the per-link counts sum back to ``total``.
    """
    active = max(1, min(active, width))
    quotient, remainder = divmod(total, active)
    return [
        quotient + (1 if index < remainder else 0) if index < active else 0
        for index in range(width)
    ]


def _decimate(windows: List[List[int]]) -> List[List[int]]:
    """Merge adjacent window pairs: cycles add, watermarks keep the max."""
    merged: List[List[int]] = []
    for index in range(0, len(windows), 2):
        pair = windows[index:index + 2]
        merged.append([
            sum(window[0] for window in pair),
            max(window[1] for window in pair),
        ])
    return merged


def tournament_levels(count: int) -> List[int]:
    """Per-round participant halving of ``count`` leaves, first round first.

    ``[count // 2, ...]`` until one survivor remains; the entries sum to
    exactly ``count - 1`` — the adders (or switches) a ``count``-leaf
    binary reduction/distribution actually exercises, odd counts and all.
    """
    levels: List[int] = []
    width = int(count)
    while width > 1:
        levels.append(width // 2)
        width = (width + 1) // 2
    return levels


def validate_fabric(
    fabric: Mapping[str, object],
    counters: Mapping[str, int],
    cycles: int,
) -> List[str]:
    """Re-check one finalized fabric payload; returns problem strings.

    The non-raising mirror of :meth:`FabricLedger.finalize`'s invariant,
    for ``insight fabric`` and the differential suite: tier sums against
    the layer's counters, link spreads against the level totals, FIFO
    anchors against the controller FIFO counters.
    """
    problems: List[str] = []
    tiers = fabric.get("tiers")
    if not isinstance(tiers, Mapping):
        return [f"fabric payload has no tier mapping: {fabric!r}"]
    for tier, cell in tiers.items():
        if tier not in FABRIC_TIERS:
            problems.append(f"unknown tier {tier!r}")
            continue
        counter = str(cell.get("counter", ""))
        levels = [int(v) for v in cell.get("levels", [])]
        expected = int(counters.get(counter, 0))
        if sum(levels) != expected:
            problems.append(
                f"{tier}: levels sum to {sum(levels)}, counter "
                f"{counter} recorded {expected}"
            )
        if any(level < 0 for level in levels):
            problems.append(f"{tier}: negative level charge in {levels}")
        widths = [int(v) for v in cell.get("links_per_level", [])]
        if len(widths) != len(levels):
            problems.append(
                f"{tier}: {len(levels)} level(s) but {len(widths)} width(s)"
            )
        links = cell.get("links")
        if links is not None:
            for index, row in enumerate(links):
                if index < len(levels) and sum(row) != levels[index]:
                    problems.append(
                        f"{tier} level {index}: links sum to {sum(row)}, "
                        f"level recorded {levels[index]}"
                    )
                if index < len(widths) and len(row) != widths[index]:
                    problems.append(
                        f"{tier} level {index}: {len(row)} link(s) on a "
                        f"{widths[index]}-link level"
                    )
    fifos = fabric.get("fifos")
    if isinstance(fifos, Mapping):
        for name, cell in fifos.items():
            anchor = FIFO_ANCHORS.get(name)
            if anchor is None:
                problems.append(f"unknown fifo {name!r}")
                continue
            anchor_counter, anchor_field = anchor
            recorded = int(cell.get(anchor_field, 0))
            expected = int(counters.get(anchor_counter, 0))
            if recorded != expected:
                problems.append(
                    f"fifo {name}: {recorded} {anchor_field}, counter "
                    f"{anchor_counter} recorded {expected}"
                )
    if int(fabric.get("cycles", cycles)) != int(cycles):
        problems.append(
            f"fabric cycles {fabric.get('cycles')} != layer cycles {cycles}"
        )
    return problems


def merge_fabric(
    ledgers: Sequence[Mapping[str, object]],
) -> Dict[str, object]:
    """Sum per-layer fabric payloads into one run-level payload.

    Levels and link counts add elementwise; FIFO pushes/pops add and
    high-watermarks keep the max; windowed series stay per-layer and are
    dropped. Layers whose tier geometry disagrees (different fabric)
    cannot be merged and raise :class:`ValueError`.
    """
    tiers: Dict[str, Dict[str, object]] = {}
    fifos: Dict[str, Dict[str, object]] = {}
    cycles = 0
    for ledger in ledgers:
        cycles += int(ledger.get("cycles", 0))
        for tier, cell in (ledger.get("tiers") or {}).items():
            into = tiers.get(tier)
            if into is None:
                tiers[tier] = {
                    "counter": cell["counter"],
                    "levels": [int(v) for v in cell["levels"]],
                    "links_per_level": list(cell["links_per_level"]),
                    "links": (
                        [list(row) for row in cell["links"]]
                        if cell.get("links") is not None else None
                    ),
                }
                continue
            if (into["counter"] != cell["counter"]
                    or into["links_per_level"] != list(cell["links_per_level"])):
                raise ValueError(
                    f"cannot merge fabric tier {tier!r}: layers disagree "
                    f"on its geometry"
                )
            into["levels"] = [
                a + int(b) for a, b in zip(into["levels"], cell["levels"])
            ]
            if into["links"] is not None and cell.get("links") is not None:
                into["links"] = [
                    [a + int(b) for a, b in zip(row_a, row_b)]
                    for row_a, row_b in zip(into["links"], cell["links"])
                ]
            else:
                into["links"] = None
        for name, cell in (ledger.get("fifos") or {}).items():
            into = fifos.get(name)
            if into is None:
                fifos[name] = {
                    "capacity": int(cell["capacity"]),
                    "pushes": int(cell["pushes"]),
                    "pops": int(cell["pops"]),
                    "high_watermark": int(cell["high_watermark"]),
                }
                continue
            into["capacity"] = max(into["capacity"], int(cell["capacity"]))
            into["pushes"] = int(into["pushes"]) + int(cell["pushes"])
            into["pops"] = int(into["pops"]) + int(cell["pops"])
            into["high_watermark"] = max(
                int(into["high_watermark"]), int(cell["high_watermark"])
            )
    for tier, cell in tiers.items():
        widths = [int(w) for w in cell["links_per_level"]]
        cell["utilization"] = [
            round(level / (width * cycles), 6) if cycles else 0.0
            for level, width in zip(cell["levels"], widths)
        ]
    return {"tiers": tiers, "fifos": fifos, "cycles": cycles}


def hottest_links(
    fabric: Mapping[str, object], top: int = 10
) -> List[Dict[str, object]]:
    """Rank individual links by traversal count across all tiers.

    Only tiers that kept per-link detail contribute; ties break on
    (tier, level, link) so the ranking is deterministic.
    """
    rows: List[Dict[str, object]] = []
    cycles = int(fabric.get("cycles", 0))
    for tier, cell in (fabric.get("tiers") or {}).items():
        links = cell.get("links")
        if links is None:
            continue
        for level, row in enumerate(links):
            for link, count in enumerate(row):
                if count:
                    rows.append({
                        "tier": tier,
                        "level": level,
                        "link": link,
                        "traversals": int(count),
                        "per_cycle": (
                            round(count / cycles, 6) if cycles else 0.0
                        ),
                    })
    rows.sort(key=lambda r: (-r["traversals"], r["tier"], r["level"], r["link"]))
    return rows[:max(0, int(top))]
