"""CACHE-KEY: config-field coverage of the SimCache canonical key.

:class:`~repro.parallel.cache.SimCache` serves a stored
:class:`~repro.engine.stats.LayerReport` whenever (layer geometry, tile,
hardware config) match. Any configuration field that can change timing
but does not reach the canonical key turns the cache into a silent
source of stale results — the nastiest possible failure mode, because
every individual run still looks plausible.

``repro/parallel/cache.py`` therefore carries an in-code manifest:

- ``KEY_COVERED_FIELDS``: class → {field: how it reaches the key}
- ``KEY_EXEMPT_FIELDS``: class → {field: why it legitimately does not}

This pass diffs the manifest against the *actual* dataclass fields of
the config classes, so adding a field without deciding its cache-key
fate is a lint failure instead of a stale-cache bug.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    dataclass_field_names,
    is_dataclass_def,
    register_pass,
)

#: module holding the canonical key and its coverage manifest
CACHE_MODULE = "repro.parallel.cache"

#: config package scanned for dataclass definitions
CONFIG_PACKAGE = "repro.config"

#: classes that must be accounted for even if the manifest forgets them
DEFAULT_CHECKED_CLASSES = (
    "HardwareConfig",
    "DramConfig",
    "TileConfig",
    "ConvLayerSpec",
    "GemmSpec",
)

RULES = (
    Rule(
        id="CACHE-KEY-FIELD",
        summary="config dataclass field not covered by the SimCache key",
        rationale=(
            "a timing-relevant field outside the canonical key means two "
            "different configurations can share a cache entry; declare "
            "how the field reaches the key in KEY_COVERED_FIELDS, or why "
            "it never affects timing in KEY_EXEMPT_FIELDS, and bump "
            "CACHE_SCHEMA_VERSION when coverage changes"
        ),
    ),
    Rule(
        id="CACHE-KEY-STALE",
        summary="cache-key manifest names a field/class that no longer exists",
        rationale=(
            "a stale manifest claims coverage for nothing; it must shrink "
            "in the same change that removes the field"
        ),
    ),
    Rule(
        id="CACHE-KEY-REASON",
        summary="manifest entry without an explanation string",
        rationale=(
            "the manifest is documentation the linter can enforce; an "
            "empty note defeats the audit"
        ),
    ),
    Rule(
        id="CACHE-KEY-MISSING",
        summary="cache module or its coverage manifest not found",
        rationale=(
            "without KEY_COVERED_FIELDS/KEY_EXEMPT_FIELDS in "
            "repro/parallel/cache.py the coverage invariant cannot be "
            "checked at all"
        ),
    ),
)


def _manifest(
    tree: ast.AST, name: str
) -> Tuple[Optional[Dict[str, Dict[str, str]]], int]:
    """A module-level dict-of-dicts literal plus its line number."""
    for node in getattr(tree, "body", []):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                try:
                    value = ast.literal_eval(node.value)
                except ValueError:
                    return None, node.lineno
                if not isinstance(value, dict):
                    return None, node.lineno
                return value, node.lineno
    return None, 0


def _config_classes(project: Project) -> Dict[str, Tuple[str, int, Dict[str, int]]]:
    """class name → (file, class line, {field: line}) for config dataclasses."""
    classes: Dict[str, Tuple[str, int, Dict[str, int]]] = {}
    for file in project.in_packages(CONFIG_PACKAGE):
        if file.tree is None:
            continue
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef) or not is_dataclass_def(node):
                continue
            fields: Dict[str, int] = {}
            names = set(dataclass_field_names(node))
            for statement in node.body:
                if (
                    isinstance(statement, ast.AnnAssign)
                    and isinstance(statement.target, ast.Name)
                    and statement.target.id in names
                ):
                    fields[statement.target.id] = statement.lineno
            classes[node.name] = (file.relpath, node.lineno, fields)
    return classes


@register_pass(
    "CACHE-KEY",
    "every config dataclass field is covered by, or exempted from, the "
    "SimCache canonical key",
    RULES,
)
def run(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    cache_file = project.module(CACHE_MODULE)
    if cache_file is None or cache_file.tree is None:
        # a project without the cache module has nothing to check (e.g.
        # linting a single unrelated file); only a present-but-broken
        # cache module is a finding
        if cache_file is not None:
            findings.append(Finding(
                rule="CACHE-KEY-MISSING", path=cache_file.relpath, line=1,
                message=f"{CACHE_MODULE} does not parse",
            ))
        return findings

    covered, covered_line = _manifest(cache_file.tree, "KEY_COVERED_FIELDS")
    exempt, exempt_line = _manifest(cache_file.tree, "KEY_EXEMPT_FIELDS")
    if covered is None or exempt is None:
        missing = []
        if covered is None:
            missing.append("KEY_COVERED_FIELDS")
        if exempt is None:
            missing.append("KEY_EXEMPT_FIELDS")
        findings.append(Finding(
            rule="CACHE-KEY-MISSING", path=cache_file.relpath,
            line=max(covered_line, exempt_line, 1),
            message=(
                f"{' and '.join(missing)} must be module-level dict "
                "literals mapping class -> {field: note}"
            ),
        ))
        return findings

    classes = _config_classes(project)
    checked = sorted(
        set(DEFAULT_CHECKED_CLASSES) | set(covered) | set(exempt)
    )

    for class_name in checked:
        manifest_covered = covered.get(class_name, {})
        manifest_exempt = exempt.get(class_name, {})
        if class_name not in classes:
            if class_name in covered or class_name in exempt:
                findings.append(Finding(
                    rule="CACHE-KEY-STALE", path=cache_file.relpath,
                    line=covered_line if class_name in covered else exempt_line,
                    message=(
                        f"manifest entry for {class_name!r} but no such "
                        f"dataclass exists in {CONFIG_PACKAGE}"
                    ),
                ))
            continue
        relpath, class_line, fields = classes[class_name]
        for field_name, field_line in fields.items():
            note = manifest_covered.get(field_name, manifest_exempt.get(field_name))
            if note is None:
                findings.append(Finding(
                    rule="CACHE-KEY-FIELD", path=relpath, line=field_line,
                    message=(
                        f"{class_name}.{field_name} is neither covered by "
                        "the SimCache canonical key nor exempted; update "
                        "the manifest in repro/parallel/cache.py (and bump "
                        "CACHE_SCHEMA_VERSION if the key changes)"
                    ),
                ))
            elif not (isinstance(note, str) and note.strip()):
                findings.append(Finding(
                    rule="CACHE-KEY-REASON", path=cache_file.relpath,
                    line=(
                        covered_line
                        if field_name in manifest_covered else exempt_line
                    ),
                    message=(
                        f"manifest entry {class_name}.{field_name} needs a "
                        "non-empty explanation string"
                    ),
                ))
        for field_name in list(manifest_covered) + list(manifest_exempt):
            if field_name not in fields:
                findings.append(Finding(
                    rule="CACHE-KEY-STALE", path=cache_file.relpath,
                    line=(
                        covered_line
                        if field_name in manifest_covered else exempt_line
                    ),
                    message=(
                        f"manifest covers {class_name}.{field_name}, which "
                        "is not a field of the dataclass"
                    ),
                ))
    return findings
