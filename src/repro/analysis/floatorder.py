"""FLOAT-ORDER: no order-sensitive float accumulation in timing paths.

Float addition is not associative: ``sum()`` over an iterable whose
order is not part of the program's contract (a set — hash-order; dict
views — insertion-order) produces results that can differ in the last
bits between two runs that are *supposed* to be byte-identical. Cycle
counts are integers and safe; the energy/utilization paths are floats,
and a reordered reduction there breaks the differential guarantees
(serial == parallel == cached, cycle == vector) at the rounding margin
— the worst kind of flake.

The pass flags ``sum()`` whose iterable is

- a set display / ``set()`` / ``frozenset()`` / set comprehension, or a
  comprehension iterating one (hash-order: varies per process), or
- a ``.values()`` / ``.items()`` view, or a comprehension iterating one
  (insertion-order: a contract no caller actually committed to).

Sanctioned alternatives are never flagged: ``math.fsum`` (order-
independent — it returns the correctly rounded exact sum) and
``sum(sorted(...))``. Integer reductions over dict views do exist; they
are order-safe and carry an annotated suppression instead.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.core import Finding, Project, Rule, register_pass

#: the packages whose numeric results must be order-independent
SCOPE_PACKAGES = ("repro.engine", "repro.noc", "repro.memory")

RULES = (
    Rule(
        id="FLOAT-SET",
        summary="sum() over a hash-ordered (set) iterable",
        rationale=(
            "set iteration order depends on the hash seed; float "
            "addition is not associative, so the same run can produce "
            "different last bits per process"
        ),
    ),
    Rule(
        id="FLOAT-DICT",
        summary="sum() over an insertion-ordered dict view",
        rationale=(
            "the total silently depends on the order the dict was "
            "built in; use math.fsum (order-independent, correctly "
            "rounded) or sum over sorted items"
        ),
    ),
)


def _is_set_ish(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_dict_view(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("values", "items")
        and not node.args
    )


def _is_sorted(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


def _classify(iterable: ast.expr) -> Optional[str]:
    """Rule id the iterable violates, or None when order-safe."""
    if _is_sorted(iterable):
        return None
    if _is_set_ish(iterable):
        return "FLOAT-SET"
    if _is_dict_view(iterable):
        return "FLOAT-DICT"
    if isinstance(iterable, (ast.GeneratorExp, ast.ListComp)):
        source = iterable.generators[0].iter
        if _is_sorted(source):
            return None
        if _is_set_ish(source):
            return "FLOAT-SET"
        if _is_dict_view(source):
            return "FLOAT-DICT"
    return None


@register_pass(
    "FLOAT-ORDER",
    "no sum() over hash-ordered or insertion-ordered iterables in the "
    "timing/energy packages (math.fsum and sorted() are sanctioned)",
    RULES,
)
def run(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for file in project.in_packages(*SCOPE_PACKAGES):
        if file.tree is None:
            continue
        for node in ast.walk(file.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
            ):
                continue
            rule = _classify(node.args[0])
            if rule is None:
                continue
            what = (
                "a hash-ordered set" if rule == "FLOAT-SET"
                else "an insertion-ordered dict view"
            )
            findings.append(Finding(
                rule=rule, path=file.relpath, line=node.lineno,
                message=(
                    f"sum() over {what}: float accumulation here is "
                    "order-sensitive; use math.fsum(...) or sum over "
                    "sorted(...)"
                ),
            ))
    return findings
