"""EXC: exception-handling discipline.

A simulator whose value is *trustworthy numbers* must never swallow its
own inconsistencies. Bare and overbroad handlers convert
:class:`~repro.errors.SimulationError` — "a component model is wrong" —
into silently-continuing runs, and generic ``raise Exception`` robs
callers of the one catchable base class (:class:`StonneError`) the
library promises.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import Finding, Project, Rule, register_pass

#: exception classes too generic to raise from library code
_GENERIC_RAISES = frozenset({"Exception", "BaseException", "RuntimeError"})

#: handler types that catch everything
_BROAD_HANDLERS = frozenset({"Exception", "BaseException"})

RULES = (
    Rule(
        id="EXC-BARE",
        summary="bare 'except:' clause",
        rationale=(
            "catches SystemExit/KeyboardInterrupt and every simulator "
            "inconsistency alike; name the exceptions the code can "
            "actually handle"
        ),
    ),
    Rule(
        id="EXC-BROAD",
        summary="overbroad 'except Exception' handler",
        rationale=(
            "swallows SimulationError and friends, letting a buggy "
            "component model keep producing numbers; catch the typed "
            "repro.errors classes, or suppress with a reason where "
            "best-effort really is intended"
        ),
    ),
    Rule(
        id="EXC-TYPE",
        summary="raises a generic exception instead of a repro.errors type",
        rationale=(
            "callers are promised one catchable base class (StonneError); "
            "raise ConfigurationError / MappingError / SimulationError / "
            "ApiError so errors stay typed"
        ),
    ),
)


def _handler_names(handler_type: ast.expr) -> List[str]:
    if isinstance(handler_type, ast.Tuple):
        nodes = handler_type.elts
    else:
        nodes = [handler_type]
    names = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


@register_pass(
    "EXC",
    "no bare/overbroad handlers; simulator errors derive from repro.errors",
    RULES,
)
def run(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for file in project.files:
        if file.tree is None:
            continue
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    findings.append(Finding(
                        rule="EXC-BARE", path=file.relpath, line=node.lineno,
                        message="bare 'except:' catches everything, "
                                "including KeyboardInterrupt",
                    ))
                    continue
                broad = [
                    name for name in _handler_names(node.type)
                    if name in _BROAD_HANDLERS
                ]
                if broad:
                    findings.append(Finding(
                        rule="EXC-BROAD", path=file.relpath, line=node.lineno,
                        message=(
                            f"'except {', '.join(broad)}' swallows typed "
                            "simulator errors; catch repro.errors classes"
                        ),
                    ))
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                target = exc.func if isinstance(exc, ast.Call) else exc
                name = (
                    target.id if isinstance(target, ast.Name)
                    else target.attr if isinstance(target, ast.Attribute)
                    else None
                )
                if name in _GENERIC_RAISES:
                    findings.append(Finding(
                        rule="EXC-TYPE", path=file.relpath, line=node.lineno,
                        message=(
                            f"raises {name}; use a repro.errors class so "
                            "callers can catch StonneError"
                        ),
                    ))
    return findings
