"""COUNTER: activity counters must be declared before use.

:class:`~repro.noc.base.CounterSet` creates counters lazily, which keeps
components decoupled but means a typo'd increment (``gb_wrties``) or a
read of a never-incremented name silently yields zero — and the insight
/ bottleneck-attribution layer then divides by a phantom counter. The
declared universe lives in ``repro.engine.stats.KNOWN_COUNTERS``; this
pass checks every literal counter increment and read against it, and
that no declared counter is dead.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    register_pass,
)

#: module declaring the counter universe
STATS_MODULE = "repro.engine.stats"
REGISTRY_NAME = "KNOWN_COUNTERS"

RULES = (
    Rule(
        id="COUNTER-UNDECLARED",
        summary="increments an activity counter not in KNOWN_COUNTERS",
        rationale=(
            "CounterSet creates counters lazily, so a typo becomes a new "
            "counter the energy model prices at zero; declare the name in "
            "repro.engine.stats.KNOWN_COUNTERS first"
        ),
    ),
    Rule(
        id="COUNTER-READ",
        summary="reads an activity counter not in KNOWN_COUNTERS",
        rationale=(
            "reading an undeclared counter silently returns 0 — the "
            "insight/attribution layer would divide by a phantom"
        ),
    ),
    Rule(
        id="COUNTER-DEAD",
        summary="declared counter never referenced outside the registry",
        rationale=(
            "a dead registry entry suggests the counter was renamed "
            "without updating KNOWN_COUNTERS — the same hazard from the "
            "other side"
        ),
    ),
    Rule(
        id="COUNTER-MISSING",
        summary="KNOWN_COUNTERS registry not found",
        rationale=(
            "without the declared universe in repro.engine.stats none of "
            "the counter rules can be checked"
        ),
    ),
)


def _registry(
    project: Project,
) -> Tuple[Optional[Dict[str, str]], str, int, int]:
    """(registry dict, file, first line, last line) of KNOWN_COUNTERS."""
    stats = project.module(STATS_MODULE)
    if stats is None or stats.tree is None:
        return None, "", 0, 0
    for node in stats.tree.body:
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == REGISTRY_NAME:
                span = (node.lineno, node.end_lineno or node.lineno)
                try:
                    value = ast.literal_eval(node.value)
                except ValueError:
                    return None, stats.relpath, *span
                if isinstance(value, dict):
                    return value, stats.relpath, *span
                return None, stats.relpath, *span
    return None, stats.relpath, 1, 1


def _is_counter_receiver(receiver: ast.expr) -> bool:
    """Heuristic: the object whose ``.add``/``.get`` names a counter.

    Matches ``counters``, ``self.counters``, ``self.gb.counters`` and the
    merged-set idiom (a local named ``merged``); plain dicts like
    ``config`` or ``params`` do not match.
    """
    text = ast.unparse(receiver)
    tail = text.rsplit(".", 1)[-1]
    return "counter" in tail.lower() or tail == "merged"


@register_pass(
    "COUNTER",
    "every activity counter incremented or read is declared in "
    "repro.engine.stats.KNOWN_COUNTERS",
    RULES,
)
def run(project: Project) -> List[Finding]:
    stats = project.module(STATS_MODULE)
    if stats is None:
        return []  # nothing to check outside the simulator tree
    declared, registry_path, registry_line, registry_end = _registry(project)
    if declared is None:
        return [Finding(
            rule="COUNTER-MISSING", path=registry_path or stats.relpath,
            line=registry_line or 1,
            message=(
                f"{REGISTRY_NAME} must be a module-level dict literal "
                "mapping counter name -> description"
            ),
        )]

    findings: List[Finding] = []
    referenced: Set[str] = set()

    for file in project.files:
        if file.tree is None:
            continue
        in_registry_module = file.module == STATS_MODULE
        for node in ast.walk(file.tree):
            # class-level `*_counter = "name"` declarations count as use
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
                and any(
                    isinstance(t, ast.Name) and t.id.endswith("_counter")
                    for t in node.targets
                )
            ):
                name = node.value.value
                referenced.add(name)
                if name not in declared:
                    findings.append(Finding(
                        rule="COUNTER-UNDECLARED", path=file.relpath,
                        line=node.lineno,
                        message=(
                            f"counter name {name!r} bound for later "
                            "increments is not declared in KNOWN_COUNTERS"
                        ),
                    ))
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if not _is_counter_receiver(func.value):
                continue
            literal = (
                node.args[0].value
                if node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                else None
            )
            if literal is None:
                continue
            if func.attr == "add":
                referenced.add(literal)
                if literal not in declared:
                    findings.append(Finding(
                        rule="COUNTER-UNDECLARED", path=file.relpath,
                        line=node.lineno,
                        message=(
                            f"increments undeclared counter {literal!r}; "
                            "declare it in KNOWN_COUNTERS"
                        ),
                    ))
            elif func.attr == "get":
                referenced.add(literal)
                if literal not in declared and not in_registry_module:
                    findings.append(Finding(
                        rule="COUNTER-READ", path=file.relpath,
                        line=node.lineno,
                        message=(
                            f"reads undeclared counter {literal!r} "
                            "(would silently be 0)"
                        ),
                    ))

    # a declared counter must appear as a literal somewhere outside the
    # registry assignment itself (increment site, energy table, read, ...)
    mentioned: Set[str] = set(referenced)
    for file in project.files:
        if file.tree is None:
            continue
        for node in ast.walk(file.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in declared
            ):
                if (
                    file.module == STATS_MODULE
                    and registry_line
                    <= getattr(node, "lineno", 0)
                    <= registry_end
                ):
                    continue  # the registry literal itself
                mentioned.add(node.value)
    for name in sorted(set(declared) - mentioned):
        findings.append(Finding(
            rule="COUNTER-DEAD", path=registry_path, line=registry_line,
            message=(
                f"counter {name!r} is declared but never incremented or "
                "read anywhere"
            ),
        ))
    return findings
