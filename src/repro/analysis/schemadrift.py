"""SCHEMA-DRIFT: persisted payload keys match the committed manifest.

Registry payloads are the repo's only durable artifact: regression
baselines, ``insight`` analyses and (per ROADMAP item 2) future learned
surrogates all read them back, possibly years after the run. The shape
of what :meth:`RunRecord.from_report` persists is therefore versioned
(``SCHEMA_VERSION``) with an append-only ``REGISTRY_SCHEMA_MANIFEST``
recording the top-level payload keys and per-layer row keys of every
version ever shipped.

This pass re-derives the *current* key sets straight from the AST —
the ``payload`` dict literal and its ``payload[...] = `` stores in
``from_report``, plus the per-layer row seeded from
``LayerReport.to_payload`` (cross-module) with its ``row.pop(...)`` /
``row[...] = `` edits — and diffs them against the manifest entry for
``SCHEMA_VERSION``. Changing what gets persisted without bumping the
version and appending a manifest entry is a finding before it can
corrupt a single store.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    SourceFile,
    literal_assignment,
    register_pass,
)

REGISTRY_MODULE = "repro.observability.registry"
STATS_MODULE = "repro.engine.stats"

RULES = (
    Rule(
        id="SCHEMA-DRIFT",
        summary="persisted payload keys changed without a schema bump",
        rationale=(
            "stored records outlive the code that wrote them; a key "
            "added or dropped under an unchanged SCHEMA_VERSION makes "
            "old and new payloads indistinguishable to every reader"
        ),
    ),
    Rule(
        id="SCHEMA-VERSION",
        summary="schema version / manifest inconsistency",
        rationale=(
            "the manifest is append-only history: the current "
            "SCHEMA_VERSION must have an entry and must be the newest"
        ),
    ),
)


def _assignment_line(tree: ast.AST, name: str) -> int:
    for node in getattr(tree, "body", []):
        targets = (
            node.targets if isinstance(node, ast.Assign)
            else [node.target] if isinstance(node, ast.AnnAssign)
            else []
        )
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                return node.lineno
    return 1


def _find_function(tree: ast.AST, name: str) -> Optional[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _dict_literal_keys(node: ast.Dict) -> Set[str]:
    return {
        key.value for key in node.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }


def _layer_payload_keys(stats: Optional[SourceFile]) -> Set[str]:
    """Keys of the dict literal ``LayerReport.to_payload`` returns."""
    if stats is None or stats.tree is None:
        return set()
    fn = _find_function(stats.tree, "to_payload")
    if fn is None:
        return set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            return _dict_literal_keys(node.value)
    return set()


def _persisted_keys(
    from_report: ast.FunctionDef, layer_seed: Set[str]
) -> Tuple[Set[str], Set[str], int]:
    """(payload keys, per-layer row keys, payload line) from the AST.

    The payload variable is whichever name is assigned a dict literal
    containing a ``"schema"`` key; the row variable is whichever name is
    assigned from a ``*.to_payload()`` call.
    """
    payload_var: Optional[str] = None
    payload_keys: Set[str] = set()
    payload_line = from_report.lineno
    row_var: Optional[str] = None
    row_keys: Set[str] = set(layer_seed)

    for node in ast.walk(from_report):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            target = node.targets[0].id
            value = node.value
            if isinstance(value, ast.Dict):
                keys = _dict_literal_keys(value)
                if "schema" in keys:
                    payload_var = target
                    payload_keys |= keys
                    payload_line = node.lineno
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "to_payload"
            ):
                row_var = target

    for node in ast.walk(from_report):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    if target.value.id == payload_var:
                        payload_keys.add(target.slice.value)
                    elif target.value.id == row_var:
                        row_keys.add(target.slice.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == row_var
            and node.args
            and isinstance(node.args[0], ast.Constant)
        ):
            row_keys.discard(str(node.args[0].value))
    return payload_keys, row_keys, payload_line


def _diff(kind: str, actual: Set[str], declared: Set[str]) -> str:
    added = sorted(actual - declared)
    removed = sorted(declared - actual)
    parts = []
    if added:
        parts.append(f"persists undeclared {kind} key(s) {added}")
    if removed:
        parts.append(f"no longer persists declared {kind} key(s) {removed}")
    return "; ".join(parts)


@register_pass(
    "SCHEMA-DRIFT",
    "the registry's persisted payload/layer keys (extracted from the "
    "AST) match the committed manifest for the current SCHEMA_VERSION",
    RULES,
)
def run(project: Project) -> List[Finding]:
    registry = project.module(REGISTRY_MODULE)
    if registry is None or registry.tree is None:
        return []
    findings: List[Finding] = []

    version = literal_assignment(registry.tree, "SCHEMA_VERSION")
    manifest = literal_assignment(registry.tree, "REGISTRY_SCHEMA_MANIFEST")
    version_line = _assignment_line(registry.tree, "SCHEMA_VERSION")
    if not isinstance(version, int) or not isinstance(manifest, dict):
        findings.append(Finding(
            rule="SCHEMA-VERSION", path=registry.relpath, line=version_line,
            message=(
                "registry must declare SCHEMA_VERSION (int literal) and "
                "REGISTRY_SCHEMA_MANIFEST (dict literal)"
            ),
        ))
        return findings
    if version not in manifest:
        findings.append(Finding(
            rule="SCHEMA-VERSION", path=registry.relpath, line=version_line,
            message=(
                f"REGISTRY_SCHEMA_MANIFEST has no entry for the current "
                f"SCHEMA_VERSION {version}"
            ),
        ))
        return findings
    if max(manifest) != version:
        findings.append(Finding(
            rule="SCHEMA-VERSION", path=registry.relpath, line=version_line,
            message=(
                f"manifest records version {max(manifest)} newer than "
                f"SCHEMA_VERSION {version}; the manifest is append-only "
                "history and the current version must be the newest"
            ),
        ))

    from_report = _find_function(registry.tree, "from_report")
    if from_report is None:
        return findings
    layer_seed = _layer_payload_keys(project.module(STATS_MODULE))
    payload_keys, row_keys, payload_line = _persisted_keys(
        from_report, layer_seed
    )
    declared = manifest[version]
    declared_payload = set(declared.get("payload", []))
    declared_layer = set(declared.get("layer", []))

    if payload_keys and payload_keys != declared_payload:
        findings.append(Finding(
            rule="SCHEMA-DRIFT", path=registry.relpath, line=payload_line,
            message=(
                f"from_report {_diff('payload', payload_keys, declared_payload)} "
                f"under unchanged SCHEMA_VERSION {version}; bump the "
                "version and append a manifest entry"
            ),
        ))
    if row_keys and layer_seed and row_keys != declared_layer:
        findings.append(Finding(
            rule="SCHEMA-DRIFT", path=registry.relpath,
            line=from_report.lineno,
            message=(
                f"from_report {_diff('layer', row_keys, declared_layer)} "
                f"under unchanged SCHEMA_VERSION {version}; bump the "
                "version and append a manifest entry"
            ),
        ))
    return findings
