"""``stonne lint``: static-analysis passes enforcing simulator invariants.

The guarantees the simulator advertises — serial == parallel == cached
byte-identical results, content-addressed cache keys, counters the
insight layer can trust — hold only while every source file keeps a set
of easy-to-break invariants. This package checks them at rest, on the
AST, so a violation fails ``make lint`` instead of silently corrupting
results months later:

- :mod:`repro.analysis.determinism` (``DET-*``) — no unseeded RNG, no
  wall-clock reads from cycle-level code, no iteration-order
  nondeterminism in cycle loops or key construction;
- :mod:`repro.analysis.cachekey` (``CACHE-KEY-*``) — every config
  dataclass field is either covered by the :class:`SimCache` canonical
  key or explicitly exempted in the in-code manifest;
- :mod:`repro.analysis.parsafe` (``PAR-*``) — nothing reachable from the
  parallel worker entry points writes module-level state or opens the
  run registry;
- :mod:`repro.analysis.exceptions` (``EXC-*``) — no bare/overbroad
  handlers, simulator errors derive from :mod:`repro.errors`;
- :mod:`repro.analysis.counters` (``COUNTER-*``) — every activity
  counter incremented or read anywhere is declared in
  ``repro.engine.stats.KNOWN_COUNTERS``.

Run with ``stonne lint`` or ``python -m repro.analysis.lint``; suppress
an individual finding with ``# stonne: lint-ok[<RULE-ID>] reason`` (the
reason is mandatory). See ``docs/STATIC_ANALYSIS.md``.
"""

from repro.analysis.core import (
    Finding,
    LintPass,
    Project,
    Rule,
    SourceFile,
    all_passes,
    all_rules,
    register_pass,
)
__all__ = [
    "Finding",
    "LintPass",
    "LintResult",
    "Project",
    "Rule",
    "SourceFile",
    "all_passes",
    "all_rules",
    "register_pass",
    "run_lint",
]


def __getattr__(name):
    # lazy so `python -m repro.analysis.lint` does not import the driver
    # twice (once as repro.analysis.lint, once via this package)
    if name in ("LintResult", "run_lint"):
        from repro.analysis import lint

        return getattr(lint, name)
    raise AttributeError(name)
