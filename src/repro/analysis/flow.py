"""Shared interprocedural engine for the flow-sensitive lint passes.

This generalizes the call-graph machinery that ``parsafe.py`` grew for
worker-safety into a reusable :class:`CallGraph`: every function/method
in the project becomes a :class:`FunctionNode` carrying its resolved
call edges, its unresolved method-call names, and the raw
:class:`CallSite` records the effect analyses consume. On top of the
graph the module offers

- forward/backward reachability with one witness chain per reached
  function (the parsafe idiom, now shared by PAR-SAFE and LEDGER), and
- :func:`mutated_params` — a fixpoint over per-function effect
  summaries answering "which of its parameters may this function
  mutate?", used by OBS-NEUTRAL to prove observability code never
  writes engine state.

Resolution is deliberately over-approximate: an attribute call whose
receiver type is unknown fans out to *every* project method of that
name. That bias is the right one for safety passes — a missed edge
hides a violation, a spurious edge at worst costs an annotated
suppression.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    Project,
    SourceFile,
    import_aliases,
    resolve_call_name,
)

#: method calls that mutate a built-in container in place
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "appendleft", "sort",
})


def root_name(node: ast.expr) -> Optional[str]:
    """Root ``Name`` of an attribute/subscript chain (``a.b[0].c`` → a)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass
class CallSite:
    """One call expression inside a function body."""

    name: str                      # the called name as written (tail attr)
    lineno: int
    qualname: Optional[str] = None  # resolved module:func / module:C.m
    dotted: Optional[str] = None    # import-resolved dotted name, if any
    receiver: Optional[str] = None  # root name of the receiver chain
    args: List[Optional[str]] = field(default_factory=list)


@dataclass
class FunctionNode:
    """One function/method and everything the analyses need from it."""

    qualname: str              # module:func or module:Class.method
    module: str
    file: SourceFile
    node: ast.AST
    class_name: Optional[str] = None
    params: List[str] = field(default_factory=list)
    calls: Set[str] = field(default_factory=set)          # resolved quals
    method_calls: Set[str] = field(default_factory=set)   # unresolved attrs
    call_sites: List[CallSite] = field(default_factory=list)
    instantiations: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def short(self) -> str:
        return self.qualname.split(":", 1)[1]

    def calls_name(self, name: str) -> bool:
        """Does the body contain a call to ``name`` (any receiver)?"""
        return any(site.name == name for site in self.call_sites)


class CallGraph:
    """Project-wide function index plus resolved call edges."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.functions: Dict[str, FunctionNode] = {}
        self.by_method_name: Dict[str, List[str]] = {}
        self.classes: Dict[str, Dict[str, str]] = {}  # class → method → qual
        self.class_modules: Dict[str, str] = {}
        self.class_bases: Dict[str, List[str]] = {}
        self.module_aliases: Dict[str, Dict[str, str]] = {}
        self.module_level_names: Dict[str, Set[str]] = {}
        self.project_modules: Set[str] = {f.module for f in project.files}
        self._index(project)
        for info in self.functions.values():
            self._extract_calls(info)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _index(self, project: Project) -> None:
        for file in project.files:
            if file.tree is None:
                continue
            module = file.module
            self.module_aliases[module] = import_aliases(file.tree)
            self.module_level_names[module] = _module_level_names(file.tree)
            for node in file.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{module}:{node.name}"
                    self.functions[qual] = FunctionNode(
                        qualname=qual, module=module, file=file, node=node,
                        params=_param_names(node),
                    )
                elif isinstance(node, ast.ClassDef):
                    methods: Dict[str, str] = {}
                    self.class_modules[node.name] = module
                    self.class_bases[node.name] = [
                        base.id if isinstance(base, ast.Name) else base.attr
                        for base in node.bases
                        if isinstance(base, (ast.Name, ast.Attribute))
                    ]
                    for item in node.body:
                        if isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            qual = f"{module}:{node.name}.{item.name}"
                            self.functions[qual] = FunctionNode(
                                qualname=qual, module=module, file=file,
                                node=item, class_name=node.name,
                                params=_param_names(item),
                            )
                            methods[item.name] = qual
                            self.by_method_name.setdefault(
                                item.name, []
                            ).append(qual)
                    self.classes[node.name] = methods

    def resolve_class_method(
        self, class_name: str, method: str
    ) -> Optional[str]:
        """Look a method up on the class, then up its known base chain."""
        seen: Set[str] = set()
        stack = [class_name]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            methods = self.classes.get(current)
            if methods and method in methods:
                return methods[method]
            stack.extend(self.class_bases.get(current, []))
        return None

    def _extract_calls(self, info: FunctionNode) -> None:
        aliases = self.module_aliases.get(info.module, {})
        known_classes = set(self.classes)
        local_types = _local_types(info.node, known_classes)

        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            dotted = resolve_call_name(func, aliases)
            site = CallSite(
                name=(
                    func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name)
                    else ast.unparse(func)
                ),
                lineno=node.lineno,
                dotted=dotted,
                receiver=(
                    root_name(func.value)
                    if isinstance(func, ast.Attribute) else None
                ),
                args=[root_name(arg) for arg in node.args],
            )
            info.call_sites.append(site)

            if isinstance(func, ast.Name):
                # class instantiation → the __init__ edge
                target_class = None
                if func.id in known_classes:
                    target_class = func.id
                else:
                    imported = aliases.get(func.id, "")
                    tail = imported.rsplit(".", 1)[-1] if imported else ""
                    if tail in known_classes:
                        target_class = tail
                if target_class is not None:
                    info.instantiations.append((target_class, node.lineno))
                    init = self.resolve_class_method(target_class, "__init__")
                    if init:
                        info.calls.add(init)
                        site.qualname = init
                    continue
                # same-module function, or an imported project function
                qual = f"{info.module}:{func.id}"
                if qual in self.functions:
                    info.calls.add(qual)
                    site.qualname = qual
                else:
                    imported = aliases.get(func.id)
                    if imported and "." in imported:
                        mod, _, name = imported.rpartition(".")
                        if mod in self.project_modules:
                            target = f"{mod}:{name}"
                            if target in self.functions:
                                info.calls.add(target)
                                site.qualname = target
                continue
            if not isinstance(func, ast.Attribute):
                continue

            receiver = func.value
            resolved = False
            if (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super"
            ):
                # super().method() dispatches up the known base chain —
                # never fan out to every same-named method in the project
                if info.class_name is not None:
                    for base in self.class_bases.get(info.class_name, []):
                        target = self.resolve_class_method(base, func.attr)
                        if target:
                            info.calls.add(target)
                            site.qualname = target
                            break
                resolved = True
            if isinstance(receiver, ast.Name):
                # precise: variable of known class, or known class itself
                class_name = local_types.get(receiver.id)
                if class_name is None:
                    candidate = receiver.id
                    if candidate not in known_classes:
                        imported = aliases.get(candidate, "")
                        candidate = (
                            imported.rsplit(".", 1)[-1] if imported else ""
                        )
                    if candidate in known_classes:
                        class_name = candidate
                if class_name is not None:
                    target = self.resolve_class_method(class_name, func.attr)
                    if target:
                        info.calls.add(target)
                        site.qualname = target
                    resolved = True
                elif dotted is not None:
                    mod, _, name = dotted.rpartition(".")
                    if mod in self.project_modules:
                        target = f"{mod}:{name}"
                        if target in self.functions:
                            info.calls.add(target)
                            site.qualname = target
                        resolved = True
            if isinstance(receiver, ast.Name) and receiver.id == "self" \
                    and info.class_name is not None:
                target = self.resolve_class_method(info.class_name, func.attr)
                if target:
                    info.calls.add(target)
                    site.qualname = target
                resolved = True
            if not resolved:
                info.method_calls.add(func.attr)

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------
    def callees(self, qual: str, fan_out: bool = True) -> Set[str]:
        """Resolved targets, plus the same-name fan-out when requested."""
        info = self.functions.get(qual)
        if info is None:
            return set()
        targets = set(info.calls)
        if fan_out:
            for method in info.method_calls:
                targets.update(self.by_method_name.get(method, []))
        return {t for t in targets if t in self.functions}

    def reachable(
        self, entries: Iterable[str], fan_out: bool = True
    ) -> Dict[str, List[str]]:
        """BFS closure of ``entries`` with one witness chain per function."""
        reached: Dict[str, List[str]] = {}
        queue: List[str] = []
        for entry in entries:
            if entry in self.functions and entry not in reached:
                reached[entry] = [entry]
                queue.append(entry)
        while queue:
            current = queue.pop(0)
            for target in sorted(self.callees(current, fan_out=fan_out)):
                if target in reached:
                    continue
                reached[target] = reached[current] + [target]
                queue.append(target)
        return reached

    def callers(self, fan_out: bool = True) -> Dict[str, Set[str]]:
        """Inverted edge map: callee qualname → set of caller qualnames."""
        inverse: Dict[str, Set[str]] = {}
        for qual in self.functions:
            for target in self.callees(qual, fan_out=fan_out):
                inverse.setdefault(target, set()).add(qual)
        return inverse

    def caller_chain(
        self,
        qual: str,
        inverse: Optional[Dict[str, Set[str]]] = None,
        limit: int = 6,
    ) -> List[str]:
        """One outermost-caller witness chain ending at ``qual``."""
        if inverse is None:
            inverse = self.callers()
        chain = [qual]
        seen = {qual}
        while len(chain) < limit:
            callers = sorted(inverse.get(chain[0], set()) - seen)
            if not callers:
                break
            chain.insert(0, callers[0])
            seen.add(callers[0])
        return chain


def format_chain(graph: CallGraph, chain: Sequence[str]) -> str:
    """Human witness: ``f -> g -> h`` using short (module-free) names."""
    return " -> ".join(
        graph.functions[q].short if q in graph.functions else q
        for q in chain
    )


# ----------------------------------------------------------------------
# effect summaries: which parameters may a function mutate?
# ----------------------------------------------------------------------
def mutated_params(
    graph: CallGraph,
    mutators: frozenset = MUTATOR_METHODS,
) -> Dict[str, Set[int]]:
    """Fixpoint map qualname → indices of parameters it may mutate.

    A parameter is "mutated" when the function (or anything it calls
    with that parameter as an argument) stores to an attribute or
    subscript reachable from it, deletes part of it, or invokes an
    in-place container mutator on it. Aliases through plain assignment,
    attribute/subscript access, iteration, and tuple unpacking are
    followed; call *results* are deliberately not tainted — a value
    returned by a callee is a fresh object as far as this analysis can
    tell, and tainting it would drown the signal.
    """
    local: Dict[str, Set[int]] = {}
    for qual, info in graph.functions.items():
        local[qual] = _local_mutations(info, mutators)

    summary = {qual: set(muts) for qual, muts in local.items()}
    changed = True
    while changed:
        changed = False
        for qual, info in graph.functions.items():
            taint = _taint_map(info)
            for site in info.call_sites:
                if site.qualname is None:
                    continue
                callee = summary.get(site.qualname, set())
                if not callee:
                    continue
                callee_info = graph.functions[site.qualname]
                offset = 1 if callee_info.class_name is not None else 0
                # receiver of a mutating method call is its param 0
                if offset and 0 in callee and site.receiver is not None:
                    for index in taint.get(site.receiver, ()):
                        if index not in summary[qual]:
                            summary[qual].add(index)
                            changed = True
                for position, arg_root in enumerate(site.args):
                    if arg_root is None:
                        continue
                    if position + offset not in callee:
                        continue
                    for index in taint.get(arg_root, ()):
                        if index not in summary[qual]:
                            summary[qual].add(index)
                            changed = True
    return summary


def _local_mutations(
    info: FunctionNode, mutators: frozenset
) -> Set[int]:
    taint = _taint_map(info)
    mutated: Set[int] = set()

    def mark(expr: ast.expr) -> None:
        # a bare-name rebind is not a mutation; stores *into* the value
        # (attribute/subscript) are
        if not isinstance(expr, (ast.Attribute, ast.Subscript)):
            return
        root = root_name(expr)
        if root is not None:
            mutated.update(taint.get(root, ()))

    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                mark(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            mark(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                mark(target)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in mutators:
                root = root_name(func.value)
                if root is not None:
                    mutated.update(taint.get(root, ()))
    return mutated


def _taint_map(info: FunctionNode) -> Dict[str, Set[int]]:
    """Local name → parameter indices it may alias."""
    taint: Dict[str, Set[int]] = {
        name: {index} for index, name in enumerate(info.params)
    }

    def roots_of(expr: ast.expr) -> Set[int]:
        root = root_name(expr)
        if root is None:
            return set()
        return set(taint.get(root, ()))

    def bind(target: ast.expr, sources: Set[int]) -> None:
        if isinstance(target, ast.Name):
            if sources:
                taint.setdefault(target.id, set()).update(sources)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind(element, sources)

    # two sweeps so aliases-of-aliases settle regardless of source order
    for _ in range(2):
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign):
                sources = roots_of(node.value)
                for target in node.targets:
                    bind(target, sources)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                bind(node.target, roots_of(node.value))
            elif isinstance(node, ast.For):
                bind(node.target, roots_of(node.iter))
            elif isinstance(node, ast.withitem) and node.optional_vars:
                bind(node.optional_vars, roots_of(node.context_expr))
    return taint


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def _param_names(node: ast.AST) -> List[str]:
    args = getattr(node, "args", None)
    if args is None:
        return []
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if args.vararg:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _module_level_names(tree: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in getattr(tree, "body", []):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return names


def _local_types(node: ast.AST, known_classes: Set[str]) -> Dict[str, str]:
    """variable name → class name, for ``x = ClassName(...)`` assignments."""
    types: Dict[str, str] = {}
    for statement in ast.walk(node):
        if not isinstance(statement, ast.Assign):
            continue
        value = statement.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in known_classes
        ):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    types[target.id] = value.func.id
    return types
