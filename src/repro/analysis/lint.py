"""The ``stonne lint`` driver.

Runs every registered pass over a file set, applies the inline
suppressions, and reports in text or JSON. Exit status: 0 when clean,
1 when findings remain, 2 on usage errors — so ``make lint`` and the CI
``static-analysis`` job gate directly on the command.

Usage::

    stonne lint [paths...] [--format text|json] [--select RULE,...]
    python -m repro.analysis.lint src/repro
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.core import (
    Finding,
    Project,
    all_passes,
    all_rules,
)

#: bump when the JSON report layout changes
#: (2: optional top-level "baseline" diff block when --baseline is given)
REPORT_SCHEMA_VERSION = 2


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding]
    suppressed: List[Finding]
    files: int
    passes: List[str] = field(default_factory=list)
    baseline: Optional[Dict[str, object]] = None

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def gate(self) -> bool:
        """Should the run exit non-zero? Against a baseline, only *new*
        findings gate — the ratchet mode CI uses to adopt a pass on a
        tree with known findings without hard-blocking on day one."""
        if self.baseline is not None:
            return bool(self.baseline["new"])
        return not self.clean

    def as_dict(self) -> Dict[str, object]:
        by_rule: Dict[str, int] = {}
        for finding in self.findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        report: Dict[str, object] = {
            "schema": REPORT_SCHEMA_VERSION,
            "tool": "stonne-lint",
            "passes": list(self.passes),
            "files": self.files,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "summary": {
                "total": len(self.findings),
                "suppressed": len(self.suppressed),
                "by_rule": dict(sorted(by_rule.items())),
            },
        }
        if self.baseline is not None:
            report["baseline"] = dict(self.baseline)
        return report


def _driver_findings(project: Project, known_rules) -> List[Finding]:
    """Syntax errors plus suppression hygiene (reason required)."""
    findings: List[Finding] = []
    for file in project.files:
        if file.syntax_error is not None:
            findings.append(Finding(
                rule="LINT-SYNTAX", path=file.relpath, line=1,
                message=f"cannot parse: {file.syntax_error}",
            ))
        for suppression in file.suppressions:
            if not suppression.reason:
                findings.append(Finding(
                    rule="LINT-REASON", path=file.relpath,
                    line=suppression.comment_line,
                    message=(
                        f"lint-ok[{suppression.rule}] has no reason; write "
                        "# stonne: lint-ok[<RULE-ID>] why this is fine"
                    ),
                ))
            known = suppression.rule in known_rules or any(
                rule_id.startswith(suppression.rule + "-")
                for rule_id in known_rules
            )
            if not known:
                findings.append(Finding(
                    rule="LINT-UNKNOWN", path=file.relpath,
                    line=suppression.comment_line,
                    message=(
                        f"lint-ok[{suppression.rule}] names no known rule "
                        "or rule family"
                    ),
                ))
    return findings


def run_lint(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Run all (or the selected) passes over ``paths``."""
    project = Project.from_paths([Path(p) for p in paths])
    passes = all_passes()
    known_rules = all_rules()
    if select:
        wanted = set(select)
        passes = {
            name: p for name, p in passes.items()
            if name in wanted or any(r.id in wanted for r in p.rules)
        }

    raw: List[Finding] = _driver_findings(project, known_rules)
    for lint_pass in passes.values():
        raw.extend(lint_pass.run(project))
    if select:
        wanted = set(select)
        # a selection matches a finding through its exact rule id, a
        # family prefix (EXC covers EXC-BROAD), or the emitting pass name
        selected_rules = {
            rule.id for p in passes.values() if p.name in wanted
            for rule in p.rules
        }
        raw = [
            f for f in raw
            if f.rule in wanted
            or f.rule in selected_rules
            or any(f.rule.startswith(token + "-") for token in wanted)
            or f.rule.startswith("LINT-")
        ]

    by_path = {file.relpath: file for file in project.files}
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    used: set = set()
    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule)):
        file = by_path.get(finding.path)
        is_suppressed = False
        if file is not None and not finding.rule.startswith("LINT-"):
            for suppression in file.suppressions_for(finding.line):
                if suppression.matches(finding.rule) and suppression.reason:
                    is_suppressed = True
                    used.add((finding.path, suppression.comment_line))
                    break
        (suppressed if is_suppressed else findings).append(finding)

    # suppression hygiene: a lint-ok that silenced nothing is stale.
    # Only judged on unrestricted runs — under --select the unselected
    # passes never ran, so their suppressions legitimately match nothing.
    if not select:
        known_rules_ids = set(known_rules)
        for file in project.files:
            for suppression in file.suppressions:
                if (file.relpath, suppression.comment_line) in used:
                    continue
                if not suppression.reason:
                    continue  # already LINT-REASON
                known = suppression.rule in known_rules_ids or any(
                    rule_id.startswith(suppression.rule + "-")
                    for rule_id in known_rules_ids
                )
                if not known:
                    continue  # already LINT-UNKNOWN
                findings.append(Finding(
                    rule="LINT-UNUSED", path=file.relpath,
                    line=suppression.comment_line,
                    message=(
                        f"lint-ok[{suppression.rule}] matches no finding; "
                        "the violation it excused is gone — delete the "
                        "comment"
                    ),
                ))
        findings.sort(key=lambda f: (f.path, f.line, f.rule))

    return LintResult(
        findings=findings,
        suppressed=suppressed,
        files=len(project.files),
        passes=sorted(passes),
    )


def apply_baseline(result: LintResult, baseline_path: Path) -> None:
    """Attach a ratchet diff against an older ``--output`` report.

    Findings are keyed by (rule, path, message) — line numbers shift on
    every edit and would make the ratchet leak. ``result.gate`` then
    fails the run only on findings absent from the baseline.
    """
    report = json.loads(baseline_path.read_text(encoding="utf-8"))
    old = {
        (f["rule"], f["path"], f["message"])
        for f in report.get("findings", [])
    }
    new = [
        f for f in result.findings
        if (f.rule, f.path, f.message) not in old
    ]
    still = {(f.rule, f.path, f.message) for f in result.findings}
    fixed = len([key for key in old if key not in still])
    result.baseline = {
        "path": str(baseline_path),
        "baseline_total": len(old),
        "new": [f.as_dict() for f in new],
        "fixed": fixed,
    }


def _print_text(result: LintResult, stream) -> None:
    for finding in result.findings:
        print(
            f"{finding.location()}: {finding.rule} {finding.message}",
            file=stream,
        )
    summary = (
        f"{len(result.findings)} finding(s) in {result.files} file(s), "
        f"{len(result.suppressed)} suppressed "
        f"[passes: {', '.join(result.passes)}]"
    )
    print(("FAIL: " if result.gate else "OK: ") + summary, file=stream)
    if result.baseline is not None:
        new = result.baseline["new"]
        print(
            f"baseline: {result.baseline['baseline_total']} known, "
            f"{len(new)} new, {result.baseline['fixed']} fixed",
            file=stream,
        )
        for finding in new:
            print(
                f"  NEW {finding['path']}:{finding['line']}: "
                f"{finding['rule']} {finding['message']}",
                file=stream,
            )


def _print_rules(stream) -> None:
    for rule_id, rule in sorted(all_rules().items()):
        print(f"{rule_id:20s} {rule.summary}", file=stream)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stonne lint",
        description="static-analysis passes enforcing simulator invariants",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: the repro package "
             "containing this tool)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json includes a machine-readable summary)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids / families / pass names to run "
             "(e.g. DET,EXC-BARE)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the report to PATH",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="OLD.json",
        help="ratchet mode: diff against an older --output report and "
             "exit 1 only on findings the baseline does not contain",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _default_paths() -> List[Path]:
    """Lint the installed ``repro`` package when no path is given."""
    return [Path(__file__).resolve().parent.parent]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rules(sys.stdout)
        return 0
    paths = [Path(p) for p in args.paths] if args.paths else _default_paths()
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    select = (
        [token.strip() for token in args.select.split(",") if token.strip()]
        if args.select else None
    )
    result = run_lint(paths, select=select)
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"error: no such baseline: {baseline_path}",
                  file=sys.stderr)
            return 2
        try:
            apply_baseline(result, baseline_path)
        except (ValueError, KeyError, TypeError) as exc:
            print(f"error: unreadable baseline report: {exc}",
                  file=sys.stderr)
            return 2
    if args.format == "json":
        text = json.dumps(result.as_dict(), indent=2)
        print(text)
    else:
        _print_text(result, sys.stdout)
        text = json.dumps(result.as_dict(), indent=2)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
    return 1 if result.gate else 0


if __name__ == "__main__":
    sys.exit(main())
