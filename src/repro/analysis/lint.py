"""The ``stonne lint`` driver.

Runs every registered pass over a file set, applies the inline
suppressions, and reports in text or JSON. Exit status: 0 when clean,
1 when findings remain, 2 on usage errors — so ``make lint`` and the CI
``static-analysis`` job gate directly on the command.

Usage::

    stonne lint [paths...] [--format text|json] [--select RULE,...]
    python -m repro.analysis.lint src/repro
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.core import (
    Finding,
    Project,
    all_passes,
    all_rules,
)

#: bump when the JSON report layout changes
REPORT_SCHEMA_VERSION = 1


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding]
    suppressed: List[Finding]
    files: int
    passes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> Dict[str, object]:
        by_rule: Dict[str, int] = {}
        for finding in self.findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "tool": "stonne-lint",
            "passes": list(self.passes),
            "files": self.files,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "summary": {
                "total": len(self.findings),
                "suppressed": len(self.suppressed),
                "by_rule": dict(sorted(by_rule.items())),
            },
        }


def _driver_findings(project: Project, known_rules) -> List[Finding]:
    """Syntax errors plus suppression hygiene (reason required)."""
    findings: List[Finding] = []
    for file in project.files:
        if file.syntax_error is not None:
            findings.append(Finding(
                rule="LINT-SYNTAX", path=file.relpath, line=1,
                message=f"cannot parse: {file.syntax_error}",
            ))
        for suppression in file.suppressions:
            if not suppression.reason:
                findings.append(Finding(
                    rule="LINT-REASON", path=file.relpath,
                    line=suppression.comment_line,
                    message=(
                        f"lint-ok[{suppression.rule}] has no reason; write "
                        "# stonne: lint-ok[<RULE-ID>] why this is fine"
                    ),
                ))
            known = suppression.rule in known_rules or any(
                rule_id.startswith(suppression.rule + "-")
                for rule_id in known_rules
            )
            if not known:
                findings.append(Finding(
                    rule="LINT-UNKNOWN", path=file.relpath,
                    line=suppression.comment_line,
                    message=(
                        f"lint-ok[{suppression.rule}] names no known rule "
                        "or rule family"
                    ),
                ))
    return findings


def run_lint(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Run all (or the selected) passes over ``paths``."""
    project = Project.from_paths([Path(p) for p in paths])
    passes = all_passes()
    known_rules = all_rules()
    if select:
        wanted = set(select)
        passes = {
            name: p for name, p in passes.items()
            if name in wanted or any(r.id in wanted for r in p.rules)
        }

    raw: List[Finding] = _driver_findings(project, known_rules)
    for lint_pass in passes.values():
        raw.extend(lint_pass.run(project))
    if select:
        wanted = set(select)
        # a selection matches a finding through its exact rule id, a
        # family prefix (EXC covers EXC-BROAD), or the emitting pass name
        selected_rules = {
            rule.id for p in passes.values() if p.name in wanted
            for rule in p.rules
        }
        raw = [
            f for f in raw
            if f.rule in wanted
            or f.rule in selected_rules
            or any(f.rule.startswith(token + "-") for token in wanted)
            or f.rule.startswith("LINT-")
        ]

    by_path = {file.relpath: file for file in project.files}
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule)):
        file = by_path.get(finding.path)
        is_suppressed = False
        if file is not None and not finding.rule.startswith("LINT-"):
            for suppression in file.suppressions_for(finding.line):
                if suppression.matches(finding.rule) and suppression.reason:
                    is_suppressed = True
                    break
        (suppressed if is_suppressed else findings).append(finding)
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        files=len(project.files),
        passes=sorted(passes),
    )


def _print_text(result: LintResult, stream) -> None:
    for finding in result.findings:
        print(
            f"{finding.location()}: {finding.rule} {finding.message}",
            file=stream,
        )
    summary = (
        f"{len(result.findings)} finding(s) in {result.files} file(s), "
        f"{len(result.suppressed)} suppressed "
        f"[passes: {', '.join(result.passes)}]"
    )
    print(("FAIL: " if result.findings else "OK: ") + summary, file=stream)


def _print_rules(stream) -> None:
    for rule_id, rule in sorted(all_rules().items()):
        print(f"{rule_id:20s} {rule.summary}", file=stream)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stonne lint",
        description="static-analysis passes enforcing simulator invariants",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: the repro package "
             "containing this tool)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json includes a machine-readable summary)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids / families / pass names to run "
             "(e.g. DET,EXC-BARE)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the report to PATH",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _default_paths() -> List[Path]:
    """Lint the installed ``repro`` package when no path is given."""
    return [Path(__file__).resolve().parent.parent]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rules(sys.stdout)
        return 0
    paths = [Path(p) for p in args.paths] if args.paths else _default_paths()
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    select = (
        [token.strip() for token in args.select.split(",") if token.strip()]
        if args.select else None
    )
    result = run_lint(paths, select=select)
    if args.format == "json":
        text = json.dumps(result.as_dict(), indent=2)
        print(text)
    else:
        _print_text(result, sys.stdout)
        text = json.dumps(result.as_dict(), indent=2)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
