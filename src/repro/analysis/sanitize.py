"""``stonne sanitize``: dual-run perturbation harness.

The static passes prove order-independence properties about the *code*;
this harness proves them about an actual *run*. It simulates the same
model twice in two subprocesses:

- the **reference** child: ``PYTHONHASHSEED=0``, layers timed in
  framework submission order;
- the **perturbed** child: an adversarial hash seed (string hashing —
  and therefore any accidental set/dict hash ordering — is reseeded),
  the recorded worklist reversed and then shuffled by a seeded RNG
  before timing.

Each child re-assembles its per-layer payloads into submission order,
validates the stall-conservation invariant per *window* of layers while
the run is still in flight (instead of only at finalize), and writes a
canonical JSON document. The parent byte-compares the two documents:
any difference — a counter, a float's last bit, a payload key — means
some timing path depends on hash or submission order, and the harness
names the first layer and key that diverged.

``--mutant float-order`` stamps a deliberately order-sensitive float
checksum (folded over layers in *timing* order) into the document — the
seeded mutant CI and the tests use to prove the harness actually fails
when order leaks into results.

Exit status: 0 clean, 1 divergence, 2 execution/conservation failure.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: adversarial hash seed for the perturbed child (any value != the
#: reference's 0 works; fixed so runs are reproducible)
PERTURBED_HASH_SEED = 4242

#: worklist shuffle seed (applied after reversal)
PERTURB_ORDER_SEED = 1729

#: layers per in-flight conservation window
DEFAULT_WINDOW = 4


# ----------------------------------------------------------------------
# child: simulate once under one ordering regime
# ----------------------------------------------------------------------
def _child_run(args: argparse.Namespace) -> int:
    from repro.config import maeri_like, sigma_like, tpu_like
    from repro.frontend.models.zoo import build_model, model_input
    from repro.observability.stalls import merge_ledgers, validate_ledger
    from repro.parallel.runner import _simulate_workload
    from repro.parallel.workload import record_model

    presets = {"tpu": tpu_like, "maeri": maeri_like, "sigma": sigma_like}
    builder = presets[args.arch]
    if args.arch == "tpu":
        kwargs = {"num_pes": args.num_ms}
        if args.bw:
            kwargs["bandwidth"] = args.bw
    else:
        kwargs = {
            "num_ms": args.num_ms,
            "bandwidth": args.bw or max(1, args.num_ms // 2),
        }
    config = builder(**kwargs)
    model = build_model(args.model, seed=0, prune=True)
    x = model_input(args.model, batch=1, seed=1)
    _, workloads = record_model(model, x, config)

    order = list(workloads)
    if args.perturb:
        order.reverse()
        random.Random(args.perturb).shuffle(order)

    rows: List[Optional[Dict]] = [None] * len(workloads)
    window: List[Tuple[int, Dict]] = []
    violations: List[str] = []
    windows = 0

    def flush_window() -> None:
        nonlocal windows
        if not window:
            return
        windows += 1
        for index, payload in window:
            stalls = payload.get("extra", {}).get("stalls")
            if not stalls:
                violations.append(f"layer {index}: no stall ledger")
                continue
            for problem in validate_ledger(stalls, int(payload["cycles"])):
                violations.append(f"layer {index}: {problem}")
        # windowed aggregate: each component's merged buckets must sum
        # to the cycles of exactly the layers that charged it (a layer
        # does not charge every component, so the merge is per-component)
        ledgers = [
            (p.get("extra", {}).get("stalls") or {}, int(p["cycles"]))
            for _, p in window
        ]
        merged = merge_ledgers([stalls for stalls, _ in ledgers if stalls])
        for component, buckets in sorted(merged.items()):
            expected = sum(
                cycles for stalls, cycles in ledgers if component in stalls
            )
            for problem in validate_ledger({component: buckets}, expected):
                violations.append(f"window {windows}: merged {problem}")
        window.clear()

    checksum = 0.0
    names = set()
    for workload in order:
        bundle = _simulate_workload(config, workload, stalls=True)
        payload = bundle["layer"]
        rows[workload.index] = payload
        window.append((workload.index, payload))
        if len(window) >= args.window:
            flush_window()
        if args.mutant == "float-order":
            # deliberately order-sensitive fold: (a*k+x)*k+y != (b*k+y)*k+x
            checksum = checksum * (1.0 + 2.0 ** -20) + float(
                payload["multiplier_utilization"]
            )
            names.add(str(payload["name"]))
    flush_window()

    document: Dict = {
        "model": args.model,
        "arch": args.arch,
        "num_ms": args.num_ms,
        "layers": rows,
        "totals": {
            "cycles": sum(int(r["cycles"]) for r in rows if r),
            "macs": sum(int(r["macs"]) for r in rows if r),
        },
        "conservation": {"windows": windows, "violations": violations},
    }
    if args.mutant == "float-order":
        for name in names:
            checksum = checksum * (1.0 + 2.0 ** -20) + float(len(name))
        document["checksum"] = checksum
    text = json.dumps(document, indent=1)
    Path(args.out).write_text(text + "\n", encoding="utf-8")
    if violations:
        for problem in violations:
            print(f"conservation: {problem}", file=sys.stderr)
        return 2
    return 0


# ----------------------------------------------------------------------
# parent: spawn reference + perturbed children, byte-compare
# ----------------------------------------------------------------------
def _spawn(
    args: argparse.Namespace, model: str, out: Path, perturb: int,
    hash_seed: int,
) -> subprocess.CompletedProcess:
    src_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    command = [
        sys.executable, "-m", "repro.analysis.sanitize", "--child",
        "--model", model, "--arch", args.arch,
        "--num-ms", str(args.num_ms), "--bw", str(args.bw),
        "--window", str(args.window),
        "--perturb", str(perturb),
        "--mutant", args.mutant,
        "--out", str(out),
    ]
    return subprocess.run(command, env=env, capture_output=True, text=True)


def _first_divergence(
    reference: Dict, perturbed: Dict
) -> str:
    ref_layers = reference.get("layers", [])
    per_layers = perturbed.get("layers", [])
    if len(ref_layers) != len(per_layers):
        return (
            f"layer count differs: {len(ref_layers)} vs {len(per_layers)}"
        )
    for index, (ref, per) in enumerate(zip(ref_layers, per_layers)):
        if ref == per:
            continue
        keys = sorted(set(ref) | set(per))
        for key in keys:
            if ref.get(key) != per.get(key):
                return (
                    f"layer {index} ({ref.get('name')}): key {key!r} "
                    f"differs: {ref.get(key)!r} vs {per.get(key)!r}"
                )
    for key in sorted(set(reference) | set(perturbed)):
        if key != "layers" and reference.get(key) != perturbed.get(key):
            return (
                f"document key {key!r} differs: {reference.get(key)!r} "
                f"vs {perturbed.get(key)!r}"
            )
    return "documents differ (non-layer content)"


def _sanitize_model(
    args: argparse.Namespace, model: str, scratch: Path
) -> Dict:
    ref_out = scratch / f"{model}-reference.json"
    per_out = scratch / f"{model}-perturbed.json"
    result: Dict = {"model": model, "arch": args.arch}
    reference = _spawn(args, model, ref_out, perturb=0, hash_seed=0)
    perturbed = _spawn(
        args, model, per_out,
        perturb=args.order_seed, hash_seed=args.hash_seed,
    )
    for label, proc in (("reference", reference), ("perturbed", perturbed)):
        if proc.returncode != 0:
            result["status"] = "error"
            result["detail"] = (
                f"{label} child exited {proc.returncode}: "
                f"{proc.stderr.strip() or proc.stdout.strip()}"
            )
            return result
    ref_bytes = ref_out.read_bytes()
    per_bytes = per_out.read_bytes()
    ref_doc = json.loads(ref_bytes)
    result["layers"] = len(ref_doc.get("layers", []))
    result["windows"] = ref_doc["conservation"]["windows"]
    if ref_bytes == per_bytes:
        result["status"] = "ok"
        return result
    result["status"] = "divergence"
    result["detail"] = _first_divergence(ref_doc, json.loads(per_bytes))
    return result


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stonne sanitize",
        description=(
            "prove a simulation is hash- and submission-order "
            "independent by byte-comparing a reference run against an "
            "adversarially perturbed one"
        ),
    )
    parser.add_argument(
        "--model", default="squeezenet",
        help="comma-separated zoo model name(s) to sweep",
    )
    parser.add_argument(
        "--arch", choices=("tpu", "maeri", "sigma"), default="tpu",
    )
    parser.add_argument("--num-ms", type=int, default=16)
    parser.add_argument("--bw", type=int, default=0)
    parser.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW,
        help="layers per in-flight conservation window",
    )
    parser.add_argument(
        "--hash-seed", type=int, default=PERTURBED_HASH_SEED,
        help="PYTHONHASHSEED for the perturbed child",
    )
    parser.add_argument(
        "--order-seed", type=int, default=PERTURB_ORDER_SEED,
        help="seed for the perturbed child's worklist shuffle",
    )
    parser.add_argument(
        "--mutant", choices=("off", "float-order"), default="off",
        help="seed a deliberate order-dependence (harness self-test)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the machine-readable verdict JSON to PATH",
    )
    parser.add_argument(
        "--keep-dir", default=None, metavar="DIR",
        help="keep the per-child payload documents under DIR",
    )
    # child-mode internals
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--perturb", type=int, default=0,
                        help=argparse.SUPPRESS)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.child:
        args.model = args.model.split(",")[0]
        return _child_run(args)

    models = [m.strip() for m in args.model.split(",") if m.strip()]
    if args.keep_dir:
        scratch = Path(args.keep_dir)
        scratch.mkdir(parents=True, exist_ok=True)
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="stonne-sanitize-")
        scratch = Path(cleanup.name)
    try:
        results = [_sanitize_model(args, model, scratch) for model in models]
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    worst = 0
    for result in results:
        status = result["status"]
        if status == "ok":
            print(
                f"OK: {result['model']} x {args.arch}: reference and "
                f"perturbed payloads byte-identical "
                f"({result['layers']} layers, {result['windows']} "
                "conservation windows)"
            )
        elif status == "divergence":
            print(
                f"FAIL: {result['model']} x {args.arch}: "
                f"{result['detail']}"
            )
            worst = max(worst, 1)
        else:
            print(
                f"ERROR: {result['model']} x {args.arch}: "
                f"{result['detail']}"
            )
            worst = max(worst, 2)
    if args.out:
        Path(args.out).write_text(
            json.dumps(
                {"tool": "stonne-sanitize", "results": results}, indent=2
            ) + "\n",
            encoding="utf-8",
        )
    return worst


if __name__ == "__main__":
    sys.exit(main())
