"""LEDGER: every cycle-bearing counter increment is charge-paired.

The stall ledger's conservation invariant (bucket sums == layer cycles,
PR 7) only survives new timing code if every site that advances a
*cycle-bearing* counter is attributable: the increment must happen
inside — or on a call path through — one of the charge-site families
(``_charge_stalls`` / ``_charge_fabric`` / ``record_*`` / ``charge``)
that feed the ledger. A bare ``counters.add("dn_busy_cycles", n)``
dropped into a new scheduling path compiles, runs, and then blows up a
sweep hours later as a ``StallConservationError``; this pass turns that
into a review-time finding with a witness chain.

Both vocabularies are data, not code: ``CYCLE_BEARING_COUNTERS`` and
``CHARGE_FAMILIES`` are committed literals in ``repro.engine.stats``
and are extracted with ``ast.literal_eval`` — the pass needs no import
of the simulator.

A function F containing an increment is *charge-paired* when any of:

1. F's own name is in a charge family (it *is* a charge site);
2. F's body calls a charge-family function (the increment and its
   attribution are siblings);
3. something forward-reachable from F contains a charge-family call
   (F delegates the attribution downward);
4. F is reachable *from* a charged function (the attribution dominates
   F on every modeled call path — e.g. ``skip_cycles`` reached only via
   ``record_delivery``).

Anything else is an uncharged timing path and is reported with the
outermost caller chain that reaches it.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    literal_assignment,
    register_pass,
)
from repro.analysis.flow import CallGraph, format_chain

#: packages whose timing code the pass audits
SCOPE_PACKAGES = ("repro.engine", "repro.noc", "repro.memory")

#: module committing the two vocabularies as literals
STATS_MODULE = "repro.engine.stats"

RULES = (
    Rule(
        id="LEDGER-UNCHARGED",
        summary="cycle-bearing counter increment with no paired charge",
        rationale=(
            "a timing statement outside the charge-site web adds cycles "
            "the stall ledger never attributes, so conservation (bucket "
            "sums == layer cycles) breaks at finalize — deep inside a "
            "run instead of at review time"
        ),
    ),
    Rule(
        id="LEDGER-MANIFEST",
        summary="charge-site manifest missing or malformed",
        rationale=(
            "the pass proves pairing against the committed "
            "CYCLE_BEARING_COUNTERS / CHARGE_FAMILIES literals; without "
            "them every increment is unauditable"
        ),
    ),
)


def _manifests(
    project: Project,
) -> Tuple[Optional[Set[str]], Optional[Tuple[Set[str], Tuple[str, ...]]], List[Finding]]:
    stats = project.module(STATS_MODULE)
    if stats is None or stats.tree is None:
        return None, None, []
    findings: List[Finding] = []
    bearing = literal_assignment(stats.tree, "CYCLE_BEARING_COUNTERS")
    families = literal_assignment(stats.tree, "CHARGE_FAMILIES")
    if not isinstance(bearing, dict) or not bearing:
        findings.append(Finding(
            rule="LEDGER-MANIFEST", path=stats.relpath, line=1,
            message=(
                "repro.engine.stats declares no CYCLE_BEARING_COUNTERS "
                "dict literal"
            ),
        ))
        bearing = None
    if (
        not isinstance(families, dict)
        or not families.get("names") and not families.get("prefixes")
    ):
        findings.append(Finding(
            rule="LEDGER-MANIFEST", path=stats.relpath, line=1,
            message=(
                "repro.engine.stats declares no CHARGE_FAMILIES literal "
                "with 'names' / 'prefixes' entries"
            ),
        ))
        families = None
    names: Optional[Set[str]] = set(bearing) if bearing else None
    family: Optional[Tuple[Set[str], Tuple[str, ...]]] = None
    if families is not None:
        family = (
            {str(n) for n in families.get("names", [])},
            tuple(str(p) for p in families.get("prefixes", [])),
        )
    return names, family, findings


def _is_charge_name(
    name: str, family: Tuple[Set[str], Tuple[str, ...]]
) -> bool:
    exact, prefixes = family
    return name in exact or any(name.startswith(p) for p in prefixes)


def _increment_sites(
    graph: CallGraph, bearing: Set[str]
) -> Dict[str, List[Tuple[str, int]]]:
    """qualname → [(counter name, line)] for every cycle-bearing add."""
    sites: Dict[str, List[Tuple[str, int]]] = {}
    scoped = {
        f.module for f in graph.project.in_packages(*SCOPE_PACKAGES)
    }
    for qual, info in graph.functions.items():
        if info.module not in scoped:
            continue
        hits: List[Tuple[str, int]] = []
        for node in ast.walk(info.node):
            name: Optional[str] = None
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                name = node.args[0].value
            elif (
                isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Subscript)
                and isinstance(node.target.slice, ast.Constant)
                and isinstance(node.target.slice.value, str)
            ):
                name = node.target.slice.value
            if name in bearing:
                hits.append((name, node.lineno))
        if hits:
            sites[qual] = hits
    return sites


@register_pass(
    "LEDGER",
    "every cycle-bearing counter increment in the timing packages is "
    "reachable from / dominated by a charge-site family call",
    RULES,
)
def run(project: Project) -> List[Finding]:
    bearing, family, findings = _manifests(project)
    if bearing is None or family is None:
        return findings

    graph = CallGraph(project)
    sites = _increment_sites(graph, bearing)
    if not sites:
        return findings

    # the base charge web: functions that are / directly call a charge site
    base = {
        qual for qual, info in graph.functions.items()
        if _is_charge_name(info.short.rsplit(".", 1)[-1], family)
        or any(_is_charge_name(s.name, family) for s in info.call_sites)
    }
    # rule 3: anything that can *reach* the web (reverse BFS over calls)
    inverse = graph.callers()
    charged = set(base)
    queue = list(base)
    while queue:
        current = queue.pop(0)
        for caller in inverse.get(current, ()):
            if caller not in charged:
                charged.add(caller)
                queue.append(caller)
    # rule 4: anything the web reaches (attribution dominates the path)
    paired = charged | set(graph.reachable(sorted(charged)))

    for qual in sorted(sites):
        if qual in paired:
            continue
        info = graph.functions[qual]
        chain = graph.caller_chain(qual, inverse)
        witness = (
            format_chain(graph, chain) if len(chain) > 1
            else f"{info.short} (no modeled callers)"
        )
        for counter, line in sites[qual]:
            findings.append(Finding(
                rule="LEDGER-UNCHARGED", path=info.file.relpath, line=line,
                message=(
                    f"increments cycle-bearing counter {counter!r} in "
                    f"{info.short} with no path to any charge-site "
                    f"family call; uncharged timing path: {witness}"
                ),
            ))
    return findings
