"""Framework shared by every lint pass.

The model is deliberately small: a :class:`Project` is a set of parsed
:class:`SourceFile` objects, a pass is a function from a project to a
list of :class:`Finding` records, and the driver applies the inline
suppressions (``# stonne: lint-ok[<RULE-ID>] reason``) before reporting.
Passes register themselves with :func:`register_pass` at import time, so
adding a pass is one module with one decorated function (see
``docs/STATIC_ANALYSIS.md``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: matches one inline suppression comment; group 1 is the rule id (or a
#: rule-family prefix like ``EXC``), group 2 the mandatory reason
SUPPRESS_RE = re.compile(
    r"#\s*stonne:\s*lint-ok\[([A-Za-z0-9-]+)\]\s*(.*)$"
)


@dataclass(frozen=True)
class Rule:
    """One checkable invariant with a stable, documented identifier."""

    id: str
    summary: str
    rationale: str


@dataclass(frozen=True)
class Finding:
    """One violation of one rule at one source location."""

    rule: str
    path: str
    line: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``lint-ok`` comment."""

    rule: str
    reason: str
    comment_line: int
    target_line: int

    def matches(self, rule_id: str) -> bool:
        """Exact rule id, or a family prefix (``EXC`` covers ``EXC-*``)."""
        return rule_id == self.rule or rule_id.startswith(self.rule + "-")


class SourceFile:
    """One parsed Python file: text, AST and suppression comments."""

    def __init__(self, path: Path, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: Optional[ast.AST] = None
        self.syntax_error: Optional[str] = None
        try:
            self.tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            self.syntax_error = str(exc)
        self.suppressions: List[Suppression] = list(self._parse_suppressions())
        self.module = module_name(relpath)

    def _parse_suppressions(self) -> Iterable[Suppression]:
        for number, line in enumerate(self.lines, start=1):
            match = SUPPRESS_RE.search(line)
            if match is None:
                continue
            before = line[: match.start()].strip()
            # a comment-only line suppresses the following line; a
            # trailing comment suppresses its own line
            target = number + 1 if not before else number
            yield Suppression(
                rule=match.group(1),
                reason=match.group(2).strip(),
                comment_line=number,
                target_line=target,
            )

    def suppressions_for(self, line: int) -> List[Suppression]:
        return [s for s in self.suppressions if s.target_line == line]

    def docstrings(self) -> Iterable[Tuple[int, str]]:
        """(first line number, text) of every docstring in the file."""
        if self.tree is None:
            return
        for node in ast.walk(self.tree):
            if not isinstance(
                node,
                (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
            ):
                continue
            body = getattr(node, "body", [])
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                yield body[0].value.lineno, body[0].value.value


def module_name(relpath: str) -> str:
    """Dotted module path of a file, anchored at the ``repro`` package.

    Files outside any ``repro`` tree (e.g. loose lint fixtures) fall back
    to their path-derived name so scope checks simply never match.
    """
    parts = list(Path(relpath).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts)


class Project:
    """The file set one lint run analyzes."""

    def __init__(self, root: Path, files: Sequence[SourceFile]) -> None:
        self.root = root
        self.files: List[SourceFile] = sorted(files, key=lambda f: f.relpath)
        self._by_module: Dict[str, SourceFile] = {
            f.module: f for f in self.files
        }

    @classmethod
    def from_paths(cls, paths: Sequence[Path]) -> "Project":
        """Collect ``*.py`` files from the given files/directories."""
        roots = [Path(p).resolve() for p in paths]
        seen: Dict[Path, SourceFile] = {}
        anchor = roots[0] if roots else Path.cwd()
        if anchor.is_file():
            anchor = anchor.parent
        for root in roots:
            if root.is_file():
                candidates = [root]
                base = root.parent
            else:
                candidates = sorted(root.rglob("*.py"))
                base = root
            for path in candidates:
                if "__pycache__" in path.parts or path in seen:
                    continue
                try:
                    relpath = path.relative_to(base)
                except ValueError:
                    relpath = Path(path.name)
                # anchor relative names at the package dir so findings
                # print as repro/... regardless of the path given
                rel = (Path(base.name) / relpath).as_posix()
                if base.name in ("src",):
                    rel = relpath.as_posix()
                seen[path] = SourceFile(
                    path, rel, path.read_text(encoding="utf-8")
                )
        return cls(anchor, list(seen.values()))

    def module(self, name: str) -> Optional[SourceFile]:
        """Look up a file by its dotted module name (``repro.x.y``)."""
        return self._by_module.get(name)

    def in_packages(self, *packages: str) -> List[SourceFile]:
        """Files whose module lives in any of the given dotted packages."""
        result = []
        for file in self.files:
            for package in packages:
                if file.module == package or file.module.startswith(
                    package + "."
                ):
                    result.append(file)
                    break
        return result


# ----------------------------------------------------------------------
# pass registry
# ----------------------------------------------------------------------
PassFn = Callable[[Project], List[Finding]]


@dataclass(frozen=True)
class LintPass:
    """A named pass: the rules it may emit plus its run function."""

    name: str
    description: str
    rules: Tuple[Rule, ...]
    run: PassFn = field(compare=False)


_PASS_REGISTRY: Dict[str, LintPass] = {}


def register_pass(
    name: str, description: str, rules: Sequence[Rule]
) -> Callable[[PassFn], PassFn]:
    """Decorator registering ``fn(project) -> findings`` as a pass."""

    def decorator(fn: PassFn) -> PassFn:
        if name in _PASS_REGISTRY:
            raise ValueError(f"duplicate lint pass {name!r}")
        _PASS_REGISTRY[name] = LintPass(
            name=name, description=description, rules=tuple(rules), run=fn
        )
        return fn

    return decorator


def all_passes() -> Dict[str, LintPass]:
    """Registered passes by name (importing the modules registers them)."""
    import repro.analysis.cachekey  # noqa: F401
    import repro.analysis.counters  # noqa: F401
    import repro.analysis.determinism  # noqa: F401
    import repro.analysis.exceptions  # noqa: F401
    import repro.analysis.floatorder  # noqa: F401
    import repro.analysis.ledger  # noqa: F401
    import repro.analysis.obsneutral  # noqa: F401
    import repro.analysis.parsafe  # noqa: F401
    import repro.analysis.schemadrift  # noqa: F401

    return dict(_PASS_REGISTRY)


#: rules emitted by the driver itself (suppression hygiene, parse errors)
DRIVER_RULES = (
    Rule(
        id="LINT-REASON",
        summary="suppression comment without a reason",
        rationale=(
            "a silenced finding with no recorded justification is "
            "indistinguishable from a finding someone wanted to hide; the "
            "reason string is the audit trail"
        ),
    ),
    Rule(
        id="LINT-UNKNOWN",
        summary="suppression names a rule id no pass defines",
        rationale=(
            "a typo in the rule id leaves the real finding live while "
            "looking suppressed"
        ),
    ),
    Rule(
        id="LINT-SYNTAX",
        summary="file does not parse",
        rationale="nothing can be checked in a file the AST cannot see",
    ),
    Rule(
        id="LINT-UNUSED",
        summary="suppression comment matches no finding",
        rationale=(
            "a lint-ok comment that silences nothing is a stale audit "
            "trail: the violation it once excused was fixed or moved, "
            "and leaving the comment grants a blanket waiver to "
            "whatever lands on that line next"
        ),
    ),
)


def all_rules() -> Dict[str, Rule]:
    """Every known rule id (pass rules plus the driver's own)."""
    rules: Dict[str, Rule] = {r.id: r for r in DRIVER_RULES}
    for lint_pass in all_passes().values():
        for rule in lint_pass.rules:
            rules[rule.id] = rule
    return rules


# ----------------------------------------------------------------------
# AST helpers shared by passes
# ----------------------------------------------------------------------
def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name → imported dotted target, for call resolution.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
                if name.asname:
                    aliases[name.asname] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = (
                    f"{node.module}.{name.name}"
                )
    return aliases


def resolve_call_name(func: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Fully qualified dotted name of a call target, if resolvable.

    ``np.random.rand`` with ``np -> numpy`` resolves to
    ``numpy.random.rand``; attribute chains rooted in a non-imported name
    (``self.rng.random``) resolve to ``None``.
    """
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


def is_dataclass_def(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else getattr(
            target, "id", None
        )
        if name == "dataclass":
            return True
    return False


def dataclass_field_names(node: ast.ClassDef) -> List[str]:
    """Annotated field names of a dataclass body, ``ClassVar`` excluded."""
    names: List[str] = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = ast.unparse(statement.annotation)
        if "ClassVar" in annotation:
            continue
        names.append(statement.target.id)
    return names


def literal_assignment(
    tree: ast.AST, name: str
) -> Optional[object]:
    """Value of a module-level ``name = <literal>`` assignment, if any."""
    for node in getattr(tree, "body", []):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                try:
                    return ast.literal_eval(node.value)
                except ValueError:
                    return None
    return None
