"""OBS-NEUTRAL: observability code never writes engine state.

The whole observability stack is sold as an *observer*: tracing,
metrics, stalls, fabric, registry and telemetry read the simulation and
must never write it, which is what keeps instrumented runs byte-
identical to bare ones (proven differentially in the test suite — but
only for the configurations the tests happen to run). This pass makes
the property static: using the interprocedural effect summaries from
:mod:`repro.analysis.flow` it proves that no function under
``repro.observability`` mutates a parameter typed as an engine / NoC /
memory class, and that none writes module-level state of those
packages.

The effect analysis follows aliases (assignment, attribute/subscript
access, iteration, unpacking) and propagates through resolved calls; a
parameter counts as engine-typed when its annotation names a class
defined under ``repro.engine`` / ``repro.noc`` / ``repro.memory`` (or
an imported dotted name rooted there). Unannotated parameters are not
judged — strict mypy keeps the interesting surfaces annotated.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.core import Finding, Project, Rule, register_pass
from repro.analysis.flow import CallGraph, FunctionNode, mutated_params

#: the package whose code must be effect-free on the simulator
OBS_PACKAGE = "repro.observability"

#: packages whose state observability may read but never write
ENGINE_PACKAGES = ("repro.engine", "repro.noc", "repro.memory")

RULES = (
    Rule(
        id="OBS-WRITE",
        summary="observability function mutates an engine-typed parameter",
        rationale=(
            "instrumentation that writes simulator state changes the "
            "simulation it observes; the on/off byte-identity guarantee "
            "(and every differential test built on it) silently dies"
        ),
    ),
    Rule(
        id="OBS-GLOBAL",
        summary="observability function writes engine module state",
        rationale=(
            "a module-level write into repro.engine/noc/memory from the "
            "observability layer couples instrumentation on/off to "
            "simulated behavior"
        ),
    ),
)


def _engine_class_names(graph: CallGraph) -> Set[str]:
    return {
        name for name, module in graph.class_modules.items()
        if module.startswith(ENGINE_PACKAGES)
    }


def _annotation_idents(annotation: ast.expr) -> Set[str]:
    idents: Set[str] = set()
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            idents.add(node.id)
        elif isinstance(node, ast.Attribute):
            idents.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # string ("forward") annotations: take the dotted tails
            for token in node.value.replace("[", " ").replace("]", " ") \
                    .replace(",", " ").split():
                idents.add(token.split(".")[-1])
    return idents


def _engine_typed_params(
    info: FunctionNode,
    engine_classes: Set[str],
    aliases: Dict[str, str],
) -> Dict[int, str]:
    """parameter index → annotation text, for engine-typed parameters."""
    args = getattr(info.node, "args", None)
    if args is None:
        return {}
    ordered = list(args.posonlyargs) + list(args.args)
    if args.vararg:
        ordered.append(args.vararg)
    ordered.extend(args.kwonlyargs)
    if args.kwarg:
        ordered.append(args.kwarg)
    typed: Dict[int, str] = {}
    for index, arg in enumerate(ordered):
        if arg.annotation is None:
            continue
        for ident in _annotation_idents(arg.annotation):
            dotted = aliases.get(ident, "")
            if ident in engine_classes or dotted.startswith(ENGINE_PACKAGES):
                typed[index] = ast.unparse(arg.annotation)
                break
    return typed


def _engine_module_writes(
    info: FunctionNode, aliases: Dict[str, str]
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(info.node):
        target: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and node.targets:
            target = node.targets[0]
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            target = node.target
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            continue
        root = target
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if not isinstance(root, ast.Name):
            continue
        dotted = aliases.get(root.id, "")
        if dotted.startswith(ENGINE_PACKAGES):
            findings.append(Finding(
                rule="OBS-GLOBAL", path=info.file.relpath, line=node.lineno,
                message=(
                    f"{info.short} writes into {dotted} "
                    "(engine module state) from the observability layer"
                ),
            ))
    return findings


@register_pass(
    "OBS-NEUTRAL",
    "effect analysis: repro.observability never mutates engine/noc/"
    "memory-typed parameters or module state",
    RULES,
)
def run(project: Project) -> List[Finding]:
    if not project.in_packages(OBS_PACKAGE):
        return []
    graph = CallGraph(project)
    engine_classes = _engine_class_names(graph)
    summaries = mutated_params(graph)

    findings: List[Finding] = []
    for qual in sorted(graph.functions):
        info = graph.functions[qual]
        if not (
            info.module == OBS_PACKAGE
            or info.module.startswith(OBS_PACKAGE + ".")
        ):
            continue
        aliases = graph.module_aliases.get(info.module, {})
        findings.extend(_engine_module_writes(info, aliases))
        mutated = summaries.get(qual, set())
        if not mutated:
            continue
        typed = _engine_typed_params(info, engine_classes, aliases)
        for index in sorted(mutated & set(typed)):
            findings.append(Finding(
                rule="OBS-WRITE", path=info.file.relpath,
                line=getattr(info.node, "lineno", 1),
                message=(
                    f"{info.short} may mutate parameter "
                    f"{info.params[index]!r} ({typed[index]}) — "
                    "observability must only read the simulation"
                ),
            ))
    return findings
