"""PAR: parallel-worker safety.

The differential guarantee (a ``--jobs N`` run is byte-identical to a
serial run) requires that the code a pool worker executes is a pure
function of its arguments. This pass builds a conservative call graph
from the worker entry points in ``repro/parallel/runner.py`` and flags,
anywhere in the reachable set:

- writes to module-level state (``global`` rebinding, mutation of a
  module-level dict/list/set) — such state diverges between the parent
  and each worker process, so code observing it behaves differently per
  execution mode;
- opening the run registry / SQLite — per-layer fragments are not runs,
  and concurrent writers to one SQLite file are a corruption hazard;
  only the parent registers the merged report.

Resolution is deliberately over-approximate: an attribute call whose
receiver type is unknown matches *every* project method of that name.
False positives are expected to be rare (module-level writes are rare)
and are silenced with an annotated suppression at the violating line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    SourceFile,
    import_aliases,
    literal_assignment,
    register_pass,
)

#: module whose top-level functions are the pool-worker entry points
RUNNER_MODULE = "repro.parallel.runner"

#: fallback when the runner does not declare WORKER_ENTRY_POINTS itself
DEFAULT_ENTRY_POINTS = ("_simulate_workload", "_simulate_workload_in_worker")

#: method calls that mutate a built-in container in place
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "appendleft", "sort",
})

RULES = (
    Rule(
        id="PAR-GLOBAL",
        summary="worker-reachable write to module-level state",
        rationale=(
            "module-level state is per-process: a worker's write is "
            "invisible to the parent and to other workers, so any code "
            "reading it stops being execution-mode independent and the "
            "serial == parallel guarantee dies"
        ),
    ),
    Rule(
        id="PAR-REGISTRY",
        summary="worker-reachable registry / SQLite open",
        rationale=(
            "only the parent registers the one merged report; workers "
            "opening the registry would record per-layer fragments as "
            "runs and race on the SQLite file"
        ),
    ),
)


@dataclass
class FunctionInfo:
    """One function/method and everything the call graph needs from it."""

    qualname: str              # module:func or module:Class.method
    module: str
    file: SourceFile
    node: ast.AST
    class_name: Optional[str] = None
    calls: Set[str] = field(default_factory=set)          # resolved qualnames
    method_calls: Set[str] = field(default_factory=set)   # unresolved attrs
    violations: List[Tuple[str, int, str]] = field(default_factory=list)


class _Index:
    """Project-wide function/method/class index."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.by_method_name: Dict[str, List[str]] = {}
        self.classes: Dict[str, Dict[str, str]] = {}  # class -> method -> qual
        self.class_modules: Dict[str, str] = {}
        self.class_bases: Dict[str, List[str]] = {}


def _module_level_names(tree: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in getattr(tree, "body", []):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return names


def _build_index(project: Project) -> _Index:
    index = _Index()
    for file in project.files:
        if file.tree is None:
            continue
        module = file.module
        for node in file.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{module}:{node.name}"
                index.functions[qual] = FunctionInfo(
                    qualname=qual, module=module, file=file, node=node
                )
            elif isinstance(node, ast.ClassDef):
                methods: Dict[str, str] = {}
                index.class_modules[node.name] = module
                index.class_bases[node.name] = [
                    base.id if isinstance(base, ast.Name) else base.attr
                    for base in node.bases
                    if isinstance(base, (ast.Name, ast.Attribute))
                ]
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        qual = f"{module}:{node.name}.{item.name}"
                        index.functions[qual] = FunctionInfo(
                            qualname=qual, module=module, file=file,
                            node=item, class_name=node.name,
                        )
                        methods[item.name] = qual
                        index.by_method_name.setdefault(
                            item.name, []
                        ).append(qual)
                index.classes[node.name] = methods
    return index


def _local_types(node: ast.AST, known_classes: Set[str]) -> Dict[str, str]:
    """variable name → class name, for ``x = ClassName(...)`` assignments."""
    types: Dict[str, str] = {}
    for statement in ast.walk(node):
        if not isinstance(statement, ast.Assign):
            continue
        value = statement.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in known_classes
        ):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    types[target.id] = value.func.id
    return types


def _resolve_class_method(
    index: _Index, class_name: str, method: str
) -> Optional[str]:
    """Look a method up on the class, then up its known base chain."""
    seen: Set[str] = set()
    stack = [class_name]
    while stack:
        current = stack.pop(0)
        if current in seen:
            continue
        seen.add(current)
        methods = index.classes.get(current)
        if methods and method in methods:
            return methods[method]
        stack.extend(index.class_bases.get(current, []))
    return None


def _analyze_function(
    info: FunctionInfo,
    index: _Index,
    aliases: Dict[str, str],
    module_names: Set[str],
    project_modules: Set[str],
) -> None:
    known_classes = set(index.classes)
    local_types = _local_types(info.node, known_classes)

    for node in ast.walk(info.node):
        # ---- violations in this body ---------------------------------
        if isinstance(node, ast.Global):
            for name in node.names:
                info.violations.append((
                    "PAR-GLOBAL", node.lineno,
                    f"'global {name}' rebinds module-level state",
                ))
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target] if isinstance(node, ast.AugAssign)
                else node.targets
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in module_names
                ):
                    info.violations.append((
                        "PAR-GLOBAL", node.lineno,
                        f"writes into module-level container "
                        f"{target.value.id!r}",
                    ))

        if not isinstance(node, ast.Call):
            continue
        func = node.func

        # in-place mutation of a module-level container
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in module_names
        ):
            info.violations.append((
                "PAR-GLOBAL", node.lineno,
                f"mutates module-level container {func.value.id!r} via "
                f".{func.attr}()",
            ))

        # registry / sqlite opens
        dotted = _dotted_name(func, aliases)
        if dotted == "sqlite3.connect":
            info.violations.append((
                "PAR-REGISTRY", node.lineno,
                "opens SQLite directly",
            ))
        if isinstance(func, ast.Name):
            target_class = None
            if func.id in known_classes:
                target_class = func.id
            else:
                imported = aliases.get(func.id, "")
                tail = imported.rsplit(".", 1)[-1] if imported else ""
                if tail in known_classes:
                    target_class = tail
            if target_class == "RunRegistry":
                info.violations.append((
                    "PAR-REGISTRY", node.lineno,
                    "instantiates the run registry",
                ))
            if target_class is not None:
                init = _resolve_class_method(index, target_class, "__init__")
                if init:
                    info.calls.add(init)

        # ---- call-graph edges ----------------------------------------
        if isinstance(func, ast.Name):
            # same-module function
            qual = f"{info.module}:{func.id}"
            if qual in index.functions:
                info.calls.add(qual)
            else:
                imported = aliases.get(func.id)
                if imported and "." in imported:
                    mod, _, name = imported.rpartition(".")
                    if mod in project_modules:
                        target = f"{mod}:{name}"
                        if target in index.functions:
                            info.calls.add(target)
        elif isinstance(func, ast.Attribute):
            receiver = func.value
            resolved = False
            if (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super"
            ):
                # super().method() dispatches up the known base chain —
                # never fan out to every same-named method in the project
                if info.class_name is not None:
                    for base in index.class_bases.get(info.class_name, []):
                        target = _resolve_class_method(index, base, func.attr)
                        if target:
                            info.calls.add(target)
                            break
                resolved = True
            if isinstance(receiver, ast.Name):
                # precise: variable of known class, or known class itself
                class_name = local_types.get(receiver.id)
                if class_name is None:
                    candidate = receiver.id
                    if candidate not in known_classes:
                        imported = aliases.get(candidate, "")
                        candidate = (
                            imported.rsplit(".", 1)[-1] if imported else ""
                        )
                    if candidate in known_classes:
                        class_name = candidate
                if class_name is not None:
                    target = _resolve_class_method(
                        index, class_name, func.attr
                    )
                    if target:
                        info.calls.add(target)
                    resolved = True
                elif dotted is not None:
                    mod, _, name = dotted.rpartition(".")
                    if mod in project_modules:
                        target = f"{mod}:{name}"
                        if target in index.functions:
                            info.calls.add(target)
                        resolved = True
            if isinstance(receiver, ast.Name) and receiver.id == "self" \
                    and info.class_name is not None:
                target = _resolve_class_method(
                    index, info.class_name, func.attr
                )
                if target:
                    info.calls.add(target)
                resolved = True
            if not resolved:
                info.method_calls.add(func.attr)


def _dotted_name(func: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    from repro.analysis.core import resolve_call_name

    return resolve_call_name(func, aliases)


def _entry_points(project: Project) -> List[str]:
    runner = project.module(RUNNER_MODULE)
    if runner is None or runner.tree is None:
        return []
    declared = literal_assignment(runner.tree, "WORKER_ENTRY_POINTS")
    names = (
        [str(n) for n in declared]
        if isinstance(declared, (list, tuple))
        else list(DEFAULT_ENTRY_POINTS)
    )
    return [f"{RUNNER_MODULE}:{name}" for name in names]


@register_pass(
    "PAR-SAFE",
    "nothing reachable from the pool-worker entry points writes "
    "module-level state or opens the run registry",
    RULES,
)
def run(project: Project) -> List[Finding]:
    entries = _entry_points(project)
    if not entries:
        return []
    index = _build_index(project)
    project_modules = {f.module for f in project.files}

    per_module_aliases: Dict[str, Dict[str, str]] = {}
    per_module_names: Dict[str, Set[str]] = {}
    for file in project.files:
        if file.tree is None:
            continue
        per_module_aliases[file.module] = import_aliases(file.tree)
        per_module_names[file.module] = _module_level_names(file.tree)

    for info in index.functions.values():
        _analyze_function(
            info, index,
            per_module_aliases.get(info.module, {}),
            per_module_names.get(info.module, set()),
            project_modules,
        )

    # breadth-first reachability, tracking one witness chain per function
    reached: Dict[str, List[str]] = {}
    queue: List[str] = []
    for entry in entries:
        if entry in index.functions and entry not in reached:
            reached[entry] = [entry]
            queue.append(entry)
    while queue:
        current = queue.pop(0)
        info = index.functions[current]
        targets = set(info.calls)
        for method in info.method_calls:
            targets.update(index.by_method_name.get(method, []))
        for target in targets:
            if target in reached or target not in index.functions:
                continue
            reached[target] = reached[current] + [target]
            queue.append(target)

    findings: List[Finding] = []
    for qual, chain in reached.items():
        info = index.functions[qual]
        for rule_id, line, what in info.violations:
            via = " -> ".join(q.split(":", 1)[1] for q in chain)
            findings.append(Finding(
                rule=rule_id, path=info.file.relpath, line=line,
                message=f"{what} (reachable from worker entry via {via})",
            ))
    return findings
