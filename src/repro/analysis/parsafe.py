"""PAR: parallel-worker safety.

The differential guarantee (a ``--jobs N`` run is byte-identical to a
serial run) requires that the code a pool worker executes is a pure
function of its arguments. This pass walks the shared interprocedural
:class:`repro.analysis.flow.CallGraph` from the worker entry points in
``repro/parallel/runner.py`` and flags, anywhere in the reachable set:

- writes to module-level state (``global`` rebinding, mutation of a
  module-level dict/list/set) — such state diverges between the parent
  and each worker process, so code observing it behaves differently per
  execution mode;
- opening the run registry / SQLite — per-layer fragments are not runs,
  and concurrent writers to one SQLite file are a corruption hazard;
  only the parent registers the merged report.

Resolution is deliberately over-approximate: an attribute call whose
receiver type is unknown matches *every* project method of that name.
False positives are expected to be rare (module-level writes are rare)
and are silenced with an annotated suppression at the violating line.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    literal_assignment,
    register_pass,
    resolve_call_name,
)
from repro.analysis.flow import (
    MUTATOR_METHODS,
    CallGraph,
    FunctionNode,
)

#: module whose top-level functions are the pool-worker entry points
RUNNER_MODULE = "repro.parallel.runner"

#: fallback when the runner does not declare WORKER_ENTRY_POINTS itself
DEFAULT_ENTRY_POINTS = ("_simulate_workload", "_simulate_workload_in_worker")

#: method calls that mutate a built-in container in place
_MUTATORS = MUTATOR_METHODS

RULES = (
    Rule(
        id="PAR-GLOBAL",
        summary="worker-reachable write to module-level state",
        rationale=(
            "module-level state is per-process: a worker's write is "
            "invisible to the parent and to other workers, so any code "
            "reading it stops being execution-mode independent and the "
            "serial == parallel guarantee dies"
        ),
    ),
    Rule(
        id="PAR-REGISTRY",
        summary="worker-reachable registry / SQLite open",
        rationale=(
            "only the parent registers the one merged report; workers "
            "opening the registry would record per-layer fragments as "
            "runs and race on the SQLite file"
        ),
    ),
)

#: (rule id, line, what) — computed per function body
Violation = Tuple[str, int, str]


def _violations(
    info: FunctionNode,
    aliases: Dict[str, str],
    module_names: Set[str],
) -> List[Violation]:
    found: List[Violation] = []
    for node in ast.walk(info.node):
        if isinstance(node, ast.Global):
            for name in node.names:
                found.append((
                    "PAR-GLOBAL", node.lineno,
                    f"'global {name}' rebinds module-level state",
                ))
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target] if isinstance(node, ast.AugAssign)
                else node.targets
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in module_names
                ):
                    found.append((
                        "PAR-GLOBAL", node.lineno,
                        f"writes into module-level container "
                        f"{target.value.id!r}",
                    ))

        if not isinstance(node, ast.Call):
            continue
        func = node.func

        # in-place mutation of a module-level container
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in module_names
        ):
            found.append((
                "PAR-GLOBAL", node.lineno,
                f"mutates module-level container {func.value.id!r} via "
                f".{func.attr}()",
            ))

        # registry / sqlite opens
        if resolve_call_name(func, aliases) == "sqlite3.connect":
            found.append((
                "PAR-REGISTRY", node.lineno,
                "opens SQLite directly",
            ))
    for class_name, lineno in info.instantiations:
        if class_name == "RunRegistry":
            found.append((
                "PAR-REGISTRY", lineno,
                "instantiates the run registry",
            ))
    return found


def _entry_points(project: Project) -> List[str]:
    runner = project.module(RUNNER_MODULE)
    if runner is None or runner.tree is None:
        return []
    declared = literal_assignment(runner.tree, "WORKER_ENTRY_POINTS")
    names = (
        [str(n) for n in declared]
        if isinstance(declared, (list, tuple))
        else list(DEFAULT_ENTRY_POINTS)
    )
    return [f"{RUNNER_MODULE}:{name}" for name in names]


@register_pass(
    "PAR-SAFE",
    "nothing reachable from the pool-worker entry points writes "
    "module-level state or opens the run registry",
    RULES,
)
def run(project: Project) -> List[Finding]:
    entries = _entry_points(project)
    if not entries:
        return []
    graph = CallGraph(project)
    reached = graph.reachable(entries)

    findings: List[Finding] = []
    for qual, chain in reached.items():
        info = graph.functions[qual]
        violations = _violations(
            info,
            graph.module_aliases.get(info.module, {}),
            graph.module_level_names.get(info.module, set()),
        )
        for rule_id, line, what in violations:
            via = " -> ".join(q.split(":", 1)[1] for q in chain)
            findings.append(Finding(
                rule=rule_id, path=info.file.relpath, line=line,
                message=f"{what} (reachable from worker entry via {via})",
            ))
    return findings
