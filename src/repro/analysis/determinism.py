"""DET: determinism rules.

The differential suite (serial == parallel == cached, byte-identical)
and the content-addressed :class:`~repro.parallel.cache.SimCache` are
only as good as the code's determinism. Three classes of bug break it
silently:

- global-state RNG (``np.random.rand``, ``random.random``): results
  depend on call order, which the parallel runner does not preserve;
- wall-clock reads inside cycle-level code: a cycle count that ever
  consults real time is not a cycle count;
- iteration over ``set`` / ``dict.keys()``: string hashing is
  per-process randomized, so worker processes can observe a different
  order than the parent.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    SourceFile,
    import_aliases,
    register_pass,
    resolve_call_name,
)

#: packages whose code runs inside the cycle-level timing model
CYCLE_LEVEL_PACKAGES = ("repro.engine", "repro.noc", "repro.memory")

#: packages additionally checked for iteration-order nondeterminism
#: (cache-key construction must be canonical across processes)
ORDER_SENSITIVE_PACKAGES = CYCLE_LEVEL_PACKAGES + ("repro.parallel",)

#: provenance/observability code legitimately reads wall clocks
#: (timestamps on reports, host-side telemetry instruments and the
#: sampling hotspot profiler) and is whitelisted for DET-CLOCK; the
#: telemetry subpackage is named explicitly so the whitelist survives
#: even if the parent entry is ever narrowed
CLOCK_WHITELISTED_PACKAGES = (
    "repro.observability",
    "repro.observability.telemetry",
)

#: legacy numpy global-state RNG entry points
_NUMPY_LEGACY = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "standard_normal",
    "uniform", "normal", "seed", "binomial", "poisson", "beta", "gamma",
    "exponential",
})

#: stdlib ``random`` module-level (global-state) functions
_STDLIB_RANDOM = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "seed", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "getrandbits",
})

#: wall-clock call targets forbidden in cycle-level code — including
#: the monotonic/perf-counter family the telemetry instruments use:
#: host-time reads of any kind do not belong in the timing model
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: doc-example scan for the same legacy RNG API inside docstrings
_DOC_RNG_RE = re.compile(
    r"(?:np|numpy)\.random\.(?:%s)\s*\(" % "|".join(sorted(_NUMPY_LEGACY))
)

RULES = (
    Rule(
        id="DET-RAND",
        summary="call into a global-state RNG (np.random.* / random.*)",
        rationale=(
            "global-state RNG output depends on call order, which the "
            "parallel runner does not preserve; use "
            "np.random.default_rng(seed) so every draw is owned by an "
            "explicitly seeded generator"
        ),
    ),
    Rule(
        id="DET-CLOCK",
        summary="wall-clock read inside cycle-level code",
        rationale=(
            "time.time()/datetime.now() reachable from engine/, noc/ or "
            "memory/ lets real time leak into simulated cycle counts, "
            "breaking run-to-run and serial-vs-parallel equivalence"
        ),
    ),
    Rule(
        id="DET-ORDER",
        summary="iteration over a set or dict.keys() view",
        rationale=(
            "str hashing is randomized per process, so set order differs "
            "between the parent and pool workers; iterate sorted(...) in "
            "cycle loops and cache-key construction"
        ),
    ),
    Rule(
        id="DET-DOC",
        summary="doc example uses the legacy global-state numpy RNG",
        rationale=(
            "examples are what users copy; a Quickstart built on "
            "np.random.rand teaches the exact pattern DET-RAND forbids"
        ),
    ),
)

_BY_ID = {rule.id: rule for rule in RULES}


def _in_packages(file: SourceFile, packages) -> bool:
    return any(
        file.module == p or file.module.startswith(p + ".")
        for p in packages
    )


def _check_rng_calls(file: SourceFile, aliases: Dict[str, str],
                     findings: List[Finding]) -> None:
    assert file.tree is not None
    for node in ast.walk(file.tree):
        if isinstance(node, ast.ImportFrom) and not node.level:
            bad = None
            if node.module in ("numpy.random",):
                bad = [n.name for n in node.names if n.name in _NUMPY_LEGACY]
            elif node.module == "random":
                bad = [n.name for n in node.names if n.name in _STDLIB_RANDOM]
            if bad:
                findings.append(Finding(
                    rule="DET-RAND", path=file.relpath, line=node.lineno,
                    message=(
                        f"imports global-state RNG function(s) "
                        f"{', '.join(sorted(bad))} from {node.module}"
                    ),
                ))
            continue
        if not isinstance(node, ast.Call):
            continue
        name = resolve_call_name(node.func, aliases)
        if name is None:
            continue
        if name.startswith("numpy.random."):
            tail = name[len("numpy.random."):]
            if tail in _NUMPY_LEGACY:
                findings.append(Finding(
                    rule="DET-RAND", path=file.relpath, line=node.lineno,
                    message=(
                        f"{name}() draws from the process-global RNG; use "
                        "np.random.default_rng(seed)"
                    ),
                ))
        elif name.startswith("random."):
            tail = name[len("random."):]
            if tail in _STDLIB_RANDOM:
                findings.append(Finding(
                    rule="DET-RAND", path=file.relpath, line=node.lineno,
                    message=(
                        f"{name}() draws from the process-global RNG; use "
                        "random.Random(seed)"
                    ),
                ))


def _check_wall_clock(file: SourceFile, aliases: Dict[str, str],
                      findings: List[Finding]) -> None:
    assert file.tree is not None
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        name = resolve_call_name(node.func, aliases)
        if name in _WALL_CLOCK:
            findings.append(Finding(
                rule="DET-CLOCK", path=file.relpath, line=node.lineno,
                message=(
                    f"{name}() read inside cycle-level code; simulated "
                    "time must come from the cycle counter only"
                ),
            ))


def _iter_targets(tree: ast.AST):
    """(node, iterated expression) for every for-loop and comprehension."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                yield node, generator.iter


def _check_iteration_order(file: SourceFile,
                           findings: List[Finding]) -> None:
    assert file.tree is not None
    for node, iterated in _iter_targets(file.tree):
        unordered = None
        if isinstance(iterated, ast.Set):
            unordered = "a set literal"
        elif (
            isinstance(iterated, ast.Call)
            and isinstance(iterated.func, ast.Name)
            and iterated.func.id in ("set", "frozenset")
        ):
            unordered = f"{iterated.func.id}(...)"
        elif (
            isinstance(iterated, ast.Call)
            and isinstance(iterated.func, ast.Attribute)
            and iterated.func.attr == "keys"
            and not iterated.args
        ):
            unordered = f"{ast.unparse(iterated)}"
        elif isinstance(iterated, ast.BinOp) and isinstance(
            iterated.op, (ast.BitOr, ast.BitAnd, ast.Sub)
        ):
            # `a.keys() | b.keys()` and friends produce sets
            sides = (iterated.left, iterated.right)
            if any(
                isinstance(s, ast.Call)
                and isinstance(s.func, ast.Attribute)
                and s.func.attr == "keys"
                for s in sides
            ):
                unordered = "a set built from dict key views"
        if unordered is not None:
            findings.append(Finding(
                rule="DET-ORDER", path=file.relpath, line=iterated.lineno,
                message=(
                    f"iterates {unordered}, whose order is not stable "
                    "across processes; wrap in sorted(...)"
                ),
            ))


def _check_doc_examples(file: SourceFile, findings: List[Finding]) -> None:
    for start_line, text in file.docstrings():
        for offset, line in enumerate(text.splitlines()):
            if _DOC_RNG_RE.search(line):
                findings.append(Finding(
                    rule="DET-DOC", path=file.relpath,
                    line=start_line + offset,
                    message=(
                        "doc example calls the legacy np.random API; show "
                        "np.random.default_rng(seed) instead"
                    ),
                ))


@register_pass(
    "DET",
    "determinism: seeded RNG only, no wall clocks or unordered iteration "
    "in cycle-level code",
    RULES,
)
def run(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for file in project.files:
        if file.tree is None:
            continue
        aliases = import_aliases(file.tree)
        _check_rng_calls(file, aliases, findings)
        _check_doc_examples(file, findings)
        if _in_packages(file, CYCLE_LEVEL_PACKAGES) and not _in_packages(
            file, CLOCK_WHITELISTED_PACKAGES
        ):
            _check_wall_clock(file, aliases, findings)
        if _in_packages(file, ORDER_SENSITIVE_PACKAGES):
            _check_iteration_order(file, findings)
    return findings
