"""Memory hierarchy and memory controllers (paper Section IV-B).

The hierarchy is the typical DNN-accelerator three-level stack: local
storage (the network FIFOs of :mod:`repro.noc`), an on-chip Global Buffer,
and off-chip DRAM with double-buffered prefetching. Data orchestration
between the GB and the networks is performed by a *memory controller*
selected by the user:

- :class:`~repro.memory.dense_controller.DenseController` — mRNA-inspired
  fixed-tile orchestration with folding (used by TPU-like and MAERI-like
  instances).
- :class:`~repro.memory.sparse_controller.SparseController` — GEMM
  orchestration over bitmap/CSR compressed operands with dynamic cluster
  sizes (used by SIGMA-like instances).

Controllers use internal counters to produce the exact address streams, in
the spirit of Buffets, and advance the fabric cycle by cycle.
"""

from repro.memory.dense_controller import DenseController, DenseRunResult
from repro.memory.dram import Dram
from repro.memory.global_buffer import GlobalBuffer
from repro.memory.sparse_controller import SparseController, SparseRunResult

__all__ = [
    "DenseController",
    "DenseRunResult",
    "Dram",
    "GlobalBuffer",
    "SparseController",
    "SparseRunResult",
]
