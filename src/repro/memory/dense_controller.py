"""Dense memory controller (mRNA-inspired, paper Section IV-B).

Orchestrates a convolution (or GEMM, as a degenerate convolution) over the
fabric according to a fixed :class:`~repro.config.tile.TileConfig`. The
controller walks the layer with nested internal counters — the
Buffets-style address generation the paper describes — and advances the
accelerator clock with *cycle-exact fast-forwarding*: within one steady
phase every pixel step costs the same deterministic number of cycles, so
the controller accounts whole phases at once while producing the same
totals a one-cycle-at-a-time loop would (the test suite checks this
against an explicit step-by-step replay).

Timing model
------------

A *step* processes one wave of operands through the three network tiers:

1. The DN delivers the step's **new** unique operands, consuming
   ``ceil(slots / bandwidth)`` cycles of GB read ports. Multicast fabrics
   charge one slot per unique value (inputs shared by the ``T_K`` filters
   of a cluster group count once); the linear MN's forwarding links make
   consecutive sliding-window steps cheaper (only the fresh columns of the
   receptive field arrive through the DN).
2. The MN multiplies (one cycle, pipelined).
3. The RN reduces each cluster. Tree RNs are wave-pipelined; the linear RN
   serializes ``cluster_size`` accumulations per step.
4. Completed outputs drain through the RN output port at
   ``rn_bandwidth`` elements/cycle.

A step therefore occupies ``max(delivery, reduction throughput, drain)``
cycles — the pipeline runs at the pace of its slowest stage, which is how
bandwidth starvation produces the stalls of Fig. 1b.

Dataflows
---------

- *Weight-stationary* (MAERI-like default): weights for one
  ``(filter-group, fold)`` phase stay in the MSs while all output pixels
  stream. With more than one fold, partial sums round-trip through the
  Global Buffer (written by the RN, re-injected through forwarder MSs).
- *Output-stationary*: folds iterate innermost with psums held in the RN
  accumulators (or round-tripping if the RN has none); weights are
  re-delivered every fold of every pixel step.
- *Input-stationary*: inputs pinned, weights stream; psum traffic follows
  the weight-stationary pattern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config.hardware import Dataflow, HardwareConfig
from repro.config.layer import ConvLayerSpec, GemmSpec
from repro.config.tile import TileConfig
from repro.errors import MappingError
from repro.memory.dram import Dram
from repro.memory.global_buffer import GlobalBuffer
from repro.noc.base import ClockedComponent
from repro.noc.distribution import DistributionNetwork
from repro.noc.multiplier import MultiplierNetwork
from repro.noc.reduction import ReductionNetwork
from repro.observability.stalls import StallLedger
from repro.observability.telemetry.scopes import component_scope

#: fixed cycles for the Configuration Unit to program a layer's signals
LAYER_SETUP_CYCLES = 4


@dataclass(frozen=True)
class DenseRunResult:
    """Summary of one dense layer execution."""

    cycles: int
    macs: int
    outputs: int
    steps: int
    stall_cycles: int
    dram_stall_cycles: int
    multiplier_utilization: float

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.cycles if self.cycles else 0.0


@dataclass(frozen=True)
class _StepCost:
    """Deterministic cost of one pixel step inside a steady phase."""

    dn_slots: int
    unique_values: int
    destinations: int
    forwarded: int
    psum_writebacks: int
    outputs_completed: int
    weight_unique: int = 0


class DenseController(ClockedComponent):
    """Fixed-tile dense orchestration over a DN/MN/RN composition."""

    def __init__(
        self,
        config: HardwareConfig,
        dn: DistributionNetwork,
        mn: MultiplierNetwork,
        rn: ReductionNetwork,
        gb: GlobalBuffer,
        dram: Dram,
        name: str = "dense-controller",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.dn = dn
        self.mn = mn
        self.rn = rn
        self.gb = gb
        self.dram = dram

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def run_conv(self, layer: ConvLayerSpec, tile: TileConfig) -> DenseRunResult:
        """Simulate one convolution layer; returns the timing summary."""
        tile.validate_for(layer, self.mn.num_ms)
        return self._run(layer, tile)

    def run_gemm(self, gemm: GemmSpec, tile: TileConfig) -> DenseRunResult:
        """Simulate a GEMM as a 1x1 convolution over a 1xN output map."""
        layer = ConvLayerSpec(
            r=1, s=1, c=gemm.k, k=gemm.m, g=1, n=1, x=1, y=gemm.n,
            stride=1, name=gemm.name or "gemm",
        )
        conv_tile = TileConfig(
            t_c=tile.cluster_size,
            t_k=tile.t_k,
            t_y=tile.t_y * tile.t_x * tile.t_n,
        )
        conv_tile.validate_for(layer, self.mn.num_ms)
        return self._run(layer, conv_tile)

    # ------------------------------------------------------------------
    # the timing engine
    # ------------------------------------------------------------------
    def _run(self, layer: ConvLayerSpec, tile: TileConfig) -> DenseRunResult:
        from repro.engine.vector.predicate import use_vector_kernels

        if use_vector_kernels(self.config, self.obs):
            from repro.engine.vector.dense import run_layer_closed_form

            return run_layer_closed_form(self, layer, tile)
        obs = self.obs
        prof = obs.profiler
        with prof.phase("map"):
            plan_state = self._plan(layer, tile)
        (cs, tile, plan, weight_loads, w_unique, w_dests, w_cycles,
         total_steps) = plan_state

        tracer = obs.tracer
        base = obs.base
        self.counters.add("ctrl_layers_run", 1)
        cycles = LAYER_SETUP_CYCLES
        if tracer.enabled:
            tracer.span("CTRL:setup", self.name, base, base + cycles)

        stall_cycles = 0
        with prof.phase("distribute"), component_scope("noc.distribution"):
            load_cycles = self._account_weight_loads(
                w_unique, w_dests, w_cycles, weight_loads
            )
        if tracer.enabled and load_cycles:
            tracer.span(
                "DN:weight-load", self.dn.name, base + cycles,
                base + cycles + load_cycles,
                unique=w_unique, loads=weight_loads,
            )
        cycles += load_cycles
        obs.sample(cycles)

        with prof.phase("compute"), component_scope("engine"):
            for cost, repeats in plan:
                if repeats <= 0:
                    continue
                step_cycles = self._step_cycles(cost, cs)
                segment = step_cycles * repeats
                self._account_steps(cost, cs, tile.num_clusters, repeats)
                if tracer.enabled:
                    start, end = base + cycles, base + cycles + segment
                    stall = max(0, step_cycles - 1) * repeats
                    tracer.span(
                        "DN:deliver", self.dn.name, start, end,
                        steps=repeats, slots_per_step=cost.dn_slots,
                        stall_cycles=stall,
                    )
                    tracer.span(
                        "MN:multiply", self.mn.name, start, end,
                        multiplications=cs * tile.num_clusters * repeats,
                        forwarded=cost.forwarded * repeats,
                    )
                    tracer.span(
                        "RN:reduce", self.rn.name, start, end,
                        outputs=cost.outputs_completed * repeats,
                        psum_writebacks=cost.psum_writebacks * repeats,
                    )
                cycles += segment
                stall_cycles += max(0, step_cycles - 1) * repeats
                obs.sample(cycles)

        with prof.phase("drain"):
            # Pipeline fill/drain: one DN traversal, the multiply stage and
            # the deepest reduction still in flight at the end of the run.
            drain = self.dn.pipeline_latency + 1 + self.rn.reduction_latency(cs)
            if tracer.enabled:
                tracer.span(
                    "CTRL:pipeline-drain", self.name, base + cycles,
                    base + cycles + drain,
                )
            cycles += drain

            macs = layer.num_macs
            outputs = layer.num_outputs
            dram_stall = self._account_dram(layer, cycles)
            if tracer.enabled and dram_stall:
                tracer.span(
                    "DRAM:stall", self.dram.name, base + cycles,
                    base + cycles + dram_stall,
                )
            cycles += dram_stall
            obs.sample(cycles)

        ledger = obs.stalls
        fabric = obs.fabric
        if ledger is not None or fabric is not None:
            segments = [
                (cost, repeats, self._step_cycles(cost, cs))
                for cost, repeats in plan if repeats > 0
            ]
            if ledger is not None:
                self._charge_stalls(
                    ledger, cs, load_cycles, segments, drain, dram_stall
                )
            if fabric is not None:
                self._charge_fifos(fabric, segments)

        utilization = macs / (self.mn.num_ms * cycles) if cycles else 0.0
        self._current_cycle += cycles
        self.counters.add("ctrl_cycles", cycles)
        return DenseRunResult(
            cycles=cycles,
            macs=macs,
            outputs=outputs,
            steps=total_steps,
            stall_cycles=stall_cycles,
            dram_stall_cycles=dram_stall,
            multiplier_utilization=utilization,
        )

    def _plan(self, layer: ConvLayerSpec, tile: TileConfig):
        """Choose the loop ordering and the per-segment step costs."""
        cs = tile.cluster_size
        folds = tile.folds_for(layer)
        k_iters = math.ceil(layer.k / tile.t_k) * math.ceil(layer.g / tile.t_g)
        n_iters = math.ceil(layer.n / tile.t_n)
        x_iters = math.ceil(layer.x_out / tile.t_x)
        y_iters = math.ceil(layer.y_out / tile.t_y)
        pixel_steps = n_iters * x_iters * y_iters
        if pixel_steps == 0 or k_iters == 0 or folds == 0:
            raise MappingError("degenerate layer/tile combination")

        self._configure_fabric(tile)

        # Two candidate loop orderings exist when the layer folds:
        #
        # - *phase* order (weight/input stationary): weights pinned per
        #   (k-group, fold) phase while all pixels stream; fold psums
        #   round-trip through the Global Buffer.
        # - *fold-inner* order (output stationary): psums stay in the RN
        #   accumulators while each step re-streams its fold weights
        #   through double-buffered stationary registers.
        #
        # The controller — like the mRNA mapper — evaluates both and runs
        # the cheaper one.
        w_unique, w_dests = self._weight_delivery(tile)
        w_cycles = self.dn.delivery_cycles(w_unique, w_dests)

        full_pixels_per_k = n_iters * x_iters
        steady_pixels_per_k = pixel_steps - full_pixels_per_k
        total_steps = k_iters * folds * pixel_steps

        def build_plan(fold_inner: bool):
            if fold_inner:
                dataflow = Dataflow.OUTPUT_STATIONARY
            else:
                dataflow = self.config.dataflow
                if dataflow is Dataflow.OUTPUT_STATIONARY:
                    dataflow = Dataflow.WEIGHT_STATIONARY
            roundtrip = self._needs_psum_roundtrip(folds, dataflow)
            costs = {
                (steady, tail): self._step_cost(
                    layer, tile, steady, tail, roundtrip,
                    weight_unique=w_unique if fold_inner else 0,
                    # sliding-window reuse needs the previous pixel step's
                    # operands still latched; with folds interleaved
                    # between pixel steps the registers have been
                    # overwritten `folds` times, so fold-inner ordering
                    # forfeits the forwarding discount
                    allow_forwarding=not (fold_inner and folds > 1),
                )
                for steady in (False, True)
                for tail in (False, True)
            }
            weight_loads = k_iters if fold_inner else k_iters * folds
            plan = [
                (costs[(False, False)], k_iters * (folds - 1) * full_pixels_per_k),
                (costs[(False, True)], k_iters * full_pixels_per_k),
                (costs[(True, False)], k_iters * (folds - 1) * steady_pixels_per_k),
                (costs[(True, True)], k_iters * steady_pixels_per_k),
            ]
            estimate = w_cycles * weight_loads + sum(
                self._step_cycles(cost, cs) * repeats
                for cost, repeats in plan if repeats > 0
            )
            return plan, weight_loads, estimate

        candidates = [build_plan(fold_inner=False)]
        if folds > 1 and self.rn.has_accumulators:
            candidates.append(build_plan(fold_inner=True))
        plan, weight_loads, _estimate = min(candidates, key=lambda item: item[2])
        return (cs, tile, plan, weight_loads, w_unique, w_dests, w_cycles,
                total_steps)

    # ------------------------------------------------------------------
    # pieces
    # ------------------------------------------------------------------
    def _configure_fabric(self, tile: TileConfig) -> None:
        clusters = [tile.cluster_size] * tile.num_clusters
        self.mn.configure_clusters(clusters)
        self.rn.configure_clusters(clusters)

    def _needs_psum_roundtrip(self, folds: int, dataflow: Dataflow) -> bool:
        if folds <= 1:
            return False
        if dataflow is Dataflow.OUTPUT_STATIONARY:
            return not self.rn.has_accumulators
        # weight/input stationary sweep all pixels between folds, so psums
        # cannot stay in the output accumulators.
        return True

    def _weight_delivery(self, tile: TileConfig) -> tuple:
        """(unique values, destinations) of one phase's stationary load."""
        unique = tile.cluster_size * tile.t_k * tile.t_g
        replicas = tile.t_n * tile.t_x * tile.t_y
        destinations = unique * replicas
        if not self.dn.supports_multicast:
            unique = destinations
        return unique, destinations

    def _account_weight_loads(
        self, unique: int, destinations: int, w_cycles: int, loads: int
    ) -> int:
        """Charge ``loads`` stationary deliveries; returns total cycles."""
        if loads <= 0:
            return 0
        self.dn.enqueue(unique, destinations)
        self._scale_last_delivery(unique, destinations, loads - 1)
        self.dn.skip_cycles(w_cycles * loads)
        self.gb.record_reads(unique * loads)
        return w_cycles * loads

    def _scale_last_delivery(self, unique: int, destinations: int, extra: int) -> None:
        """Replicate the activity of one recorded delivery ``extra`` times."""
        if extra <= 0:
            return
        switches = self.dn._switch_traversals(unique, destinations)
        wires = self.dn._wire_traversals(unique, destinations)
        self.dn.counters.add("dn_switch_traversals", switches * extra)
        self.dn.counters.add("dn_wire_traversals", wires * extra)
        self.dn.counters.add("dn_elements_sent", unique * extra)
        self.dn.record_fabric_traversals(unique, destinations, times=extra)
        self.dn._pending_slots += self.dn._bandwidth_slots(unique, destinations) * extra

    def _step_cost(
        self,
        layer: ConvLayerSpec,
        tile: TileConfig,
        steady: bool,
        fold_tail: bool,
        psum_roundtrip: bool,
        weight_unique: int = 0,
        allow_forwarding: bool = True,
    ) -> _StepCost:
        cs = tile.cluster_size
        nc = tile.num_clusters
        # Input uniqueness: the T_K filters of a cluster group share their
        # input window (multicast); distinct (g, n, x, y) clusters do not.
        input_clusters = tile.t_g * tile.t_n * tile.t_x * tile.t_y
        window = cs
        forwarded = 0
        if (steady and allow_forwarding and self.mn.forwarding
                and layer.r * layer.s > 1):
            # Sliding-window reuse: the window advances t_y * stride output
            # columns, so only the fresh receptive-field columns arrive
            # through the DN; the rest hop along the MN forwarding links.
            fresh_cols = min(tile.t_y * layer.stride, tile.t_s)
            fresh = tile.t_r * tile.t_c * fresh_cols
            fresh = min(fresh, window)
            forwarded = (window - fresh) * input_clusters
            window = fresh
        unique_inputs = window * input_clusters
        destinations = window * input_clusters * tile.t_k
        if not self.dn.supports_multicast:
            unique_inputs = destinations

        slots = unique_inputs + weight_unique
        psum_writebacks = 0
        if psum_roundtrip:
            if not fold_tail:
                psum_writebacks = nc
            # re-injection of the previous fold's psums through forwarders
            slots += nc

        outputs_completed = nc if fold_tail else 0
        return _StepCost(
            dn_slots=slots,
            unique_values=unique_inputs,
            destinations=destinations,
            forwarded=forwarded,
            psum_writebacks=psum_writebacks,
            outputs_completed=outputs_completed,
            weight_unique=weight_unique,
        )

    def _step_cycles(self, cost: _StepCost, cluster_size: int) -> int:
        delivery = self.dn.delivery_cycles(
            max(cost.dn_slots, 1), max(cost.destinations, 1)
        )
        reduction = 1 if self.rn.pipelined else self.rn.reduction_latency(cluster_size)
        drain = self.rn.output_cycles(cost.outputs_completed + cost.psum_writebacks)
        return max(1, delivery, reduction, drain)

    def _account_steps(
        self, cost: _StepCost, cs: int, nc: int, repeats: int
    ) -> None:
        """Record the activity of ``repeats`` identical steps."""
        step_cycles = self._step_cycles(cost, cs)
        self.dn.enqueue(max(cost.dn_slots, 1), max(cost.destinations, 1))
        self._scale_last_delivery(
            max(cost.dn_slots, 1), max(cost.destinations, 1), repeats - 1
        )
        self.dn.skip_cycles(step_cycles * repeats)
        self.gb.record_reads((cost.unique_values + cost.weight_unique) * repeats)
        # tier-boundary FIFO activity (GB->DN staging, RN->GB drain)
        self.counters.add("ctrl_fifo_pushes", cost.dn_slots * repeats)
        self.counters.add(
            "ctrl_fifo_pops",
            (cost.outputs_completed + cost.psum_writebacks) * repeats,
        )
        self.mn.record_multiplications(cs * nc * repeats)
        if cost.forwarded:
            self.mn.record_forwarding(cost.forwarded * repeats)
        with self.obs.profiler.phase("reduce"), component_scope("noc.reduction"):
            self.rn.record_cluster_reductions(cs, repeats * nc)
            if cost.psum_writebacks:
                self.mn.record_psum_injections(nc * repeats)
                self.rn.record_outputs(cost.psum_writebacks * repeats)
                self.gb.record_writes(cost.psum_writebacks * repeats)
            elif self.rn.has_accumulators:
                self.rn.record_accumulations(nc * repeats)
            if cost.outputs_completed:
                self.rn.record_outputs(cost.outputs_completed * repeats)
                self.gb.record_writes(cost.outputs_completed * repeats)

    def _charge_stalls(
        self,
        ledger: StallLedger,
        cs: int,
        load_cycles: int,
        segments: list,
        drain: int,
        dram_stall: int,
    ) -> None:
        """Attribute the layer's cycles to stall buckets.

        Called by the cycle-stepped reference and the closed-form vector
        kernel with identical aggregate inputs — the segment table and
        phase totals both paths already compute — so the two engine
        modes produce byte-identical ledgers by construction. The
        controller row is exhaustive (its charges sum to the layer's
        cycles with zero idle); the dn/mn/rn rows charge each tier's
        busy share of every step and leave the rest as idle.
        """
        charge = ledger.charge
        charge("controller", "weight_fill", LAYER_SETUP_CYCLES + load_cycles)
        charge("dn", "weight_fill", load_cycles)
        for cost, repeats, step_cycles in segments:
            delivery = self.dn.delivery_cycles(
                max(cost.dn_slots, 1), max(cost.destinations, 1)
            )
            reduction = (
                1 if self.rn.pipelined else self.rn.reduction_latency(cs)
            )
            out_drain = self.rn.output_cycles(
                cost.outputs_completed + cost.psum_writebacks
            )
            charge("controller", "compute_busy", repeats)
            stall = (step_cycles - 1) * repeats
            if stall > 0:
                # the slowest stage of max(delivery, reduction, drain)
                # owns the stall; ties resolve front-to-back
                if delivery == step_cycles:
                    bucket = "noc_distribution"
                elif reduction == step_cycles:
                    bucket = "noc_reduction"
                else:
                    bucket = "fifo_backpressure"
                charge("controller", bucket, stall)
            charge("dn", "noc_distribution", delivery * repeats)
            charge("mn", "compute_busy", repeats)
            charge("rn", "noc_reduction", max(reduction, out_drain) * repeats)
        # the final drain splits across the tiers it keeps in flight
        charge("controller", "pipeline_drain", drain)
        charge("dn", "pipeline_drain", self.dn.pipeline_latency)
        charge("mn", "pipeline_drain", 1)
        charge("rn", "pipeline_drain", self.rn.reduction_latency(cs))
        for component in ("controller", "dn", "mn", "rn"):
            charge(component, "dram_stall", dram_stall)

    def _charge_fifos(self, fabric, segments: list) -> None:
        """Record tier-boundary FIFO occupancy from the segment table.

        Like :meth:`_charge_stalls`, this is shared by the cycle-stepped
        walk and the closed-form vector kernel and is fed the identical
        segment table, so the two engine modes record byte-identical
        FIFO ledgers. Per segment the ``gb_dn`` staging FIFO sees the
        step's DN slots (anchored to ``ctrl_fifo_pushes``) and the
        ``rn_gb`` drain FIFO the completed psums/outputs (anchored to
        ``ctrl_fifo_pops``); the occupancy proxy is the per-step burst,
        capped at the configured capacity.
        """
        dn_capacity = self.config.dn_fifo_depth
        rn_capacity = self.config.rn_fifo_depth
        for cost, repeats, step_cycles in segments:
            window = step_cycles * repeats
            pushes = cost.dn_slots * repeats
            pops = (cost.outputs_completed + cost.psum_writebacks) * repeats
            fabric.record_fifo(
                "gb_dn", dn_capacity, pushes, pushes,
                min(cost.dn_slots, dn_capacity), window,
            )
            fabric.record_fifo(
                "rn_gb", rn_capacity, pops, pops,
                min(cost.outputs_completed + cost.psum_writebacks,
                    rn_capacity),
                window,
            )

    def _account_dram(self, layer: ConvLayerSpec, compute_cycles: int) -> int:
        """Move the layer footprint through DRAM; returns stall cycles."""
        with component_scope("memory.dram"):
            bpe = self.config.dtype.bytes_per_element
            weight_elems = layer.num_filters * layer.filter_size
            input_elems = layer.n * layer.g * layer.c * layer.x * layer.y
            output_elems = layer.num_outputs
            working_set = weight_elems + input_elems + output_elems
            reload_factor = 1
            if not self.gb.fits(working_set):
                reload_factor = math.ceil(
                    working_set / self.gb.half_capacity_elements
                )
            read_bytes = (weight_elems + input_elems) * bpe * reload_factor
            write_bytes = output_elems * bpe
            self.dram.record_read(read_bytes)
            self.dram.record_write(write_bytes)
            self.gb.record_fill(weight_elems + input_elems)
            transfer = self.dram.transfer_cycles(read_bytes + write_bytes)
            return self.gb.dram_stall_cycles(transfer, compute_cycles)

    def cycle(self) -> None:
        self._current_cycle += 1
