"""Sparse memory controller (paper Section IV-B, SIGMA-like execution).

The sparse controller runs GEMMs over compressed operands. Sparsity makes
the dot-product sizes *data-dependent*: each row of the stationary MK
matrix contributes only its nonzeros, so the controller packs whole rows
(filters) onto the multiplier fabric round by round, configures the
flexible reduction network with one variable-size cluster per packed row,
and streams the KN columns.

This dynamic packing is exactly what analytical models cannot capture
(Fig. 1c): the *distribution* of zeros determines how many rows fit per
round and how much of the fabric each round wastes. It is also the lever
of use case 3 — a scheduler that reorders rows (e.g. Largest Filter
First) packs rounds tighter and finishes in fewer of them.

Round timing
------------

For each round: a fabric reconfiguration cycle, the stationary load of the
round's nonzero weights through the DN, then one step per streamed column.
A column step delivers the **union** of the packed rows' column supports
(values shared by several rows multicast in one slot), multiplies, reduces
through the FAN/ART pipeline, and drains one output per packed row:

``step = max(1, ceil(|union support| / dn_bw), ceil(rows / rn_bw))``

Rows larger than the fabric fold across consecutive rounds; their partial
sums round-trip through the Global Buffer and are re-injected, adding one
DN slot and one write per continued row per column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config.hardware import HardwareConfig
from repro.errors import MappingError
from repro.memory.dram import Dram
from repro.memory.global_buffer import GlobalBuffer
from repro.noc.base import ClockedComponent
from repro.noc.distribution import DistributionNetwork
from repro.noc.multiplier import MultiplierNetwork
from repro.noc.reduction import ReductionNetwork
from repro.observability.telemetry.scopes import component_scope
from repro.tensors.sparse import BitmapMatrix, CsrMatrix, from_dense

#: fixed cycles for the Configuration Unit to program a GEMM's signals
GEMM_SETUP_CYCLES = 4
#: cycles to configure the Benes routing + FAN clusters for the first
#: round; subsequent reconfigurations overlap the previous round's
#: streaming (the Benes fabric is non-blocking, so SIGMA prepares the next
#: round's routes while the current one drains)
ROUND_RECONFIG_CYCLES = 1


@dataclass(frozen=True)
class RowChunk:
    """A contiguous slice of one stationary row's nonzeros.

    Unfolded rows are a single chunk (``is_final=True``); rows wider than
    the fabric split into several chunks whose psums accumulate across
    rounds.
    """

    row: int
    start: int
    length: int
    is_final: bool

    def __post_init__(self) -> None:
        if self.length < 1:
            raise MappingError("a row chunk needs at least one nonzero")


#: a round-builder maps (row_nnz, fabric capacity) -> rounds of chunks
RoundBuilder = Callable[[np.ndarray, int], List[List[RowChunk]]]


def pack_rows_in_order(
    row_nnz: np.ndarray, capacity: int, order: Optional[Sequence[int]] = None
) -> List[List[RowChunk]]:
    """Greedy sequential packing of whole rows in a given issue order.

    Rows that fit the fabric are atomic: when the next row does not fit in
    the remaining capacity, the round closes (the source of the
    fragmentation that scheduling policies attack). Rows *wider* than the
    whole fabric must fold regardless, so their chunks stream continuously
    — each chunk fills whatever capacity the current round still has —
    with partial sums accumulating across rounds.
    """
    rounds: List[List[RowChunk]] = []
    current: List[RowChunk] = []
    free = capacity
    if order is None:
        order = range(len(row_nnz))
    for row in (int(r) for r in order):
        nnz = int(row_nnz[row])
        if nnz == 0:
            continue
        if nnz <= capacity:
            if nnz > free:
                rounds.append(current)
                current, free = [], capacity
            current.append(RowChunk(row, 0, nnz, True))
            free -= nnz
            continue
        # oversized row: stream chunks through the remaining capacity
        offset = 0
        while offset < nnz:
            if free == 0:
                rounds.append(current)
                current, free = [], capacity
            chunk = min(free, nnz - offset)
            current.append(RowChunk(row, offset, chunk, offset + chunk >= nnz))
            free -= chunk
            offset += chunk
    if current:
        rounds.append(current)
    return rounds


def natural_order_rounds(row_nnz: np.ndarray, capacity: int) -> List[List[RowChunk]]:
    """The paper's *No Scheduling* (NS) packing: rows in natural order."""
    return pack_rows_in_order(row_nnz, capacity)


@dataclass(frozen=True)
class SparseRoundStats:
    """Per-round telemetry used by the scheduling study (Fig. 9)."""

    rows: int
    nnz: int
    unique_inputs: int
    cycles: int
    utilization: float


@dataclass(frozen=True)
class SparseRunResult:
    """Summary of one sparse GEMM execution."""

    cycles: int
    effective_macs: int
    dense_macs: int
    outputs: int
    rounds: int
    mapping_utilization: float
    multiplier_utilization: float
    round_stats: Tuple[SparseRoundStats, ...]

    @property
    def ops_saved_fraction(self) -> float:
        """Share of dense multiply work skipped thanks to sparsity."""
        if self.dense_macs == 0:
            return 0.0
        return 1.0 - self.effective_macs / self.dense_macs


class SparseController(ClockedComponent):
    """Bitmap/CSR GEMM orchestration with dynamic cluster packing."""

    def __init__(
        self,
        config: HardwareConfig,
        dn: DistributionNetwork,
        mn: MultiplierNetwork,
        rn: ReductionNetwork,
        gb: GlobalBuffer,
        dram: Dram,
        name: str = "sparse-controller",
    ) -> None:
        super().__init__(name)
        if not rn.variable_clusters:
            raise MappingError(
                "the sparse controller needs a variable-cluster RN (ART/FAN)"
            )
        self.config = config
        self.dn = dn
        self.mn = mn
        self.rn = rn
        self.gb = gb
        self.dram = dram

    # ------------------------------------------------------------------
    def run_spmm(
        self,
        stationary: Union[np.ndarray, BitmapMatrix, CsrMatrix],
        n_cols: int,
        round_builder: Optional[RoundBuilder] = None,
        streaming: Optional[np.ndarray] = None,
    ) -> SparseRunResult:
        """Simulate ``stationary (M x K, sparse) @ streaming (K x n_cols)``.

        ``round_builder`` selects the filter-scheduling policy; ``None``
        uses the natural-order (NS) packing.

        Passing the actual ``streaming`` operand enables SIGMA's
        dual-sided sparsity: per column, only the values whose row index
        lies in the round's support **and is nonzero** are delivered and
        multiplied (ReLU-sparse activations shrink both traffic and
        effective compute). With ``streaming=None`` the KN operand is
        assumed dense, the Table V validation configuration.
        """
        if n_cols < 1:
            raise MappingError("the streaming matrix needs at least one column")
        if streaming is not None:
            streaming = np.asarray(streaming)
            if streaming.ndim != 2 or streaming.shape[1] != n_cols:
                raise MappingError(
                    f"streaming operand shape {streaming.shape} disagrees "
                    f"with n_cols={n_cols}"
                )
        obs = self.obs
        with obs.profiler.phase("map"):
            csr = self._as_csr(stationary)
            if streaming is not None and streaming.shape[0] != csr.shape[1]:
                raise MappingError(
                    f"streaming operand has {streaming.shape[0]} rows but the "
                    f"stationary K dimension is {csr.shape[1]}"
                )
            row_nnz = csr.row_nnz()
            builder = round_builder or natural_order_rounds
            rounds = builder(row_nnz, self.mn.num_ms)
            self._validate_rounds(rounds, row_nnz)

        m_rows, k_dim = csr.shape
        dense_macs = m_rows * k_dim * n_cols
        total_nnz = int(row_nnz.sum())
        outputs = m_rows * n_cols

        b_mask = None
        if streaming is not None:
            b_mask = streaming != 0
            # dual-sided sparsity: a multiply happens only where both the
            # stationary weight and the streamed value are nonzero
            a_mask = csr.to_dense() != 0
            effective_macs = int((a_mask.astype(np.int64) @
                                  b_mask.astype(np.int64)).sum())
        else:
            effective_macs = total_nnz * n_cols

        tracer = obs.tracer
        base = obs.base
        ledger = obs.stalls
        self.counters.add("ctrl_gemms_run", 1)
        self.counters.add("ctrl_metadata_elements", csr.nnz)
        cycles = GEMM_SETUP_CYCLES
        if ledger is not None:
            ledger.charge("controller", "weight_fill", GEMM_SETUP_CYCLES)
        if tracer.enabled:
            tracer.span("CTRL:setup", self.name, base, base + cycles)
        round_stats: List[SparseRoundStats] = []
        busy_ms_cycles = 0
        mapped_nnz_total = 0

        for index, chunks in enumerate(rounds):
            if tracer.enabled:
                tracer.begin(
                    f"round[{index}]", self.name, base + cycles,
                    rows=len(chunks),
                )
            stats = self._run_round(
                csr, chunks, n_cols, first=index == 0, b_mask=b_mask,
                start=cycles,
            )
            round_stats.append(stats)
            cycles += stats.cycles
            if tracer.enabled:
                tracer.end(
                    base + cycles,
                    nnz=stats.nnz,
                    utilization=round(stats.utilization, 6),
                )
            busy_ms_cycles += stats.nnz * n_cols
            mapped_nnz_total += stats.nnz
            obs.sample(cycles)

        with obs.profiler.phase("drain"):
            # final pipeline drain of the deepest in-flight reduction
            if rounds:
                max_cluster = max(
                    max(chunk.length for chunk in chunks) for chunks in rounds
                )
                drain = (self.dn.pipeline_latency + 1
                         + self.rn.reduction_latency(max_cluster))
                if tracer.enabled:
                    tracer.span(
                        "CTRL:pipeline-drain", self.name, base + cycles,
                        base + cycles + drain,
                    )
                cycles += drain
                if ledger is not None:
                    ledger.charge("controller", "pipeline_drain", drain)

            dram_stall = self._account_dram(csr, n_cols, cycles)
            if tracer.enabled and dram_stall:
                tracer.span(
                    "DRAM:stall", self.dram.name, base + cycles,
                    base + cycles + dram_stall,
                )
            cycles += dram_stall
            if ledger is not None:
                ledger.charge("controller", "dram_stall", dram_stall)
            obs.sample(cycles)

        mapping_util = (
            mapped_nnz_total / (self.mn.num_ms * len(rounds)) if rounds else 0.0
        )
        ms_util = busy_ms_cycles / (self.mn.num_ms * cycles) if cycles else 0.0
        self._current_cycle += cycles
        self.counters.add("ctrl_cycles", cycles)
        return SparseRunResult(
            cycles=cycles,
            effective_macs=effective_macs,
            dense_macs=dense_macs,
            outputs=outputs,
            rounds=len(rounds),
            mapping_utilization=mapping_util,
            multiplier_utilization=ms_util,
            round_stats=tuple(round_stats),
        )

    # ------------------------------------------------------------------
    def _run_round(
        self, csr: CsrMatrix, chunks: Sequence[RowChunk], n_cols: int,
        first: bool = False, b_mask=None, start: int = 0,
    ) -> SparseRoundStats:
        obs = self.obs
        tracer = obs.tracer
        clock = obs.base + start + (ROUND_RECONFIG_CYCLES if first else 0)
        nnz = sum(chunk.length for chunk in chunks)
        cluster_sizes = [chunk.length for chunk in chunks]
        self.mn.configure_clusters(cluster_sizes)
        self.rn.configure_clusters(cluster_sizes)

        # union of the packed rows' column supports = unique streaming
        # elements needed per column step (multicast collapses sharing)
        support: set = set()
        for chunk in chunks:
            cols, _vals = csr.row(chunk.row)
            support.update(int(c) for c in cols[chunk.start : chunk.start + chunk.length])
        unique = len(support)

        continued = sum(1 for chunk in chunks if not chunk.is_final)
        resumed = sum(1 for chunk in chunks if chunk.start > 0)

        # stationary load of the round's weights (plus compressed metadata)
        with obs.profiler.phase("distribute"), component_scope("noc.distribution"):
            load_cycles = self.dn.record_delivery(nnz, nnz)
            self.gb.record_reads(nnz)
            self.counters.add("ctrl_stationary_loads", nnz)
        if tracer.enabled and load_cycles:
            tracer.span(
                "DN:stationary-load", self.dn.name, clock, clock + load_cycles,
                nonzeros=nnz,
            )
        clock += load_cycles

        # column streaming
        with obs.profiler.phase("compute"), component_scope("engine"):
            drain = self.rn.output_cycles(len(chunks))
            if b_mask is not None and support:
                # dual-sided sparsity: per column only the nonzero streamed
                # values inside the round's support are delivered
                support_idx = np.fromiter(support, dtype=np.int64)
                unique_per_col = b_mask[support_idx, :].sum(axis=0)
                per_col = np.maximum(
                    np.ceil(unique_per_col / self.dn.bandwidth).astype(np.int64), 1
                )
                stream_cycles = int(np.maximum(per_col, drain).sum())
                step_cycles = max(1, int(per_col.max(initial=1)), drain)
                unique = int(round(float(unique_per_col.mean()))) if n_cols else 0
                slots = max(unique, 1)
            else:
                slots = unique
                delivery = self.dn.delivery_cycles(max(slots, 1), max(slots, 1))
                step_cycles = max(1, delivery, drain)
                stream_cycles = step_cycles * n_cols

            # folded rows: the previous chunk's partial outputs are re-read
            # from the GB and merged into this chunk's outputs at the round
            # boundary (one add per column per resumed row)
            merge_cycles = 0
            if resumed:
                merge_reads = resumed * n_cols
                merge_cycles = math.ceil(merge_reads / self.dn.bandwidth) + math.ceil(
                    merge_reads / self.rn.bandwidth
                )
                self.gb.record_reads(merge_reads)
                self.rn.record_accumulations(merge_reads)

            # batched activity for all column steps of the round
            self.dn.enqueue(max(slots, 1), max(slots, 1))
            self._scale_delivery(max(slots, 1), n_cols - 1)
            self.dn.skip_cycles(stream_cycles)
            self.gb.record_reads(unique * n_cols)
            if b_mask is not None:
                round_mults = 0
                for chunk in chunks:
                    cols, _vals = csr.row(chunk.row)
                    chunk_cols = cols[chunk.start : chunk.start + chunk.length]
                    round_mults += int(b_mask[chunk_cols, :].sum())
            else:
                round_mults = nnz * n_cols
            self.mn.record_multiplications(round_mults)
        with obs.profiler.phase("reduce"), component_scope("noc.reduction"):
            for size in cluster_sizes:
                self.rn.record_cluster_reductions(int(size), n_cols)
            self.rn.record_outputs(len(chunks) * n_cols)
            self.gb.record_writes(len(chunks) * n_cols)
        self.counters.add("ctrl_fifo_pushes", max(slots, 1) * n_cols)
        self.counters.add("ctrl_fifo_pops", len(chunks) * n_cols)
        fabric = obs.fabric
        if fabric is not None:
            # tier-boundary FIFO occupancy for the round's column stream
            fabric.record_fifo(
                "gb_dn", self.config.dn_fifo_depth,
                max(slots, 1) * n_cols, max(slots, 1) * n_cols,
                min(max(slots, 1), self.config.dn_fifo_depth) if n_cols else 0,
                stream_cycles,
            )
            fabric.record_fifo(
                "rn_gb", self.config.rn_fifo_depth,
                len(chunks) * n_cols, len(chunks) * n_cols,
                min(len(chunks), self.config.rn_fifo_depth) if n_cols else 0,
                stream_cycles,
            )
        if continued:
            self.counters.add("ctrl_psum_spills", continued * n_cols)

        if tracer.enabled and stream_cycles:
            stream_end = clock + stream_cycles
            tracer.span(
                "DN:stream", self.dn.name, clock, stream_end,
                columns=n_cols, slots_per_step=slots, step_cycles=step_cycles,
            )
            tracer.span(
                "MN:multiply", self.mn.name, clock, stream_end,
                multiplications=round_mults,
            )
            tracer.span(
                "RN:reduce", self.rn.name, clock, stream_end,
                outputs=len(chunks) * n_cols,
            )
        clock += stream_cycles
        if tracer.enabled and merge_cycles:
            tracer.span(
                "RN:merge", self.rn.name, clock, clock + merge_cycles,
                resumed_rows=resumed,
            )

        ledger = obs.stalls
        if ledger is not None:
            charge = ledger.charge
            # reconfig + stationary fill open the round
            charge(
                "controller", "weight_fill",
                (ROUND_RECONFIG_CYCLES if first else 0) + load_cycles,
            )
            if b_mask is not None and support:
                # dual-sided streaming: per column the step is
                # max(per_col delivery, output drain) — one useful cycle,
                # the rest charged to whichever side bound the column
                costs = np.maximum(per_col, drain)
                dn_bound = per_col >= drain
                charge("controller", "compute_busy", int(per_col.size))
                charge(
                    "controller", "noc_distribution",
                    int((costs[dn_bound] - 1).sum()),
                )
                charge(
                    "controller", "fifo_backpressure",
                    int((costs[~dn_bound] - 1).sum()),
                )
            else:
                charge("controller", "compute_busy", n_cols)
                stall = (step_cycles - 1) * n_cols
                if stall > 0:
                    bucket = (
                        "noc_distribution" if delivery >= drain
                        else "fifo_backpressure"
                    )
                    charge("controller", bucket, stall)
            # folded-row psum merge runs through the reduction tier
            charge("controller", "noc_reduction", merge_cycles)

        total = (
            (ROUND_RECONFIG_CYCLES if first else 0)
            + load_cycles
            + stream_cycles
            + merge_cycles
        )
        return SparseRoundStats(
            rows=len(chunks),
            nnz=nnz,
            unique_inputs=unique,
            cycles=total,
            utilization=nnz / self.mn.num_ms,
        )

    def _scale_delivery(self, slots: int, extra: int) -> None:
        if extra <= 0:
            return
        switches = self.dn._switch_traversals(slots, slots)
        wires = self.dn._wire_traversals(slots, slots)
        self.dn.counters.add("dn_switch_traversals", switches * extra)
        self.dn.counters.add("dn_wire_traversals", wires * extra)
        self.dn.counters.add("dn_elements_sent", slots * extra)
        self.dn.record_fabric_traversals(slots, slots, times=extra)
        self.dn._pending_slots += self.dn._bandwidth_slots(slots, slots) * extra

    # ------------------------------------------------------------------
    def _as_csr(self, matrix) -> CsrMatrix:
        if isinstance(matrix, CsrMatrix):
            return matrix
        if isinstance(matrix, BitmapMatrix):
            return from_dense(matrix.to_dense(), "csr")
        array = np.asarray(matrix)
        if array.ndim != 2:
            raise MappingError(
                f"the stationary operand must be a 2-D matrix, got shape {array.shape}"
            )
        return from_dense(array, "csr")

    def _validate_rounds(
        self, rounds: List[List[RowChunk]], row_nnz: np.ndarray
    ) -> None:
        covered = {}
        for chunks in rounds:
            if not chunks:
                raise MappingError("a scheduling round cannot be empty")
            used = sum(chunk.length for chunk in chunks)
            if used > self.mn.num_ms:
                raise MappingError(
                    f"round maps {used} nonzeros onto {self.mn.num_ms} MSs"
                )
            for chunk in chunks:
                covered[chunk.row] = covered.get(chunk.row, 0) + chunk.length
        for row, nnz in enumerate(int(v) for v in row_nnz):
            if covered.get(row, 0) != nnz:
                raise MappingError(
                    f"schedule covers {covered.get(row, 0)} of row {row}'s "
                    f"{nnz} nonzeros"
                )

    def _account_dram(self, csr: CsrMatrix, n_cols: int, compute_cycles: int) -> int:
        bpe = self.config.dtype.bytes_per_element
        metadata_bytes = csr.metadata_bits() // 8
        read_bytes = csr.nnz * bpe + csr.shape[1] * n_cols * bpe + metadata_bytes
        write_bytes = csr.shape[0] * n_cols * bpe
        self.dram.record_read(read_bytes)
        self.dram.record_write(write_bytes)
        self.gb.record_fill(csr.nnz + csr.shape[1] * n_cols)
        transfer = self.dram.transfer_cycles(read_bytes + write_bytes)
        return self.gb.dram_stall_cycles(transfer, compute_cycles)

    def cycle(self) -> None:
        self._current_cycle += 1
