"""First-order off-chip DRAM model.

The paper uses DRAMsim3 behind a double-buffered Global Buffer; because
prefetching hides latency whenever the compute phase is longer than the
transfer, the first-order quantities that matter are *bytes moved* and
*sustained bandwidth*. This model tracks both, plus a row-buffer hit/miss
latency estimate for the statistics report.
"""

from __future__ import annotations

import math

from repro.config.hardware import DramConfig
from repro.noc.base import ClockedComponent


class Dram(ClockedComponent):
    """Bandwidth/latency model of the off-chip memory."""

    def __init__(self, config: DramConfig, clock_ghz: float, name: str = "dram") -> None:
        super().__init__(name)
        self.config = config
        # GB/s divided by Gcycle/s gives bytes per accelerator cycle.
        self.bytes_per_cycle = config.bandwidth_gbps / clock_ghz
        self._last_row: int = -1

    def transfer_cycles(self, num_bytes: int) -> int:
        """Cycles to stream ``num_bytes`` at sustained bandwidth."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        if num_bytes == 0:
            return 0
        return max(1, math.ceil(num_bytes / self.bytes_per_cycle))

    def record_read(self, num_bytes: int, address: int = 0) -> None:
        self._record("dram_bytes_read", num_bytes, address)

    def record_write(self, num_bytes: int, address: int = 0) -> None:
        self._record("dram_bytes_written", num_bytes, address)

    def _record(self, counter: str, num_bytes: int, address: int) -> None:
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        if num_bytes == 0:
            return
        self.counters.add(counter, num_bytes)
        row = address // self.config.row_buffer_bytes
        if row == self._last_row:
            self.counters.add("dram_row_hits", 1)
        else:
            self.counters.add("dram_row_misses", 1)
            self._last_row = row

    def new_layer(self) -> None:
        """Forget the open row at a layer boundary.

        Each layer starts with a cold row buffer so its hit/miss counters
        (and everything else in its report) are independent of which
        layer — if any — ran before it. The parallel runner and the
        simulation-result cache rely on this order-independence.
        """
        self._last_row = -1

    def access_latency(self, address: int) -> int:
        """Latency of a demand access given row-buffer state."""
        row = address // self.config.row_buffer_bytes
        if row == self._last_row:
            return self.config.row_hit_latency_cycles
        return self.config.access_latency_cycles

    def cycle(self) -> None:
        self._current_cycle += 1

    def reset(self) -> None:
        super().reset()
        self._last_row = -1
