"""On-chip Global Buffer (GB).

A banked SRAM with independent read ports feeding the distribution network
and write ports draining the reduction network. The read bandwidth in
elements/cycle is the headline parameter of the paper's Fig. 1b sweep; the
GB also dominates the area of every modeled accelerator (Fig. 5c).

The buffer is double-buffered against DRAM: while one half serves the
fabric, the other prefetches the next tile. :meth:`dram_stall_cycles`
exposes the only visible timing effect — transfers longer than the compute
phase they hide behind.
"""

from __future__ import annotations

import math

from repro.config.hardware import DataType
from repro.errors import ConfigurationError
from repro.noc.base import ClockedComponent


class GlobalBuffer(ClockedComponent):
    """Banked on-chip SRAM with element-granularity activity counters."""

    def __init__(
        self,
        size_kb: int,
        banks: int,
        read_bandwidth: int,
        write_bandwidth: int,
        dtype: DataType,
        name: str = "gb",
    ) -> None:
        super().__init__(name)
        if size_kb < 1:
            raise ConfigurationError("GB size must be >= 1 KB")
        if banks < 1:
            raise ConfigurationError("GB needs at least one bank")
        if read_bandwidth < 1 or write_bandwidth < 1:
            raise ConfigurationError("GB port bandwidths must be >= 1")
        self.size_kb = size_kb
        self.banks = banks
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = write_bandwidth
        self.dtype = dtype

    @property
    def capacity_elements(self) -> int:
        return self.size_kb * 1024 // self.dtype.bytes_per_element

    @property
    def half_capacity_elements(self) -> int:
        """Capacity of one double-buffer half."""
        return self.capacity_elements // 2

    def fits(self, working_set_elements: int) -> bool:
        """Whether a layer working set fits one double-buffer half."""
        return working_set_elements <= self.half_capacity_elements

    # ---- activity ------------------------------------------------------
    def record_reads(self, elements: int) -> None:
        if elements < 0:
            raise ValueError("read count must be non-negative")
        self.counters.add("gb_reads", elements)

    def record_writes(self, elements: int) -> None:
        if elements < 0:
            raise ValueError("write count must be non-negative")
        self.counters.add("gb_writes", elements)

    def record_fill(self, elements: int) -> None:
        """Elements written into the GB by the DRAM prefetcher."""
        if elements < 0:
            raise ValueError("fill count must be non-negative")
        self.counters.add("gb_fills", elements)
        tracer = self.obs.tracer
        if tracer.enabled:
            # the prefetch overlaps the layer (double buffering), so mark
            # it as an instant at the layer's start rather than a window
            tracer.instant("GB:fill", self.name, self.obs.base,
                           elements=elements)

    # ---- timing helpers -------------------------------------------------
    def read_cycles(self, elements: int) -> int:
        return math.ceil(elements / self.read_bandwidth) if elements else 0

    def write_cycles(self, elements: int) -> int:
        return math.ceil(elements / self.write_bandwidth) if elements else 0

    def dram_stall_cycles(self, transfer_cycles: int, compute_cycles: int) -> int:
        """Stall cycles left over after double buffering hides a transfer."""
        return max(0, transfer_cycles - compute_cycles)

    def cycle(self) -> None:
        self._current_cycle += 1
