"""Tile (mapping) configuration.

A tile is the paper's ``Tile(T_R, T_S, T_C, T_G, T_K, T_N, T_X', T_Y')``:
``T_R * T_S * T_C`` defines the dot-product (virtual neuron / cluster) size
mapped onto the multiplier network, while
``T_G * T_K * T_N * T_X' * T_Y'`` defines how many such clusters run in
parallel. When the cluster is smaller than the full filter
(``T_R*T_S*T_C < R*S*C``), the architecture must *fold*: the dot product is
processed in several sequential steps whose partial results accumulate at
the reduction-network boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config.layer import ConvLayerSpec, GemmSpec
from repro.errors import ConfigurationError, MappingError


@dataclass(frozen=True)
class TileConfig:
    """One mapping of a convolution layer onto the multiplier fabric."""

    t_r: int = 1
    t_s: int = 1
    t_c: int = 1
    t_g: int = 1
    t_k: int = 1
    t_n: int = 1
    t_x: int = 1
    t_y: int = 1

    def __post_init__(self) -> None:
        for field_name in ("t_r", "t_s", "t_c", "t_g", "t_k", "t_n", "t_x", "t_y"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"TileConfig.{field_name} must be a positive int, got {value!r}"
                )

    @property
    def cluster_size(self) -> int:
        """Multipliers used by one dot-product cluster (virtual neuron)."""
        return self.t_r * self.t_s * self.t_c

    @property
    def num_clusters(self) -> int:
        """Clusters mapped simultaneously onto the fabric."""
        return self.t_g * self.t_k * self.t_n * self.t_x * self.t_y

    @property
    def multipliers_used(self) -> int:
        return self.cluster_size * self.num_clusters

    def validate_for(self, layer: ConvLayerSpec, num_ms: int) -> None:
        """Reject tiles that do not fit the layer or the hardware."""
        if self.multipliers_used > num_ms:
            raise MappingError(
                f"tile needs {self.multipliers_used} multipliers but the "
                f"fabric has {num_ms}"
            )
        pairs = (
            ("t_r", self.t_r, layer.r),
            ("t_s", self.t_s, layer.s),
            ("t_c", self.t_c, layer.c),
            ("t_g", self.t_g, layer.g),
            ("t_k", self.t_k, layer.k),
            ("t_n", self.t_n, layer.n),
            ("t_x", self.t_x, layer.x_out),
            ("t_y", self.t_y, layer.y_out),
        )
        for name, tile_value, layer_value in pairs:
            if tile_value > layer_value:
                raise MappingError(
                    f"tile {name}={tile_value} exceeds the layer dimension "
                    f"({layer_value})"
                )

    def folds_for(self, layer: ConvLayerSpec) -> int:
        """Sequential steps needed to cover one full filter with this tile."""
        return (
            math.ceil(layer.r / self.t_r)
            * math.ceil(layer.s / self.t_s)
            * math.ceil(layer.c / self.t_c)
        )

    def iterations_for(self, layer: ConvLayerSpec) -> int:
        """Times the cluster set must be re-mapped to cover all outputs."""
        return (
            math.ceil(layer.g / self.t_g)
            * math.ceil(layer.k / self.t_k)
            * math.ceil(layer.n / self.t_n)
            * math.ceil(layer.x_out / self.t_x)
            * math.ceil(layer.y_out / self.t_y)
        )


def _divisors_descending(value: int, limit: int) -> list:
    """Divisors of ``value`` that are <= ``limit``, largest first."""
    return [d for d in range(min(value, limit), 0, -1) if value % d == 0]


def _candidate_channel_slices(c: int, budget: int) -> list:
    """Candidate ``t_c`` values: divisors of C (fold-exact) plus the largest
    slice that fits (which may leave a ragged final fold)."""
    candidates = set(_divisors_descending(c, budget))
    candidates.add(min(c, budget))
    return sorted(candidates, reverse=True)


def _score_tile(
    layer: ConvLayerSpec, tile: TileConfig, bandwidth: int, forwarding: bool
) -> float:
    """Estimated runtime of a tile: steps x per-step delivery stall.

    This mirrors the dense controller's weight-stationary step model (the
    mRNA-style mapper optimizes the same objective): a step must deliver
    the fresh receptive-field slice of every *input-distinct* cluster
    (the T_K filters of a group multicast and cost nothing extra), plus a
    psum re-injection per cluster when folding.
    """
    folds = tile.folds_for(layer)
    steps = tile.iterations_for(layer) * folds
    input_clusters = tile.t_g * tile.t_n * tile.t_x * tile.t_y
    window = tile.cluster_size
    if forwarding and layer.r * layer.s > 1:
        fresh_cols = min(tile.t_y * layer.stride, tile.t_s)
        fresh = min(tile.t_r * tile.t_c * fresh_cols, window)
    else:
        fresh = window
    slots = fresh * input_clusters + (tile.num_clusters if folds > 1 else 0)
    step_cycles = max(1.0, math.ceil(slots / bandwidth))
    return steps * step_cycles


def generate_conv_tile(
    layer: ConvLayerSpec,
    num_ms: int,
    bandwidth: int = 0,
    forwarding: bool = True,
    power_of_two_clusters: bool = False,
) -> TileConfig:
    """Choose a tile that minimizes estimated runtime, in the spirit of mRNA.

    The mapper enumerates how to split the multiplier budget between the
    dot-product slice (``t_r * t_s * t_c``) and parallel clusters
    (filters first — they share their input window through DN multicast —
    then output pixels), scoring each candidate with the controller's
    step-delivery model. ``bandwidth`` defaults to the fabric width.
    """
    if num_ms < 1:
        raise MappingError("cannot tile onto an empty fabric")
    bandwidth = bandwidth or num_ms

    window = layer.r * layer.s
    if power_of_two_clusters:
        # plain reduction trees only reduce power-of-two clusters: map the
        # dot product along channels only, in power-of-two slices
        candidates = []
        t_c = 1
        while t_c * 2 <= min(layer.c, num_ms):
            t_c *= 2
        while t_c >= 1:
            budget = num_ms // t_c
            t_k = min(layer.k, budget)
            budget //= max(t_k, 1)
            t_y = min(layer.y_out, budget)
            candidates.append(TileConfig(t_c=t_c, t_k=t_k, t_y=max(t_y, 1)))
            t_c //= 2
            if len(candidates) >= 4:
                break
        best = None
        best_score = None
        for tile in candidates:
            tile.validate_for(layer, num_ms)
            score = _score_tile(layer, tile, bandwidth, forwarding=False)
            if best_score is None or score < best_score:
                best, best_score = tile, score
        return best

    candidates = []
    if window > num_ms:
        # degenerate: the spatial window alone exceeds the fabric; slice rows
        t_r = max(1, num_ms // layer.s)
        t_s = layer.s if t_r * layer.s <= num_ms else num_ms
        t_r = t_r if t_r * t_s <= num_ms else 1
        candidates.append(TileConfig(t_r=min(t_r, layer.r), t_s=min(t_s, layer.s)))
    else:
        for t_c in _candidate_channel_slices(layer.c, num_ms // window):
            cluster = window * t_c
            budget = num_ms // cluster
            t_k = min(layer.k, budget)
            budget //= max(t_k, 1)
            t_y = min(layer.y_out, budget)
            budget //= max(t_y, 1)
            t_x = min(layer.x_out, budget)
            budget //= max(t_x, 1)
            t_g = min(layer.g, budget)
            budget //= max(t_g, 1)
            t_n = min(layer.n, max(budget, 1))
            candidates.append(
                TileConfig(
                    t_r=layer.r, t_s=layer.s, t_c=t_c, t_g=t_g,
                    t_k=t_k, t_n=t_n, t_x=t_x, t_y=t_y,
                )
            )
    # GEMM-style candidates: fold the spatial window and slice channels
    # only (cluster = t_c). These win when the receptive-field window does
    # not divide the fabric cleanly.
    if window > 1:
        for t_c in _candidate_channel_slices(layer.c, num_ms):
            budget = num_ms // t_c
            t_k = min(layer.k, budget)
            budget //= max(t_k, 1)
            t_y = min(layer.y_out, budget)
            budget //= max(t_y, 1)
            t_g = min(layer.g, max(budget, 1))
            candidates.append(
                TileConfig(t_c=t_c, t_g=t_g, t_k=t_k, t_y=t_y)
            )

    best = None
    best_score = None
    for tile in candidates:
        tile.validate_for(layer, num_ms)
        score = _score_tile(layer, tile, bandwidth, forwarding)
        if best_score is None or score < best_score or (
            score == best_score and tile.cluster_size > best.cluster_size
        ):
            best, best_score = tile, score
    return best


def save_tile_file(tiles: dict, path) -> None:
    """Write per-layer tile configurations as an INI file.

    Each section is a layer name and holds the eight tile parameters —
    the per-layer tile configuration the paper's modified models reference
    next to the hardware ``.cfg`` file.
    """
    import configparser

    parser = configparser.ConfigParser()
    for layer_name, tile in tiles.items():
        parser[layer_name] = {
            "t_r": str(tile.t_r), "t_s": str(tile.t_s), "t_c": str(tile.t_c),
            "t_g": str(tile.t_g), "t_k": str(tile.t_k), "t_n": str(tile.t_n),
            "t_x": str(tile.t_x), "t_y": str(tile.t_y),
        }
    with open(path, "w", encoding="utf-8") as handle:
        parser.write(handle)


def load_tile_file(path) -> dict:
    """Read a per-layer tile configuration file back into a dict."""
    import configparser

    from repro.errors import ConfigurationError

    parser = configparser.ConfigParser()
    read = parser.read(path)
    if not read:
        raise ConfigurationError(f"tile file not found: {path}")
    tiles = {}
    for layer_name in parser.sections():
        section = parser[layer_name]
        try:
            tiles[layer_name] = TileConfig(
                **{key: int(section.get(key, 1))
                   for key in ("t_r", "t_s", "t_c", "t_g", "t_k", "t_n",
                                "t_x", "t_y")}
            )
        except ValueError as exc:
            raise ConfigurationError(
                f"bad tile values for layer {layer_name!r}: {exc}"
            ) from exc
    return tiles


def generate_gemm_tile(
    gemm: GemmSpec, num_ms: int, bandwidth: int = 0
) -> TileConfig:
    """Tile a GEMM: the reduction dim maps to ``t_c`` (cluster size), the
    stationary rows to ``t_k`` and the streamed columns to ``t_y``."""
    if num_ms < 1:
        raise MappingError("cannot tile onto an empty fabric")
    layer = ConvLayerSpec(
        r=1, s=1, c=gemm.k, k=gemm.m, x=1, y=gemm.n, name=gemm.name or "gemm"
    )
    tile = generate_conv_tile(layer, num_ms, bandwidth, forwarding=False)
    return TileConfig(t_c=tile.cluster_size, t_k=tile.t_k, t_y=tile.t_y)
