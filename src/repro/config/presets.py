"""The reference accelerators of Table IV.

===================  ========  ==========  ==========
Component            TPU-like  MAERI-like  SIGMA-like
===================  ========  ==========  ==========
Memory Controller    Dense     Dense       Sparse
Distribution Net     PoPN      TN          BN
Multiplier Net       LMN       LMN         DMN
Reduce Net           LRN       ART         FAN
===================  ========  ==========  ==========
"""

from __future__ import annotations

from typing import Optional

from repro.config.hardware import (
    ControllerKind,
    Dataflow,
    DistributionKind,
    HardwareConfig,
    MultiplierKind,
    ReductionKind,
)


def tpu_like(
    num_pes: int = 256, bandwidth: Optional[int] = None, **overrides
) -> HardwareConfig:
    """A TPU-like output-stationary systolic array.

    ``num_pes`` must be a perfect square (the PE grid). The paper always
    runs the TPU with full bandwidth, which is the default here.
    """
    if bandwidth is None:
        bandwidth = num_pes
    kwargs = dict(
        num_ms=num_pes,
        dn_bandwidth=bandwidth,
        rn_bandwidth=bandwidth,
        controller=ControllerKind.DENSE,
        distribution=DistributionKind.POINT_TO_POINT,
        multiplier=MultiplierKind.LINEAR,
        reduction=ReductionKind.LINEAR,
        dataflow=Dataflow.OUTPUT_STATIONARY,
        name="tpu-like",
    )
    kwargs.update(overrides)
    return HardwareConfig(**kwargs)


def maeri_like(num_ms: int = 256, bandwidth: int = 128, **overrides) -> HardwareConfig:
    """A MAERI-like flexible dense accelerator (TN + LMN + ART)."""
    kwargs = dict(
        num_ms=num_ms,
        dn_bandwidth=bandwidth,
        rn_bandwidth=bandwidth,
        controller=ControllerKind.DENSE,
        distribution=DistributionKind.TREE,
        multiplier=MultiplierKind.LINEAR,
        reduction=ReductionKind.ART,
        dataflow=Dataflow.WEIGHT_STATIONARY,
        name="maeri-like",
    )
    kwargs.update(overrides)
    return HardwareConfig(**kwargs)


def sigma_like(num_ms: int = 256, bandwidth: int = 128, **overrides) -> HardwareConfig:
    """A SIGMA-like flexible sparse accelerator (BN + DMN + FAN)."""
    kwargs = dict(
        num_ms=num_ms,
        dn_bandwidth=bandwidth,
        rn_bandwidth=bandwidth,
        controller=ControllerKind.SPARSE,
        distribution=DistributionKind.BENES,
        multiplier=MultiplierKind.DISABLED,
        reduction=ReductionKind.FAN,
        dataflow=Dataflow.WEIGHT_STATIONARY,
        name="sigma-like",
    )
    kwargs.update(overrides)
    return HardwareConfig(**kwargs)


def eyeriss_like(num_ms: int = 256, bandwidth: int = 64, **overrides) -> HardwareConfig:
    """An Eyeriss-style rigid accelerator approximation.

    Eyeriss couples a multicast on-chip network with per-PE linear
    accumulation; within STONNE's taxonomy (Section IV-A) that composes as
    a Tree DN + Linear MN + Linear RN with a dense weight-stationary
    controller. Its row-stationary dataflow proper is richer than the
    three stationary dataflows the paper's controller implements; this
    preset captures the rigid-fabric/linear-reduction character the
    paper's taxonomy table assigns Eyeriss.
    """
    kwargs = dict(
        num_ms=num_ms,
        dn_bandwidth=bandwidth,
        rn_bandwidth=bandwidth,
        controller=ControllerKind.DENSE,
        distribution=DistributionKind.TREE,
        multiplier=MultiplierKind.LINEAR,
        reduction=ReductionKind.LINEAR,
        dataflow=Dataflow.WEIGHT_STATIONARY,
        name="eyeriss-like",
    )
    kwargs.update(overrides)
    return HardwareConfig(**kwargs)


def snapea_like(num_ms: int = 64, bandwidth: int = 64, **overrides) -> HardwareConfig:
    """The SNAPEA configuration of use case 2 (dense OS fabric, 64 PEs).

    SNAPEA itself is the dense architecture plus the early-termination
    memory controller; the controller swap happens in
    :mod:`repro.opts.snapea`, so the base hardware here is a dense
    MAERI-style fabric sized like the SNAPEA paper's 64-MAC design.
    """
    kwargs = dict(
        num_ms=num_ms,
        dn_bandwidth=bandwidth,
        rn_bandwidth=bandwidth,
        controller=ControllerKind.SNAPEA,
        distribution=DistributionKind.TREE,
        multiplier=MultiplierKind.LINEAR,
        reduction=ReductionKind.ART,
        dataflow=Dataflow.OUTPUT_STATIONARY,
        name="snapea-like",
    )
    kwargs.update(overrides)
    return HardwareConfig(**kwargs)
