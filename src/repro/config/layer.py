"""Workload shape descriptors.

The paper describes a DNN layer with 7+1 parameters as
``Layer(R, S, C, K, N, X', Y')`` plus a group count ``G`` for factorized
convolutions. :class:`ConvLayerSpec` captures exactly that, together with
the input spatial dimensions and stride from which ``X'``/``Y'`` derive.
GEMM workloads (fully-connected layers, transformer projections, and any
convolution after im2col lowering) are described by :class:`GemmSpec`
following the ``M x K times K x N`` convention used in Table V.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


class LayerKind(enum.Enum):
    """Layer-type tags used throughout the evaluation (Table I)."""

    CONV = "C"
    FACTORIZED_CONV = "FC"
    SQUEEZE_CONV = "SC"
    EXPAND_CONV = "EC"
    LINEAR = "L"
    TRANSFORMER = "TR"
    RESIDUAL = "RF"
    POOL = "POOL"


@dataclass(frozen=True)
class ConvLayerSpec:
    """Shape of a (possibly grouped) 2-D convolution layer.

    Attributes follow the paper's notation:

    - ``r``, ``s``: filter rows and columns.
    - ``c``: input channels **per group**.
    - ``k``: filters (output channels) **per group**.
    - ``g``: number of groups (``g > 1`` models factorized convolutions,
      e.g. the depthwise stages of MobileNets).
    - ``n``: batch size.
    - ``x``, ``y``: input rows and columns.
    - ``stride``: convolution stride (same in both dimensions).
    """

    r: int
    s: int
    c: int
    k: int
    g: int = 1
    n: int = 1
    x: int = 1
    y: int = 1
    stride: int = 1
    kind: LayerKind = LayerKind.CONV
    name: str = ""

    def __post_init__(self) -> None:
        for field_name in ("r", "s", "c", "k", "g", "n", "x", "y", "stride"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"ConvLayerSpec.{field_name} must be a positive int, got {value!r}"
                )
        if self.x < self.r or self.y < self.s:
            raise ConfigurationError(
                f"input {self.x}x{self.y} smaller than filter {self.r}x{self.s}"
            )

    @property
    def x_out(self) -> int:
        """Output rows (the paper's ``X'``)."""
        return (self.x - self.r) // self.stride + 1

    @property
    def y_out(self) -> int:
        """Output columns (the paper's ``Y'``)."""
        return (self.y - self.s) // self.stride + 1

    @property
    def filter_size(self) -> int:
        """Number of weights in one filter (the dot-product length)."""
        return self.r * self.s * self.c

    @property
    def num_filters(self) -> int:
        """Total filters across all groups."""
        return self.k * self.g

    @property
    def num_outputs(self) -> int:
        """Total output activations produced by the layer."""
        return self.n * self.g * self.k * self.x_out * self.y_out

    @property
    def num_macs(self) -> int:
        """Multiply-accumulate operations for a dense execution."""
        return self.num_outputs * self.filter_size

    def to_gemm(self) -> "GemmSpec":
        """Lower to the equivalent GEMM via im2col (per group, batch-folded).

        ``M`` is the filter count per group, ``K`` the dot-product length
        and ``N`` the number of output pixels across the batch. Grouped
        convolutions lower to ``g`` independent GEMMs; we expose the
        per-group GEMM and callers multiply by ``g``.
        """
        return GemmSpec(
            m=self.k,
            n=self.n * self.x_out * self.y_out,
            k=self.filter_size,
            name=self.name or "conv-gemm",
        )

    def with_batch(self, n: int) -> "ConvLayerSpec":
        """Return a copy with a different batch size."""
        return replace(self, n=n)


@dataclass(frozen=True)
class GemmSpec:
    """Shape of a matrix multiplication ``(M x K) @ (K x N)``.

    This is the Table V convention: ``M`` rows of the stationary matrix
    (filters), ``K`` the reduction dimension, ``N`` the streaming columns.
    """

    m: int
    n: int
    k: int
    name: str = ""

    def __post_init__(self) -> None:
        for field_name in ("m", "n", "k"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"GemmSpec.{field_name} must be a positive int, got {value!r}"
                )

    @property
    def num_outputs(self) -> int:
        return self.m * self.n

    @property
    def num_macs(self) -> int:
        return self.m * self.n * self.k


def linear_layer(in_features: int, out_features: int, batch: int = 1, name: str = "") -> GemmSpec:
    """Describe a fully-connected layer as a GEMM.

    Weights are ``out_features x in_features`` (stationary ``M x K``) and the
    activations stream as ``in_features x batch``.
    """
    return GemmSpec(m=out_features, n=batch, k=in_features, name=name or "linear")
