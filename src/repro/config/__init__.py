"""Hardware and mapping configuration for the simulator.

This package defines:

- :mod:`repro.config.layer` — shapes of the workloads (convolution layers
  and GEMMs) using the paper's ``Layer(R, S, C, G, K, N, X', Y')`` notation.
- :mod:`repro.config.hardware` — the hardware configuration file: which
  building block is used for each network fabric (Fig. 3b of the paper),
  sizes, bandwidths and the memory hierarchy parameters.
- :mod:`repro.config.tile` — the paper's
  ``Tile(T_R, T_S, T_C, T_G, T_K, T_N, T_X', T_Y')`` mapping descriptor and
  an automatic tiler.
- :mod:`repro.config.presets` — the three reference accelerators of
  Table IV (TPU-like, MAERI-like, SIGMA-like).
"""

from repro.config.hardware import (
    ControllerKind,
    Dataflow,
    DataType,
    DistributionKind,
    DramConfig,
    EngineMode,
    HardwareConfig,
    MultiplierKind,
    ReductionKind,
    SparseFormat,
    load_config,
    parse_config,
    save_config,
)
from repro.config.layer import ConvLayerSpec, GemmSpec, LayerKind
from repro.config.presets import (
    eyeriss_like,
    maeri_like,
    sigma_like,
    snapea_like,
    tpu_like,
)
from repro.config.tile import (
    TileConfig,
    generate_conv_tile,
    generate_gemm_tile,
    load_tile_file,
    save_tile_file,
)

__all__ = [
    "ControllerKind",
    "ConvLayerSpec",
    "Dataflow",
    "DataType",
    "DistributionKind",
    "DramConfig",
    "EngineMode",
    "GemmSpec",
    "HardwareConfig",
    "LayerKind",
    "MultiplierKind",
    "ReductionKind",
    "SparseFormat",
    "TileConfig",
    "eyeriss_like",
    "generate_conv_tile",
    "generate_gemm_tile",
    "load_tile_file",
    "load_config",
    "maeri_like",
    "parse_config",
    "save_config",
    "save_tile_file",
    "sigma_like",
    "snapea_like",
    "tpu_like",
]
