"""Hardware configuration: the ``stonne_hw.cfg`` equivalent.

A :class:`HardwareConfig` selects one building block per fabric tier
(Fig. 3b of the paper) and sizes the memory hierarchy. Configurations can
be written to / read from an INI-style ``.cfg`` file with the same section
layout the original simulator uses (``[MSNetwork]``, ``[DSNetwork]``,
``[ReduceNetwork]``, ``[SDMemory]``), so hardware descriptions live outside
the code exactly as in the paper's Fig. 2(d) walk-through.
"""

from __future__ import annotations

import configparser
import enum
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Union

from repro.errors import ConfigurationError


class DistributionKind(enum.Enum):
    """Distribution-network building blocks (paper Section IV-A-1)."""

    TREE = "TN"
    BENES = "BN"
    POINT_TO_POINT = "PoPN"

    @property
    def supports_multicast(self) -> bool:
        """Tree and Benes fabrics deliver one value to many multipliers in
        a single cycle; the point-to-point fabric is unicast only."""
        return self is not DistributionKind.POINT_TO_POINT


class MultiplierKind(enum.Enum):
    """Multiplier-network building blocks (paper Section IV-A-2)."""

    LINEAR = "LMN"
    DISABLED = "DMN"

    @property
    def has_forwarding_links(self) -> bool:
        """The linear MN forwards operands between neighbouring multiplier
        switches to exploit convolution sliding-window reuse."""
        return self is MultiplierKind.LINEAR


class ReductionKind(enum.Enum):
    """Reduction-network building blocks (paper Section IV-A-3)."""

    RT = "RT"
    ART = "ART"
    ART_ACC = "ART+ACC"
    FAN = "FAN"
    LINEAR = "LRN"

    @property
    def supports_variable_clusters(self) -> bool:
        """ART and FAN create arbitrary-size virtual reduction clusters over
        one physical substrate; RT and LRN reduce fixed clusters."""
        return self in (ReductionKind.ART, ReductionKind.ART_ACC, ReductionKind.FAN)

    @property
    def adder_inputs(self) -> int:
        """Fan-in of the adder switches (ART uses 3:1 adders, FAN 2:1)."""
        return 3 if self in (ReductionKind.ART, ReductionKind.ART_ACC) else 2

    @property
    def has_accumulation_buffer(self) -> bool:
        return self is ReductionKind.ART_ACC


class ControllerKind(enum.Enum):
    """Memory-controller building blocks (paper Section IV-B)."""

    DENSE = "DC"
    SPARSE = "SC"
    SNAPEA = "SNAPEA"


class Dataflow(enum.Enum):
    """Stationary dataflows implemented by the dense controller."""

    WEIGHT_STATIONARY = "WS"
    OUTPUT_STATIONARY = "OS"
    INPUT_STATIONARY = "IS"


class EngineMode(enum.Enum):
    """How the dense hot paths advance simulated time.

    - ``CYCLE`` — the cycle-stepped reference implementation everywhere.
    - ``VECTOR`` — the closed-form/batched kernels of
      :mod:`repro.engine.vector` on every eligible dense path;
      data-dependent paths (SpMM, SNAPEA) always stay cycle-stepped, and
      metrics sampling forces the stepped walk in any mode (samples
      snapshot intermediate counter state only the walk produces).
    - ``AUTO`` — like ``VECTOR``, but additionally falls back to the
      reference whenever event tracing is active (vector mode replays
      trace spans closed-form; auto conservatively treats the reference
      as the instrumentation ground truth).

    Every mode produces byte-identical simulation reports; the
    differential suite (``tests/differential/test_vector_equivalence.py``)
    pins that equivalence. The environment variable ``STONNE_ENGINE_MODE``
    overrides the configured mode at dispatch time.
    """

    CYCLE = "cycle"
    VECTOR = "vector"
    AUTO = "auto"


class SparseFormat(enum.Enum):
    """Compression formats accepted by the sparse controller."""

    BITMAP = "bitmap"
    CSR = "csr"


class DataType(enum.Enum):
    """Datatypes affecting energy/area tables and buffer capacity."""

    FP8 = "fp8"
    INT8 = "int8"
    FP16 = "fp16"
    FP32 = "fp32"

    @property
    def bytes_per_element(self) -> int:
        return {"fp8": 1, "int8": 1, "fp16": 2, "fp32": 4}[self.value]


@dataclass(frozen=True)
class DramConfig:
    """Off-chip memory parameters (the paper uses two 256 GB/s HBM2 stacks).

    The model is deliberately first-order — bandwidth, a fixed access
    latency, and a row-buffer locality bonus — because the evaluation's
    effects are dominated by on-chip bandwidth (see DESIGN.md).
    """

    bandwidth_gbps: float = 512.0
    size_mb: int = 1024
    access_latency_cycles: int = 100
    row_buffer_bytes: int = 2048
    row_hit_latency_cycles: int = 20

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ConfigurationError("DRAM bandwidth must be positive")
        if self.size_mb <= 0:
            raise ConfigurationError("DRAM size must be positive")
        if self.access_latency_cycles < 1 or self.row_hit_latency_cycles < 1:
            raise ConfigurationError("DRAM latencies must be >= 1 cycle")
        if self.row_hit_latency_cycles > self.access_latency_cycles:
            raise ConfigurationError("row hit latency cannot exceed miss latency")


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class HardwareConfig:
    """Complete description of one simulated accelerator instance.

    The defaults correspond to the paper's common use-case parameters:
    28 nm, 1 GHz, FP8 data, 108-KB Global Buffer, HBM2 DRAM.
    """

    num_ms: int = 256
    dn_bandwidth: int = 128
    rn_bandwidth: int = 128
    controller: ControllerKind = ControllerKind.DENSE
    distribution: DistributionKind = DistributionKind.TREE
    multiplier: MultiplierKind = MultiplierKind.LINEAR
    reduction: ReductionKind = ReductionKind.ART
    dataflow: Dataflow = Dataflow.OUTPUT_STATIONARY
    sparse_format: SparseFormat = SparseFormat.BITMAP
    dtype: DataType = DataType.FP8
    gb_size_kb: int = 108
    gb_banks: int = 8
    ms_fifo_depth: int = 4
    dn_fifo_depth: int = 4
    rn_fifo_depth: int = 2
    accumulation_buffer: bool = True
    engine_mode: EngineMode = EngineMode.AUTO
    clock_ghz: float = 1.0
    technology_nm: int = 28
    dram: DramConfig = field(default_factory=DramConfig)
    name: str = "custom"

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.num_ms):
            raise ConfigurationError(
                f"num_ms must be a power of two for tree-based fabrics, got {self.num_ms}"
            )
        if self.num_ms < 2:
            raise ConfigurationError("num_ms must be at least 2")
        if not 1 <= self.dn_bandwidth <= self.num_ms:
            raise ConfigurationError(
                f"dn_bandwidth must be in [1, num_ms], got {self.dn_bandwidth}"
            )
        if not 1 <= self.rn_bandwidth <= self.num_ms:
            raise ConfigurationError(
                f"rn_bandwidth must be in [1, num_ms], got {self.rn_bandwidth}"
            )
        if self.gb_size_kb < 1:
            raise ConfigurationError("gb_size_kb must be >= 1")
        if self.gb_banks < 1:
            raise ConfigurationError("gb_banks must be >= 1")
        for fifo_name in ("ms_fifo_depth", "dn_fifo_depth", "rn_fifo_depth"):
            if getattr(self, fifo_name) < 1:
                raise ConfigurationError(f"{fifo_name} must be >= 1")
        if self.clock_ghz <= 0:
            raise ConfigurationError("clock_ghz must be positive")
        if self.technology_nm not in (7, 14, 16, 22, 28, 45, 65):
            raise ConfigurationError(
                f"no energy/area table for technology node {self.technology_nm} nm"
            )
        self._check_compatibility()

    def _check_compatibility(self) -> None:
        """Reject block combinations the paper's taxonomy cannot realize."""
        if self.controller is ControllerKind.SPARSE:
            if not self.distribution.supports_multicast:
                raise ConfigurationError(
                    "the sparse controller needs a multicast-capable DN "
                    "(Tree or Benes), not point-to-point"
                )
            if not self.reduction.supports_variable_clusters:
                raise ConfigurationError(
                    "the sparse controller needs variable-size reduction "
                    "clusters (ART or FAN)"
                )
        if (
            self.distribution is DistributionKind.POINT_TO_POINT
            and self.reduction not in (ReductionKind.LINEAR, ReductionKind.RT)
        ):
            raise ConfigurationError(
                "a point-to-point (systolic) DN pairs with a linear or fixed "
                "reduction network, not a flexible one"
            )

    @property
    def systolic_dim(self) -> int:
        """Side of the square PE array for systolic (PoPN) configurations."""
        root = int(round(self.num_ms ** 0.5))
        if root * root != self.num_ms:
            raise ConfigurationError(
                f"systolic configuration needs a square PE count, got {self.num_ms}"
            )
        return root

    @property
    def is_systolic(self) -> bool:
        return self.distribution is DistributionKind.POINT_TO_POINT

    @property
    def is_sparse(self) -> bool:
        return self.controller in (ControllerKind.SPARSE,)

    @property
    def gb_capacity_elements(self) -> int:
        return self.gb_size_kb * 1024 // self.dtype.bytes_per_element

    def with_updates(self, **kwargs) -> "HardwareConfig":
        """Return a modified copy; used for parameter sweeps."""
        return replace(self, **kwargs)


_SECTION_GENERAL = "General"
_SECTION_MS = "MSNetwork"
_SECTION_DS = "DSNetwork"
_SECTION_RN = "ReduceNetwork"
_SECTION_MEM = "SDMemory"
_SECTION_DRAM = "DRAM"


def save_config(config: HardwareConfig, path: Union[str, Path]) -> None:
    """Write ``config`` as an INI-style ``.cfg`` file."""
    parser = configparser.ConfigParser()
    parser[_SECTION_GENERAL] = {
        "name": config.name,
        "dtype": config.dtype.value,
        "clock_ghz": str(config.clock_ghz),
        "technology_nm": str(config.technology_nm),
        "dataflow": config.dataflow.value,
        "engine_mode": config.engine_mode.value,
    }
    parser[_SECTION_MS] = {
        "type": config.multiplier.value,
        "ms_size": str(config.num_ms),
        "fifo_depth": str(config.ms_fifo_depth),
    }
    parser[_SECTION_DS] = {
        "type": config.distribution.value,
        "bandwidth": str(config.dn_bandwidth),
        "fifo_depth": str(config.dn_fifo_depth),
    }
    parser[_SECTION_RN] = {
        "type": config.reduction.value,
        "bandwidth": str(config.rn_bandwidth),
        "fifo_depth": str(config.rn_fifo_depth),
        "accumulation_buffer": str(int(config.accumulation_buffer)),
    }
    parser[_SECTION_MEM] = {
        "controller": config.controller.value,
        "gb_size_kb": str(config.gb_size_kb),
        "gb_banks": str(config.gb_banks),
        "sparse_format": config.sparse_format.value,
    }
    parser[_SECTION_DRAM] = {
        "bandwidth_gbps": str(config.dram.bandwidth_gbps),
        "size_mb": str(config.dram.size_mb),
        "access_latency_cycles": str(config.dram.access_latency_cycles),
        "row_buffer_bytes": str(config.dram.row_buffer_bytes),
        "row_hit_latency_cycles": str(config.dram.row_hit_latency_cycles),
    }
    with open(path, "w", encoding="utf-8") as handle:
        parser.write(handle)


def _enum_by_value(enum_cls, value: str, what: str):
    for member in enum_cls:
        if member.value.lower() == value.lower():
            return member
    valid = ", ".join(member.value for member in enum_cls)
    raise ConfigurationError(f"unknown {what} {value!r}; expected one of: {valid}")


def parse_config(text: str) -> HardwareConfig:
    """Parse a ``.cfg`` document into a :class:`HardwareConfig`.

    Missing sections or keys fall back to the dataclass defaults so partial
    files (e.g. only overriding the MS count) are valid, mirroring the
    original tool's behaviour.
    """
    parser = configparser.ConfigParser()
    try:
        parser.read_string(text)
    except configparser.Error as exc:
        raise ConfigurationError(f"malformed configuration file: {exc}") from exc

    defaults = HardwareConfig()
    kwargs = {}

    def read(section: str, key: str, fallback):
        if parser.has_option(section, key):
            return parser.get(section, key)
        return fallback

    try:
        kwargs["name"] = read(_SECTION_GENERAL, "name", defaults.name)
        kwargs["dtype"] = _enum_by_value(
            DataType, read(_SECTION_GENERAL, "dtype", defaults.dtype.value), "dtype"
        )
        kwargs["clock_ghz"] = float(
            read(_SECTION_GENERAL, "clock_ghz", defaults.clock_ghz)
        )
        kwargs["technology_nm"] = int(
            read(_SECTION_GENERAL, "technology_nm", defaults.technology_nm)
        )
        kwargs["dataflow"] = _enum_by_value(
            Dataflow, read(_SECTION_GENERAL, "dataflow", defaults.dataflow.value), "dataflow"
        )
        kwargs["engine_mode"] = _enum_by_value(
            EngineMode,
            read(_SECTION_GENERAL, "engine_mode", defaults.engine_mode.value),
            "engine mode",
        )
        kwargs["multiplier"] = _enum_by_value(
            MultiplierKind, read(_SECTION_MS, "type", defaults.multiplier.value), "MN type"
        )
        kwargs["num_ms"] = int(read(_SECTION_MS, "ms_size", defaults.num_ms))
        kwargs["ms_fifo_depth"] = int(
            read(_SECTION_MS, "fifo_depth", defaults.ms_fifo_depth)
        )
        kwargs["distribution"] = _enum_by_value(
            DistributionKind, read(_SECTION_DS, "type", defaults.distribution.value), "DN type"
        )
        # unspecified bandwidths default relative to the configured fabric
        # size (a partial file overriding only ms_size stays consistent)
        default_bw = min(defaults.dn_bandwidth, kwargs["num_ms"])
        kwargs["dn_bandwidth"] = int(
            read(_SECTION_DS, "bandwidth", default_bw)
        )
        kwargs["dn_fifo_depth"] = int(
            read(_SECTION_DS, "fifo_depth", defaults.dn_fifo_depth)
        )
        kwargs["reduction"] = _enum_by_value(
            ReductionKind, read(_SECTION_RN, "type", defaults.reduction.value), "RN type"
        )
        kwargs["rn_bandwidth"] = int(
            read(_SECTION_RN, "bandwidth", min(defaults.rn_bandwidth, kwargs["num_ms"]))
        )
        kwargs["rn_fifo_depth"] = int(
            read(_SECTION_RN, "fifo_depth", defaults.rn_fifo_depth)
        )
        kwargs["accumulation_buffer"] = bool(
            int(read(_SECTION_RN, "accumulation_buffer", int(defaults.accumulation_buffer)))
        )
        kwargs["controller"] = _enum_by_value(
            ControllerKind, read(_SECTION_MEM, "controller", defaults.controller.value), "controller"
        )
        kwargs["gb_size_kb"] = int(read(_SECTION_MEM, "gb_size_kb", defaults.gb_size_kb))
        kwargs["gb_banks"] = int(read(_SECTION_MEM, "gb_banks", defaults.gb_banks))
        kwargs["sparse_format"] = _enum_by_value(
            SparseFormat,
            read(_SECTION_MEM, "sparse_format", defaults.sparse_format.value),
            "sparse format",
        )
        kwargs["dram"] = DramConfig(
            bandwidth_gbps=float(
                read(_SECTION_DRAM, "bandwidth_gbps", defaults.dram.bandwidth_gbps)
            ),
            size_mb=int(read(_SECTION_DRAM, "size_mb", defaults.dram.size_mb)),
            access_latency_cycles=int(
                read(_SECTION_DRAM, "access_latency_cycles", defaults.dram.access_latency_cycles)
            ),
            row_buffer_bytes=int(
                read(_SECTION_DRAM, "row_buffer_bytes", defaults.dram.row_buffer_bytes)
            ),
            row_hit_latency_cycles=int(
                read(
                    _SECTION_DRAM,
                    "row_hit_latency_cycles",
                    defaults.dram.row_hit_latency_cycles,
                )
            ),
        )
    except ValueError as exc:
        raise ConfigurationError(f"bad value in configuration file: {exc}") from exc

    return HardwareConfig(**kwargs)


def load_config(path: Union[str, Path]) -> HardwareConfig:
    """Read a hardware configuration from a ``.cfg`` file on disk."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"configuration file not found: {path}")
    return parse_config(path.read_text(encoding="utf-8"))
