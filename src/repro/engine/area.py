"""Table-based area model (paper Section III, Output Module).

Area is a function of the *instantiated* hardware, not of activity: the
model counts the building blocks a :class:`~repro.config.HardwareConfig`
implies and prices each with a per-instance cost. The 28 nm constants are
calibrated against the published synthesis-derived breakdowns (Fig. 5c):
the Global Buffer SRAM dominates every design (70-82 % of total area), the
TPU-like array is the smallest fabric, ART's 3:1 adder switches are the
expensive part of MAERI, and SIGMA trades them for cheap 2:1 FAN adders
plus a Benes fabric of many tiny switches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.config.hardware import (
    DataType,
    DistributionKind,
    HardwareConfig,
    MultiplierKind,
    ReductionKind,
)
from repro.errors import ConfigurationError

#: per-instance areas in um^2 at 28 nm, FP8 multipliers / FP32 psum adders
_AREA_28NM: Dict[str, float] = {
    "gb_per_kb": 2200.0,
    "multiplier": 90.0,
    "ms_forwarding_link": 60.0,
    "accumulator": 80.0,
    "adder_2to1": 110.0,
    "adder_3to1": 180.0,
    "art_horizontal_link": 40.0,
    "fan_forwarding_link": 20.0,
    "tree_switch": 30.0,
    "benes_switch": 8.0,
    "pop_link": 34.0,
    "dense_controller": 5000.0,
    "sparse_controller": 12000.0,
}

#: area scale per technology node relative to 28 nm (~ (node/28)^2)
_NODE_SCALE = {7: 0.0625, 14: 0.25, 16: 0.33, 22: 0.62, 28: 1.0, 45: 2.6, 65: 5.4}

#: datatype scale relative to FP8 for arithmetic blocks
_DTYPE_SCALE = {
    DataType.FP8: 1.0,
    DataType.INT8: 0.8,
    DataType.FP16: 2.1,
    DataType.FP32: 4.2,
}


@dataclass(frozen=True)
class AreaBreakdown:
    """Area per component group in um^2 (Fig. 5c's GB/DN/MN/RN split)."""

    by_group_um2: Dict[str, float]

    @property
    def total_um2(self) -> float:
        # fsum: the correctly rounded exact sum, independent of the
        # order the group dict was built in (FLOAT-ORDER)
        return math.fsum(self.by_group_um2.values())

    @property
    def total_mm2(self) -> float:
        return self.total_um2 / 1e6

    def share_of(self, group: str) -> float:
        total = self.total_um2
        return self.by_group_um2.get(group, 0.0) / total if total else 0.0


def area_report(config: HardwareConfig) -> AreaBreakdown:
    """Compute the area breakdown implied by a hardware configuration."""
    if config.technology_nm not in _NODE_SCALE:
        raise ConfigurationError(
            f"no area table for technology node {config.technology_nm} nm"
        )
    node = _NODE_SCALE[config.technology_nm]
    arith = _DTYPE_SCALE[config.dtype] * node

    def cost(name: str, arithmetic: bool = False) -> float:
        return _AREA_28NM[name] * (arith if arithmetic else node)

    n = config.num_ms
    by_group: Dict[str, float] = {}

    # Global Buffer SRAM
    by_group["GB"] = config.gb_size_kb * cost("gb_per_kb")

    # Multiplier network
    mn = n * cost("multiplier", arithmetic=True)
    if config.multiplier is MultiplierKind.LINEAR:
        mn += n * cost("ms_forwarding_link")
    by_group["MN"] = mn

    # Distribution network
    if config.distribution is DistributionKind.TREE:
        dn = (n - 1) * cost("tree_switch")
    elif config.distribution is DistributionKind.BENES:
        levels = 2 * max(1, math.ceil(math.log2(n))) + 1
        dn = (n // 2) * levels * cost("benes_switch")
    else:  # point-to-point
        dn = n * cost("pop_link")
    by_group["DN"] = dn

    # Reduction network
    if config.reduction is ReductionKind.LINEAR:
        rn = n * cost("accumulator", arithmetic=True)
    elif config.reduction in (ReductionKind.ART, ReductionKind.ART_ACC):
        rn = (n - 1) * (cost("adder_3to1", arithmetic=True) + cost("art_horizontal_link"))
        if config.accumulation_buffer or config.reduction is ReductionKind.ART_ACC:
            rn += config.rn_bandwidth * cost("accumulator", arithmetic=True)
    elif config.reduction is ReductionKind.FAN:
        rn = (n - 1) * (cost("adder_2to1", arithmetic=True) + cost("fan_forwarding_link"))
        rn += config.rn_bandwidth * cost("accumulator", arithmetic=True)
    else:  # plain reduction tree
        rn = (n - 1) * cost("adder_2to1", arithmetic=True)
    by_group["RN"] = rn

    # memory controller
    if config.is_sparse:
        by_group["CTRL"] = cost("sparse_controller")
    else:
        by_group["CTRL"] = cost("dense_controller")

    return AreaBreakdown(by_group_um2=by_group)
