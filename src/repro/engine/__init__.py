"""The STONNE Simulation Engine (paper Sections III-IV).

- :mod:`repro.engine.accelerator` — the top-level ``Accelerator`` class
  that composes the configured building blocks, advances them cycle by
  cycle and exposes the run entry points.
- :mod:`repro.engine.systolic` — the cycle-by-cycle output-stationary
  systolic array used by TPU-like (PoPN) configurations.
- :mod:`repro.engine.mapper` — layer/tile → configuration signals.
- :mod:`repro.engine.stats` — the Output Module: JSON summary + counter
  file reporting.
- :mod:`repro.engine.energy` / :mod:`repro.engine.area` — the table-based
  energy and area models (Accelergy-style).
"""

from repro.engine.accelerator import Accelerator, LayerReport
from repro.engine.area import AreaBreakdown, area_report
from repro.engine.energy import EnergyBreakdown, EnergyTable, energy_report
from repro.engine.mapper import Mapper
from repro.engine.microsim import DenseMicroSim, MicroSimResult
from repro.engine.stats import SimulationReport
from repro.engine.systolic import SystolicEngine, SystolicRunResult

__all__ = [
    "Accelerator",
    "AreaBreakdown",
    "EnergyBreakdown",
    "EnergyTable",
    "LayerReport",
    "DenseMicroSim",
    "Mapper",
    "MicroSimResult",
    "SimulationReport",
    "SystolicEngine",
    "SystolicRunResult",
    "area_report",
    "energy_report",
]
