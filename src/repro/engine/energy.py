"""Table-based energy model (paper Section III, Output Module).

The original tool prices per-component activity counts with a table of
per-event energies derived from Synopsys DC / Cadence Innovus runs on the
MAERI, SIGMA and TPU RTL, "similar to Accelergy". We implement the same
mechanism; the 28 nm FP8 constants below are calibrated against the
published component breakdowns of those designs (Fig. 5b's structure: the
reduction network dominates — wide-precision accumulation is far more
expensive than a narrow multiply — and the GB/DN shares grow with
bandwidth pressure). Other node/datatype tables derive by scaling.

Energy is reported in micro-joules, broken down into the Fig. 5b component
groups: Global Buffer (GB), Distribution Network (DN), Multiplier Network
(MN) and Reduction Network (RN). Off-chip DRAM energy is tracked
separately (the paper's breakdown excludes it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.config.hardware import DataType
from repro.errors import ConfigurationError
from repro.noc.base import CounterSet

#: per-event energies in pJ at 28 nm / FP8 / 1 GHz
_BASE_TABLE_28NM_FP8: Dict[str, float] = {
    # multiplier network
    "mn_multiplications": 0.25,
    "mn_forwarding_hops": 0.06,
    "mn_psum_injections": 0.12,
    "mn_reconfigurations": 2.0,
    # reduction network
    "rn_adder_ops": 1.10,        # 2:1 FP32 psum adder (FAN / RT)
    "rn_adder_ops_3to1": 1.40,   # 3:1 adder switch (ART)
    "rn_accumulator_ops": 2.30,  # register-file read-modify-write + add
    "rn_wire_traversals": 0.25,
    "rn_outputs_written": 0.30,
    "rn_reconfigurations": 2.0,
    # distribution network
    "dn_switch_traversals": 0.09,
    "dn_wire_traversals": 0.06,
    "dn_elements_sent": 0.05,
    "dn_busy_cycles": 0.0,
    # global buffer (per element)
    "gb_reads": 1.20,
    "gb_writes": 1.40,
    "gb_fills": 1.00,
    # controller bookkeeping
    "ctrl_stationary_loads": 0.05,
    "ctrl_metadata_elements": 0.30,
    "ctrl_psum_spills": 0.40,
    "ctrl_fifo_pushes": 0.03,
    "ctrl_fifo_pops": 0.03,
    # DRAM (per byte, reported separately from the on-chip breakdown)
    "dram_bytes_read": 20.0,
    "dram_bytes_written": 22.0,
}

#: energy scale factors relative to the 28 nm base (dynamic energy ~ V^2)
_NODE_SCALE = {7: 0.22, 14: 0.42, 16: 0.48, 22: 0.75, 28: 1.0, 45: 2.1, 65: 3.8}

#: datatype scale relative to FP8 (wider operands switch more capacitance)
_DTYPE_SCALE = {
    DataType.FP8: 1.0,
    DataType.INT8: 0.85,
    DataType.FP16: 1.9,
    DataType.FP32: 3.6,
}

#: counter-prefix → Fig. 5b component group
_GROUP_OF_PREFIX = {
    "gb": "GB",
    "dn": "DN",
    "mn": "MN",
    "rn": "RN",
    "dram": "DRAM",
    "ctrl": "CTRL",
}

#: static power per multiplier switch and per KB of SRAM, in mW at 28 nm
_STATIC_MW_PER_MS = 0.012
_STATIC_MW_PER_GB_KB = 0.035


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energies for one (technology, datatype) pair."""

    technology_nm: int
    dtype: DataType
    costs_pj: Mapping[str, float] = field(default_factory=dict)

    @classmethod
    def for_config(cls, technology_nm: int, dtype: DataType) -> "EnergyTable":
        if technology_nm not in _NODE_SCALE:
            raise ConfigurationError(
                f"no energy table for technology node {technology_nm} nm"
            )
        scale = _NODE_SCALE[technology_nm] * _DTYPE_SCALE[dtype]
        costs = {}
        for name, base in _BASE_TABLE_28NM_FP8.items():
            if name.startswith("dram"):
                # DRAM energy scales with bytes moved, not logic node
                costs[name] = base * dtype.bytes_per_element / 1.0
            else:
                costs[name] = base * scale
        return cls(technology_nm=technology_nm, dtype=dtype, costs_pj=costs)

    def cost_of(self, counter_name: str) -> float:
        return float(self.costs_pj.get(counter_name, 0.0))


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per component group plus the totals, in micro-joules."""

    by_group_uj: Dict[str, float]
    static_uj: float
    dram_uj: float

    @property
    def onchip_dynamic_uj(self) -> float:
        # fsum: the correctly rounded exact sum, independent of the
        # order the group dict was built in (FLOAT-ORDER)
        return math.fsum(
            value for group, value in self.by_group_uj.items() if group != "DRAM"
        )

    @property
    def total_uj(self) -> float:
        return self.onchip_dynamic_uj + self.static_uj + self.dram_uj

    def share_of(self, group: str) -> float:
        """Fraction of on-chip energy (dynamic + static) in ``group``."""
        denom = self.onchip_dynamic_uj + self.static_uj
        if denom == 0:
            return 0.0
        return self.by_group_uj.get(group, 0.0) / denom


def _group_of(counter_name: str) -> str:
    prefix = counter_name.split("_", 1)[0]
    return _GROUP_OF_PREFIX.get(prefix, "OTHER")


def energy_report(
    counters: CounterSet,
    table: EnergyTable,
    cycles: int = 0,
    num_ms: int = 0,
    gb_size_kb: int = 0,
    clock_ghz: float = 1.0,
) -> EnergyBreakdown:
    """Price a counter set with an energy table.

    ``cycles``/``num_ms``/``gb_size_kb`` enable the static-energy estimate
    (leakage power x execution time); pass zeros to skip it.
    """
    by_group: Dict[str, float] = {}
    dram_pj = 0.0
    for name in counters:
        pj = counters.get(name) * table.cost_of(name)
        group = _group_of(name)
        if group == "DRAM":
            dram_pj += pj
            continue
        if group == "CTRL":
            # controller activity is charged to the component it serves
            if "metadata" in name or "stationary" in name:
                group = "GB"
            elif "fifo_pushes" in name:
                group = "DN"
            else:
                group = "RN"
        by_group[group] = by_group.get(group, 0.0) + pj

    static_uj = 0.0
    if cycles and clock_ghz:
        seconds = cycles / (clock_ghz * 1e9)
        static_mw = num_ms * _STATIC_MW_PER_MS + gb_size_kb * _STATIC_MW_PER_GB_KB
        scale = _NODE_SCALE[table.technology_nm]
        static_uj = static_mw * scale * seconds * 1e3  # mW * s -> uJ

    return EnergyBreakdown(
        by_group_uj={group: pj / 1e6 for group, pj in by_group.items()},
        static_uj=static_uj,
        dram_uj=dram_pj / 1e6,
    )
