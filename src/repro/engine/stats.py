"""The Output Module (paper Section III).

After every simulated operation the engine produces two artifacts, just
like the original tool:

1. a JSON-ready summary (performance, utilization, energy, area) that
   "facilitates their processing through user-created scripts", and
2. a *counter file* in a simple custom format listing the activity count
   of every component event, from which the energy model computes the
   consumed energy.

:class:`SimulationReport` aggregates per-layer :class:`LayerReport`
records over a whole model execution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.config.hardware import HardwareConfig
from repro.engine.area import AreaBreakdown, area_report
from repro.engine.energy import EnergyBreakdown, EnergyTable, energy_report
from repro.noc.base import CounterSet
from repro.observability.provenance import run_metadata

#: The declared universe of activity counters. CounterSet creates
#: counters lazily (components need no pre-declaration), so this
#: registry is the safety net: the COUNTER lint pass rejects any literal
#: increment or read of a name missing here, which is how a typo'd
#: counter fails `make lint` instead of silently pricing at zero energy
#: or feeding the bottleneck-attribution layer a phantom.
KNOWN_COUNTERS: Dict[str, str] = {
    "ctrl_cycles": "cycles the memory controller was driving the fabric",
    "ctrl_fifo_pops": "sparse-controller FIFO pop operations",
    "ctrl_fifo_pushes": "sparse-controller FIFO push operations",
    "ctrl_gemms_run": "GEMM operations issued by the sparse controller",
    "ctrl_layers_run": "layers issued by the dense controller",
    "ctrl_metadata_elements": "compression metadata elements streamed",
    "ctrl_psum_spills": "partial sums spilled across sparse rounds",
    "ctrl_stationary_loads": "stationary-operand elements loaded",
    "dn_busy_cycles": "cycles the distribution network moved data",
    "dn_elements_sent": "distinct elements injected into the DN",
    "dn_switch_traversals": "DN switch hops taken by all elements",
    "dn_wire_traversals": "DN wire segments traversed by all elements",
    "dram_bytes_read": "bytes read from off-chip DRAM",
    "dram_bytes_written": "bytes written to off-chip DRAM",
    "dram_row_hits": "DRAM accesses hitting the open row buffer",
    "dram_row_misses": "DRAM accesses opening a new row",
    "gb_fills": "Global Buffer elements filled from DRAM",
    "gb_pool_comparisons": "comparator operations for maxpool layers",
    "gb_reads": "elements read from the Global Buffer",
    "gb_writes": "elements written to the Global Buffer",
    "mn_forwarding_hops": "operand hops over MN forwarding links",
    "mn_multiplications": "multiplications executed by the MS array",
    "mn_psum_injections": "partial sums re-injected when folding",
    "mn_reconfigurations": "multiplier-network reconfiguration events",
    "rn_accumulator_ops": "accumulation-buffer add operations",
    "rn_adder_ops": "2:1 adder-switch operations (FAN / RT / LRN)",
    "rn_adder_ops_3to1": "3:1 adder-switch operations (ART)",
    "rn_outputs_written": "reduced outputs leaving the RN",
    "rn_reconfigurations": "reduction-network reconfiguration events",
    "rn_wire_traversals": "RN wire segments traversed by all psums",
    # stall-attribution taxonomy (repro.observability.stalls): these live
    # in LayerReport.extra["stalls"], never in a CounterSet — declaring
    # them here gives lint and `insight explain` one shared registry of
    # names and descriptions
    "stall_compute_busy": "cycles the component advanced useful work",
    "stall_dram_stall": "cycles stalled on off-chip DRAM bandwidth",
    "stall_edge_underutilization": "systolic wavefront-skew cycles with edge PEs idle",
    "stall_fifo_backpressure": "cycles the output/psum drain FIFOs bound the step",
    "stall_idle": "cycles the component provably had no work",
    "stall_noc_distribution": "cycles distribution-network delivery bound the step",
    "stall_noc_reduction": "cycles reduction/merge throughput bound the step",
    "stall_pipeline_drain": "pipeline fill/drain cycles",
    "stall_weight_fill": "configuration + stationary operand fill cycles",
    # fabric-observatory metrics (repro.observability.fabric): these live
    # in LayerReport.extra["fabric"], never in a CounterSet — same shared
    # registry idiom as the stall taxonomy above, for lint and
    # `insight fabric`
    "fabric_dn_level_busy": "per-level DN switch/wire traversals (spatial split)",
    "fabric_mn_level_busy": "per-level MS-array multiplications (spatial split)",
    "fabric_rn_level_busy": "per-level RN adder/accumulator ops (spatial split)",
    "fifo_occupancy_depth": "tier-boundary FIFO concurrent-occupancy proxy",
    "fifo_occupancy_hwm": "tier-boundary FIFO occupancy high-watermark",
    "fifo_occupancy_windows": "tier-boundary FIFO windowed occupancy series",
}

#: Counters that accumulate *simulated clock cycles*. Every site that
#: increments one of these is a timing statement, and the stall ledger's
#: conservation invariant (bucket sums == layer cycles) only holds if
#: that site is charge-paired — i.e. the increment happens inside, or on
#: a call path through, one of the CHARGE_FAMILIES functions below. The
#: LEDGER lint pass extracts both literals statically and walks the
#: interprocedural call graph to prove the pairing before any run.
CYCLE_BEARING_COUNTERS: Dict[str, str] = {
    "ctrl_cycles": "cycles the memory controller was driving the fabric",
    "dn_busy_cycles": "cycles the distribution network moved data",
}

#: The charge-site vocabulary: a function whose name matches (exactly or
#: by prefix), or that calls a matching function, anchors the stall /
#: fabric attribution for every cycle-bearing increment it dominates.
CHARGE_FAMILIES: Dict[str, List[str]] = {
    "names": ["charge", "charge_levels"],
    "prefixes": ["_charge_", "record_"],
}


@dataclass(frozen=True)
class LayerReport:
    """Statistics of one simulated operation (layer / GEMM / SpMM)."""

    name: str
    kind: str
    cycles: int
    macs: int
    outputs: int
    multiplier_utilization: float
    counters: CounterSet
    extra: Dict[str, object] = field(default_factory=dict)

    def energy(self, config: HardwareConfig) -> EnergyBreakdown:
        """Price this layer's activity with the configuration's table."""
        table = EnergyTable.for_config(config.technology_nm, config.dtype)
        return energy_report(
            self.counters,
            table,
            cycles=self.cycles,
            num_ms=config.num_ms,
            gb_size_kb=config.gb_size_kb,
            clock_ghz=config.clock_ghz,
        )

    def to_payload(self) -> Dict:
        """Plain-data form for worker transport and the simulation cache.

        Unlike :meth:`as_dict` (the human-facing report row), the payload
        round-trips exactly through :meth:`from_payload`: counters keep
        full precision and no derived quantities are added.
        """
        return {
            "name": self.name,
            "kind": self.kind,
            "cycles": int(self.cycles),
            "macs": int(self.macs),
            "outputs": int(self.outputs),
            "multiplier_utilization": float(self.multiplier_utilization),
            "counters": self.counters.as_dict(),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_payload(cls, payload: Dict, name: Optional[str] = None) -> "LayerReport":
        """Rebuild a report from :meth:`to_payload` data.

        ``name`` overrides the stored layer name — a cached result keyed
        by (layer shape, tile, hardware) is shared between identically
        shaped layers with different names.
        """
        counters = CounterSet()
        for key, value in payload["counters"].items():
            counters.add(key, int(value))
        return cls(
            name=name if name is not None else payload["name"],
            kind=payload["kind"],
            cycles=int(payload["cycles"]),
            macs=int(payload["macs"]),
            outputs=int(payload["outputs"]),
            multiplier_utilization=float(payload["multiplier_utilization"]),
            counters=counters,
            extra=dict(payload.get("extra", {})),
        )

    def as_dict(self, config: Optional[HardwareConfig] = None) -> Dict:
        record: Dict = {
            "name": self.name,
            "kind": self.kind,
            "cycles": self.cycles,
            "macs": self.macs,
            "outputs": self.outputs,
            "multiplier_utilization": round(self.multiplier_utilization, 6),
        }
        record.update(self.extra)
        if config is not None:
            energy = self.energy(config)
            record["energy_uj"] = {
                "by_group": {k: round(v, 6) for k, v in energy.by_group_uj.items()},
                "static": round(energy.static_uj, 6),
                "dram": round(energy.dram_uj, 6),
                "total": round(energy.total_uj, 6),
            }
        return record


class SimulationReport:
    """Aggregated statistics of a whole simulation session."""

    def __init__(self, config: HardwareConfig) -> None:
        self.config = config
        self.layers: List[LayerReport] = []
        #: run provenance (tool version, config hash, timestamp, ...) —
        #: mutable so callers can stamp extra keys (e.g. the run seed)
        self.metadata: Dict[str, object] = run_metadata(config)

    def append(self, layer: LayerReport) -> None:
        self.layers.append(layer)

    # ---- aggregates -----------------------------------------------------
    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    def timeline(self) -> List[Dict]:
        """Per-layer execution windows on the accelerator clock.

        Layers execute back-to-back (the framework drives them serially,
        as in the paper's Fig. 2b timeline), so each layer's window is
        the running sum of its predecessors' cycles.
        """
        rows: List[Dict] = []
        clock = 0
        for layer in self.layers:
            rows.append(
                {
                    "name": layer.name,
                    "kind": layer.kind,
                    "start_cycle": clock,
                    "end_cycle": clock + layer.cycles,
                    "cycles": layer.cycles,
                    "share": (
                        layer.cycles / self.total_cycles
                        if self.total_cycles else 0.0
                    ),
                }
            )
            clock += layer.cycles
        return rows

    def merged_counters(self) -> CounterSet:
        merged = CounterSet()
        for layer in self.layers:
            merged.merge(layer.counters)
        return merged

    def component_utilization(self) -> Dict[str, float]:
        """Busy/usage fractions of the major components over the run.

        The "compute unit utilization" the paper's output module reports,
        extended with the DN port occupancy and GB traffic intensity.
        """
        cycles = self.total_cycles
        if cycles == 0:
            return {}
        merged = self.merged_counters()
        macs = self.total_macs
        usage = {
            "multiplier_utilization": macs / (self.config.num_ms * cycles),
            "dn_port_occupancy": merged.get("dn_busy_cycles") / cycles,
            "gb_read_port_occupancy": min(
                1.0,
                merged.get("gb_reads") / (self.config.dn_bandwidth * cycles),
            ),
            "gb_write_port_occupancy": min(
                1.0,
                merged.get("gb_writes") / (self.config.rn_bandwidth * cycles),
            ),
        }
        return {key: round(value, 6) for key, value in usage.items()}

    def total_energy(self) -> EnergyBreakdown:
        table = EnergyTable.for_config(
            self.config.technology_nm, self.config.dtype
        )
        return energy_report(
            self.merged_counters(),
            table,
            cycles=self.total_cycles,
            num_ms=self.config.num_ms,
            gb_size_kb=self.config.gb_size_kb,
            clock_ghz=self.config.clock_ghz,
        )

    def area(self) -> AreaBreakdown:
        return area_report(self.config)

    # ---- serialization --------------------------------------------------
    def as_dict(self) -> Dict:
        energy = self.total_energy()
        area = self.area()
        return {
            "accelerator": self.config.name,
            "metadata": dict(self.metadata),
            "num_ms": self.config.num_ms,
            "dn_bandwidth": self.config.dn_bandwidth,
            "total_cycles": self.total_cycles,
            "total_macs": self.total_macs,
            "runtime_us": self.total_cycles / (self.config.clock_ghz * 1e3),
            "utilization": self.component_utilization(),
            "energy_uj": {
                "by_group": {k: round(v, 6) for k, v in energy.by_group_uj.items()},
                "static": round(energy.static_uj, 6),
                "dram": round(energy.dram_uj, 6),
                "total": round(energy.total_uj, 6),
            },
            "area_um2": {
                "by_group": {k: round(v, 2) for k, v in area.by_group_um2.items()},
                "total": round(area.total_um2, 2),
            },
            "layers": [layer.as_dict() for layer in self.layers],
        }

    def to_json(self, path: Optional[Union[str, Path]] = None, indent: int = 2) -> str:
        """The general JSON statistics file."""
        text = json.dumps(self.as_dict(), indent=indent)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def to_counter_file(self, path: Optional[Union[str, Path]] = None) -> str:
        """The customized counter file: one ``component.event = count`` line
        per activity counter, aggregated over all layers."""
        lines = ["# STONNE-repro activity counter file", f"# accelerator: {self.config.name}"]
        merged = self.merged_counters()
        for name in merged:
            prefix, sep, event = name.partition("_")
            # counters named without a component prefix (no underscore)
            # are written bare so the file parses back to the same name
            key = f"{prefix}.{event}" if sep else prefix
            lines.append(f"{key} = {merged.get(name)}")
        text = "\n".join(lines) + "\n"
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text


def parse_counter_file(text: str) -> CounterSet:
    """Read a counter file back into a :class:`CounterSet` (round-trip)."""
    counters = CounterSet()
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.partition("=")
        component, sep, event = key.strip().partition(".")
        name = f"{component}_{event}" if sep else component
        counters.add(name, int(value.strip()))
    return counters
