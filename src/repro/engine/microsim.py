"""Reference micro-simulation: one clock at a time, through real queues.

The production :class:`~repro.memory.dense_controller.DenseController`
accounts steady phases in closed form (cycle-exact fast-forwarding). This
module is its *honesty check*: a deliberately naive engine that executes
the same mapping one cycle at a time — operand slots staged through a
:class:`~repro.noc.fifo.Fifo`, drained at the distribution network's
bandwidth, one multiply wave per completed step, a wave-pipelined
reduction, and output draining at the RN port width.

It is intentionally restricted to the unambiguous mapping regime
(``folds == 1``, so no loop-ordering choice exists) and the test suite
asserts its cycle counts equal the controller's there. It is also the one
place the FIFO occupancy statistics the paper's output module reports are
produced by an actual queue rather than bulk accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.config.hardware import HardwareConfig
from repro.config.layer import ConvLayerSpec
from repro.config.tile import TileConfig
from repro.errors import MappingError
from repro.memory.dense_controller import LAYER_SETUP_CYCLES
from repro.noc.distribution import build_distribution_network
from repro.noc.fifo import Fifo
from repro.noc.reduction import build_reduction_network


@dataclass(frozen=True)
class MicroSimResult:
    """Outcome of one micro-simulated layer."""

    cycles: int
    steps: int
    fifo_pushes: int
    fifo_peak_occupancy: int


class DenseMicroSim:
    """Cycle-by-cycle execution of a non-folding dense convolution."""

    def __init__(self, config: HardwareConfig) -> None:
        self.config = config
        self.dn = build_distribution_network(
            config.distribution, config.num_ms, config.dn_bandwidth
        )
        self.rn = build_reduction_network(
            config.reduction, config.num_ms, config.rn_bandwidth,
            config.accumulation_buffer,
        )
        self.step_fifo = Fifo("step-operands", depth=config.dn_fifo_depth)

    def run_conv(self, layer: ConvLayerSpec, tile: TileConfig) -> MicroSimResult:
        tile.validate_for(layer, self.config.num_ms)
        if tile.folds_for(layer) != 1:
            raise MappingError(
                "the reference micro-simulation covers the folds == 1 regime"
            )
        cs = tile.cluster_size
        k_iters = math.ceil(layer.k / tile.t_k) * math.ceil(layer.g / tile.t_g)
        n_iters = math.ceil(layer.n / tile.t_n)
        x_iters = math.ceil(layer.x_out / tile.t_x)
        y_iters = math.ceil(layer.y_out / tile.t_y)

        # per-step unique operand slots, exactly the controller's model
        input_clusters = tile.t_g * tile.t_n * tile.t_x * tile.t_y
        full_window = cs
        if (self.config.multiplier.has_forwarding_links
                and layer.r * layer.s > 1):
            fresh_cols = min(tile.t_y * layer.stride, tile.t_s)
            steady_window = min(tile.t_r * tile.t_c * fresh_cols, full_window)
        else:
            steady_window = full_window
        full_slots = full_window * input_clusters
        steady_slots = steady_window * input_clusters
        if not self.dn.supports_multicast:
            full_slots *= tile.t_k
            steady_slots *= tile.t_k

        w_unique = cs * tile.t_k * tile.t_g
        w_dests = w_unique * tile.t_n * tile.t_x * tile.t_y
        if not self.dn.supports_multicast:
            w_unique = w_dests

        clock = LAYER_SETUP_CYCLES
        steps = 0
        nc = tile.num_clusters
        for _k in range(k_iters):
            # stationary weight load of this phase, cycle by cycle
            self.dn.enqueue(w_unique, w_dests)
            while not self.dn.is_idle:
                self.dn.cycle()
                clock += 1
            for _n in range(n_iters):
                for _x in range(x_iters):
                    for y in range(y_iters):
                        slots = full_slots if y == 0 else steady_slots
                        self.step_fifo.push(slots)
                        # drain this step's operands at DN bandwidth
                        pending = self.step_fifo.pop()
                        self.dn.enqueue(max(pending, 1), max(pending, 1))
                        delivery = 0
                        while not self.dn.is_idle:
                            self.dn.cycle()
                            delivery += 1
                        # the wave-pipelined reduction and the output port
                        # bound the step from below
                        drain = self.rn.output_cycles(nc)
                        throughput = (
                            1 if self.rn.pipelined
                            else self.rn.reduction_latency(cs)
                        )
                        clock += max(1, delivery, throughput, drain)
                        steps += 1

        clock += self.dn.pipeline_latency + 1 + self.rn.reduction_latency(cs)
        return MicroSimResult(
            cycles=clock,
            steps=steps,
            fifo_pushes=self.step_fifo.pushes,
            fifo_peak_occupancy=self.step_fifo.peak_occupancy,
        )


def compare_with_controller(
    config: HardwareConfig, layer: ConvLayerSpec, tile: TileConfig
) -> Tuple[int, int]:
    """(micro-sim cycles, controller cycles) for the same mapping.

    The dense controller additionally models DRAM stalls; they are zero
    for workloads that fit the double-buffered GB, which the comparison
    regime guarantees.
    """
    from repro.engine.accelerator import Accelerator

    micro = DenseMicroSim(config).run_conv(layer, tile)
    acc = Accelerator(config)
    result = acc.dense_controller.run_conv(layer, tile)
    return micro.cycles, result.cycles
