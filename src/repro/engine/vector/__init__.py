"""Closed-form / batched kernels for the dense hot paths.

The cycle-stepped engines (:mod:`repro.engine.systolic`,
:mod:`repro.memory.dense_controller` over the DN/MN/RN fabrics) walk
deterministic schedules: every tile, steady-phase step and drain has a
cost that is a pure function of the geometry and the hardware
parameters. This package collapses those walks into batched arithmetic —
tile-class aggregation for the systolic array, segment-table aggregation
for the dense controller — producing the **exact same** cycles,
``KNOWN_COUNTERS`` values, energy and trace-visible phase boundaries as
the reference, which stays in place as the oracle.

Selection is governed by :attr:`HardwareConfig.engine_mode`
(``cycle`` / ``vector`` / ``auto``) plus the ``STONNE_ENGINE_MODE``
environment override; the dispatch predicate lives in
:mod:`repro.engine.vector.predicate`. Data-dependent timing — SpMM, the
sparse fabrics, SNAPEA early termination — never routes here, mirroring
the :class:`repro.parallel.SimCache` refusal predicate.

Equivalence is enforced, not assumed: the Hypothesis differential suite
(``tests/differential/test_vector_equivalence.py``) pins byte-identical
report payloads between modes, and ``tests/unit/test_vector_golden.py``
pins hand-computed cycle/counter tables so a regression points at the
exact formula. See ``docs/VECTOR_ENGINE.md`` for the per-component
equivalence argument and the recipe for adding a new kernel.
"""

from repro.engine.vector.dense import run_layer_closed_form
from repro.engine.vector.predicate import (
    ENGINE_MODE_ENV,
    resolve_engine_mode,
    use_vector_kernels,
    vector_eligible,
)
from repro.engine.vector.systolic import run_gemm_closed_form, tile_classes

__all__ = [
    "ENGINE_MODE_ENV",
    "resolve_engine_mode",
    "run_gemm_closed_form",
    "run_layer_closed_form",
    "tile_classes",
    "use_vector_kernels",
    "vector_eligible",
]
