"""Batched dense-controller kernel (the vector twin of
:meth:`repro.memory.dense_controller.DenseController._run`).

The reference controller is already phase-batched: a layer is at most
four steady-phase *(step cost, repeats)* segments plus the stationary
weight loads, and each segment is accounted through the live DN queue
(``enqueue`` → ``_scale_last_delivery`` → ``skip_cycles``). This kernel
collapses that remaining sequencing into pure arithmetic over the
segment table.

Equivalence argument, per piece of the reference:

- **plan** — :meth:`DenseController._plan` is invoked verbatim (it is
  pure decision logic plus the ``mn/rn_reconfigurations`` counters and
  the fabric-mapping validation), so loop ordering, step costs and any
  :class:`MappingError` are shared code.
- **DN queue** — within one segment the reference enqueues
  ``slots * repeats`` bandwidth slots and then skips
  ``step_cycles * repeats`` cycles. ``step_cycles >= delivery_cycles =
  ceil(slots / bandwidth)`` by construction of :meth:`_step_cycles`, so
  ``skip`` always fully drains the queue: the busy count collapses to
  ``min(step_cycles * repeats, ceil(slots * repeats / bandwidth))`` and
  segments never interact through leftover pending work. Weight loads
  drain identically (``w_cycles = ceil(w_slots / bandwidth)``).
- **counters** — every ``record_*``/``counters.add`` in the reference is
  a pure sum (zero increments are dropped in both paths), so per-segment
  amounts aggregate to repeat-weighted totals; :class:`CounterSet`
  serializes sorted, making add order unobservable.
- **DRAM** — :meth:`_account_dram` runs verbatim with identical
  arguments, so bytes, row-buffer state and stalls are shared code.
- **trace spans** — the reference emits four fixed spans per segment
  plus setup/weight-load/drain/stall spans, all with closed-form
  boundaries; the kernel emits the identical sequence. Metrics sampling
  never reaches this kernel (see :mod:`repro.engine.vector.predicate`).
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.config.layer import ConvLayerSpec
from repro.config.tile import TileConfig
from repro.memory.dense_controller import (
    LAYER_SETUP_CYCLES,
    DenseController,
    DenseRunResult,
    _StepCost,
)
from repro.observability.telemetry.scopes import component_scope


def _account_weight_loads_batched(
    ctrl: DenseController,
    unique: int,
    destinations: int,
    w_cycles: int,
    loads: int,
) -> int:
    """Batched :meth:`DenseController._account_weight_loads`."""
    if loads <= 0:
        return 0
    dn = ctrl.dn
    dn._validate(unique, destinations)
    slots = dn._bandwidth_slots(unique, destinations)
    dn.counters.add(
        "dn_switch_traversals",
        dn._switch_traversals(unique, destinations) * loads,
    )
    dn.counters.add(
        "dn_wire_traversals",
        dn._wire_traversals(unique, destinations) * loads,
    )
    dn.counters.add("dn_elements_sent", unique * loads)
    dn.record_fabric_traversals(unique, destinations, times=loads)
    # the queue fully drains (w_cycles covers one load's slots), so the
    # busy count is the drained-queue closed form
    dn.counters.add(
        "dn_busy_cycles",
        min(w_cycles * loads, math.ceil(slots * loads / dn.bandwidth)),
    )
    dn._current_cycle += w_cycles * loads
    ctrl.gb.record_reads(unique * loads)
    return w_cycles * loads


def _account_segments_batched(
    ctrl: DenseController,
    cs: int,
    nc: int,
    segments: List[Tuple[_StepCost, int, int]],
) -> None:
    """Batched :meth:`DenseController._account_steps` over all segments."""
    dn, mn, rn, gb = ctrl.dn, ctrl.mn, ctrl.rn, ctrl.gb
    switch = wire = elements = busy = dn_cycles = 0
    gb_reads = fifo_pushes = fifo_pops = 0
    steps = forwarded = 0
    psum_injection_steps = accumulation_steps = 0
    psum_writebacks = outputs_completed = 0
    for cost, repeats, step_cycles in segments:
        slots = max(cost.dn_slots, 1)
        dests = max(cost.destinations, 1)
        dn._validate(slots, dests)
        switch += dn._switch_traversals(slots, dests) * repeats
        wire += dn._wire_traversals(slots, dests) * repeats
        # per-level fabric charge per segment: same (slots, dests)
        # decomposition the reference's enqueue + scale sites emit
        dn.record_fabric_traversals(slots, dests, times=repeats)
        elements += slots * repeats
        bw_slots = dn._bandwidth_slots(slots, dests)
        busy += min(
            step_cycles * repeats,
            math.ceil(bw_slots * repeats / dn.bandwidth),
        )
        dn_cycles += step_cycles * repeats
        gb_reads += (cost.unique_values + cost.weight_unique) * repeats
        fifo_pushes += cost.dn_slots * repeats
        fifo_pops += (
            cost.outputs_completed + cost.psum_writebacks
        ) * repeats
        steps += repeats
        forwarded += cost.forwarded * repeats
        if cost.psum_writebacks:
            psum_injection_steps += repeats
            psum_writebacks += cost.psum_writebacks * repeats
        elif rn.has_accumulators:
            accumulation_steps += repeats
        outputs_completed += cost.outputs_completed * repeats

    dn.counters.add("dn_switch_traversals", switch)
    dn.counters.add("dn_wire_traversals", wire)
    dn.counters.add("dn_elements_sent", elements)
    dn.counters.add("dn_busy_cycles", busy)
    dn._current_cycle += dn_cycles
    gb.record_reads(gb_reads)
    # tier-boundary FIFO activity (GB->DN staging, RN->GB drain)
    ctrl.counters.add("ctrl_fifo_pushes", fifo_pushes)
    ctrl.counters.add("ctrl_fifo_pops", fifo_pops)
    mn.record_multiplications(cs * nc * steps)
    if forwarded:
        mn.record_forwarding(forwarded)
    with ctrl.obs.profiler.phase("reduce"), component_scope("noc.reduction"):
        rn.record_cluster_reductions(cs, steps * nc)
        if psum_injection_steps:
            mn.record_psum_injections(nc * psum_injection_steps)
        if psum_writebacks:
            rn.record_outputs(psum_writebacks)
            gb.record_writes(psum_writebacks)
        if accumulation_steps:
            rn.record_accumulations(nc * accumulation_steps)
        if outputs_completed:
            rn.record_outputs(outputs_completed)
            gb.record_writes(outputs_completed)


def run_layer_closed_form(
    ctrl: DenseController, layer: ConvLayerSpec, tile: TileConfig
) -> DenseRunResult:
    """Simulate one dense layer with segment-aggregated accounting."""
    obs = ctrl.obs
    prof = obs.profiler
    with prof.phase("map"):
        plan_state = ctrl._plan(layer, tile)
    (cs, tile, plan, weight_loads, w_unique, w_dests, w_cycles,
     total_steps) = plan_state

    tracer = obs.tracer
    base = obs.base
    ctrl.counters.add("ctrl_layers_run", 1)
    cycles = LAYER_SETUP_CYCLES
    if tracer.enabled:
        tracer.span("CTRL:setup", ctrl.name, base, base + cycles)

    with prof.phase("distribute"), component_scope("noc.distribution"):
        load_cycles = _account_weight_loads_batched(
            ctrl, w_unique, w_dests, w_cycles, weight_loads
        )
    if tracer.enabled and load_cycles:
        tracer.span(
            "DN:weight-load", ctrl.dn.name, base + cycles,
            base + cycles + load_cycles,
            unique=w_unique, loads=weight_loads,
        )
    cycles += load_cycles

    stall_cycles = 0
    with prof.phase("compute"), component_scope("engine.vector"):
        segments = [
            (cost, repeats, ctrl._step_cycles(cost, cs))
            for cost, repeats in plan if repeats > 0
        ]
        for cost, repeats, step_cycles in segments:
            segment = step_cycles * repeats
            if tracer.enabled:
                start, end = base + cycles, base + cycles + segment
                stall = max(0, step_cycles - 1) * repeats
                tracer.span(
                    "DN:deliver", ctrl.dn.name, start, end,
                    steps=repeats, slots_per_step=cost.dn_slots,
                    stall_cycles=stall,
                )
                tracer.span(
                    "MN:multiply", ctrl.mn.name, start, end,
                    multiplications=cs * tile.num_clusters * repeats,
                    forwarded=cost.forwarded * repeats,
                )
                tracer.span(
                    "RN:reduce", ctrl.rn.name, start, end,
                    outputs=cost.outputs_completed * repeats,
                    psum_writebacks=cost.psum_writebacks * repeats,
                )
            cycles += segment
            stall_cycles += max(0, step_cycles - 1) * repeats
        _account_segments_batched(ctrl, cs, tile.num_clusters, segments)

    with prof.phase("drain"):
        # Pipeline fill/drain: one DN traversal, the multiply stage and
        # the deepest reduction still in flight at the end of the run.
        drain = (
            ctrl.dn.pipeline_latency + 1 + ctrl.rn.reduction_latency(cs)
        )
        if tracer.enabled:
            tracer.span(
                "CTRL:pipeline-drain", ctrl.name, base + cycles,
                base + cycles + drain,
            )
        cycles += drain

        macs = layer.num_macs
        outputs = layer.num_outputs
        dram_stall = ctrl._account_dram(layer, cycles)
        if tracer.enabled and dram_stall:
            tracer.span(
                "DRAM:stall", ctrl.dram.name, base + cycles,
                base + cycles + dram_stall,
            )
        cycles += dram_stall

    ledger = obs.stalls
    if ledger is not None:
        # same charging code, same segment table as the reference walk:
        # byte-identical ledgers by construction
        ctrl._charge_stalls(ledger, cs, load_cycles, segments, drain, dram_stall)
    fabric = obs.fabric
    if fabric is not None:
        # FIFO occupancy follows the same shared-site pattern
        ctrl._charge_fifos(fabric, segments)

    utilization = macs / (ctrl.mn.num_ms * cycles) if cycles else 0.0
    ctrl._current_cycle += cycles
    ctrl.counters.add("ctrl_cycles", cycles)
    return DenseRunResult(
        cycles=cycles,
        macs=macs,
        outputs=outputs,
        steps=total_steps,
        stall_cycles=stall_cycles,
        dram_stall_cycles=dram_stall,
        multiplier_utilization=utilization,
    )
