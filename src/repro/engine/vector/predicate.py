"""Engine-mode resolution and the vector-kernel dispatch predicate.

The dense hot paths of the simulator exist twice:

- the **cycle-stepped reference** — :class:`repro.engine.systolic.SystolicEngine`
  walking every tile and :class:`repro.memory.dense_controller.DenseController`
  walking every steady-phase segment, accounting activity as it goes; and
- the **closed-form kernels** of :mod:`repro.engine.vector` — the same
  deterministic schedule collapsed into batched arithmetic.

Both produce byte-identical reports (``tests/differential/
test_vector_equivalence.py`` pins this), so picking between them is purely
a host-speed decision. This module owns that decision:

- :func:`resolve_engine_mode` applies the ``STONNE_ENGINE_MODE``
  environment override on top of :attr:`HardwareConfig.engine_mode`;
- :func:`use_vector_kernels` is the dispatch predicate the engines call
  once per layer/GEMM;
- :func:`vector_eligible` mirrors the :class:`repro.parallel.SimCache`
  refusal predicate for workload-level checks: anything whose timing is
  data dependent (SpMM, sparse fabrics, SNAPEA early termination) must
  stay on the stepped path, exactly as it must stay out of the cache.

Observability interacts with the choice in one fundamental way: metrics
sampling (:meth:`Observability.sample`) snapshots the *live* counter file
at every tile/step boundary. Reproducing those intermediate counter
states byte-for-byte requires stepping through the boundaries with the
counters mutating along the way, so whenever a metrics recorder is
attached the reference path runs regardless of mode. Event tracing does
not have this problem — span boundaries are closed-form functions of the
schedule, so ``vector`` mode replays them exactly without per-tile
accounting — but ``auto`` (the default) conservatively falls back to the
reference whenever tracing or sampling is active.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any

from repro.config.hardware import EngineMode, HardwareConfig
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.observability.context import Observability

#: environment variable overriding the configured engine mode at dispatch
#: time (used by the CI matrix leg that re-runs tier-1 under ``vector``)
ENGINE_MODE_ENV = "STONNE_ENGINE_MODE"


def resolve_engine_mode(config: HardwareConfig) -> EngineMode:
    """The effective engine mode: ``STONNE_ENGINE_MODE`` over the config."""
    raw = os.environ.get(ENGINE_MODE_ENV)
    if not raw:
        return config.engine_mode
    try:
        return EngineMode(raw.strip().lower())
    except ValueError:
        valid = ", ".join(mode.value for mode in EngineMode)
        raise ConfigurationError(
            f"{ENGINE_MODE_ENV}={raw!r} is not a valid engine mode "
            f"(expected one of: {valid})"
        ) from None


def use_vector_kernels(config: HardwareConfig, obs: "Observability") -> bool:
    """Whether this layer should run on the closed-form kernels.

    Called by :meth:`SystolicEngine.run_gemm` and
    :meth:`DenseController._run` — i.e. only ever on paths whose timing is
    already value-independent (the sparse controller and the SNAPEA
    context never consult it, so data-dependent timing always steps).
    """
    mode = resolve_engine_mode(config)
    if mode is EngineMode.CYCLE:
        return False
    if config.is_sparse:
        # unreachable from the dense engines, but keep the predicate safe
        # for external callers: sparse timing is data dependent
        return False
    if obs.metrics is not None:
        # metrics samples snapshot intermediate counter state at every
        # tile/step boundary; only the stepped walk reproduces them
        return False
    if mode is EngineMode.AUTO and obs.tracer.enabled:
        # vector mode replays trace spans closed-form; auto plays it safe
        return False
    return True


def vector_eligible(workload: Any, config: HardwareConfig) -> bool:
    """Workload-level eligibility: the SimCache refusal predicate.

    A (workload, config) pair can run on the vector kernels exactly when
    its timing is value independent — the same property that makes it
    cacheable. Delegates to :func:`repro.parallel.cache.cacheable` so the
    two predicates can never drift apart.
    """
    from repro.parallel.cache import cacheable

    return cacheable(workload, config)
