"""Closed-form systolic-array kernel (the vector twin of
:meth:`repro.engine.systolic.SystolicEngine.run_gemm`).

The reference engine walks every ``dim x dim`` tile of the GEMM in a
Python loop, charging cycles and activity per tile. That schedule is
fully regular, which makes it collapsible: along each axis a tile is
either *full* (``dim`` wide) or the single *remainder* tile, so the whole
tile grid partitions into at most four *(shape, count)* classes and every
per-tile quantity — being a function of the tile shape alone — aggregates
to a count-weighted sum over those classes.

Equivalence argument, per output of the reference loop:

- **cycles** — ``tile_cycles`` depends only on the tile shape, so the sum
  over tiles equals ``sum(count * tile_cycles(shape))`` over classes. The
  kernel calls :meth:`SystolicEngine.tile_cycles` itself (once per class),
  so there is a single source of truth for the wavefront formula and the
  reference's validation errors (``k < 1``, stream dimension ``< 1``)
  raise identically.
- **counters** — ``_account_tile(tm, k, tn)`` adds five per-tile amounts,
  each polynomial in the tile shape; :class:`CounterSet` iterates and
  serializes sorted, so only per-name totals are observable and the
  class-weighted sums are byte-equivalent. Zero increments are no-ops in
  both paths (``CounterSet.add`` drops them).
- **GB / DRAM** — ``gb.record_reads``/``record_writes`` are pure counter
  sums (aggregated the same way); ``_account_dram`` is invoked verbatim —
  once per GEMM in both paths, with identical arguments — so DRAM bytes,
  row-buffer state and the stall computation are shared code.
- **trace spans** — span boundaries are prefix sums of the per-tile
  cycle counts, a closed-form function of the schedule; with a tracer
  attached the kernel replays the exact tile order emitting `PE:tile`
  spans with the same arguments (no counter accounting in the replay).
  Metrics sampling never reaches this kernel — the dispatch predicate
  routes sampled runs to the reference walk (see
  :mod:`repro.engine.vector.predicate`).
- **functional output** — the engines' numeric product is timing
  irrelevant (the accelerator layers report the functional-path output);
  the kernel computes one whole ``a @ b`` exactly as the reference
  weight-stationary path does, instead of the output-stationary path's
  per-tile block writes.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.engine.systolic import (
    LAYER_SETUP_CYCLES,
    SystolicEngine,
    SystolicRunResult,
)
from repro.errors import ConfigurationError
from repro.observability.telemetry.scopes import component_scope


def _axis_classes(extent: int, dim: int) -> List[Tuple[int, int]]:
    """``(tile_extent, tile_count)`` classes of one tiled axis."""
    full, rem = divmod(extent, dim)
    classes = []
    if full:
        classes.append((dim, full))
    if rem:
        classes.append((rem, 1))
    return classes


def tile_classes(
    engine: SystolicEngine, m: int, k: int, n: int
) -> List[Tuple[int, int, int, int]]:
    """The ``(tm, k, tn, count)`` classes of the engine's tile grid.

    The triple matches the reference's ``_account_tile(tm, k, tn)``
    argument order: output-stationary tiles partition ``(m, n)`` with the
    full reduction ``k`` streaming; weight-stationary tiles partition
    ``(k, n)`` with the full ``m`` activation rows streaming.
    """
    dim = engine.dim
    if engine.weight_stationary:
        return [
            (m, tk, tn, ck * cn)
            for tk, ck in _axis_classes(k, dim)
            for tn, cn in _axis_classes(n, dim)
        ]
    return [
        (tm, k, tn, cm * cn)
        for tm, cm in _axis_classes(m, dim)
        for tn, cn in _axis_classes(n, dim)
    ]


def _replay_tile_spans(
    engine: SystolicEngine, m: int, k: int, n: int, base: int
) -> int:
    """Emit the reference loop's ``PE:tile`` spans; returns end cycle."""
    tracer = engine.obs.tracer
    dim = engine.dim
    cycles = LAYER_SETUP_CYCLES
    if engine.weight_stationary:
        for ki in range(math.ceil(k / dim)):
            tk = min(dim, k - ki * dim)
            for ni in range(math.ceil(n / dim)):
                tn = min(dim, n - ni * dim)
                tile = engine.tile_cycles(m, tk, tn)
                tracer.span(
                    "PE:tile", engine.name, base + cycles,
                    base + cycles + tile,
                    m=m, k=tk, n=tn, macs=m * tk * tn,
                )
                cycles += tile
    else:
        for mi in range(math.ceil(m / dim)):
            tm = min(dim, m - mi * dim)
            for ni in range(math.ceil(n / dim)):
                tn = min(dim, n - ni * dim)
                tile = engine.tile_cycles(tm, k, tn)
                tracer.span(
                    "PE:tile", engine.name, base + cycles,
                    base + cycles + tile,
                    m=tm, k=k, n=tn, macs=tm * k * tn,
                )
                cycles += tile
    return cycles


def run_gemm_closed_form(
    engine: SystolicEngine, a: np.ndarray, b: np.ndarray
) -> Tuple[np.ndarray, SystolicRunResult]:
    """Execute ``a @ b`` with class-aggregated tile accounting."""
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ConfigurationError(
            f"incompatible GEMM operands {a.shape} @ {b.shape}"
        )
    m, k = a.shape
    _, n = b.shape

    obs = engine.obs
    tracer = obs.tracer
    base = obs.base
    with obs.profiler.phase("compute"), component_scope("engine.vector"):
        out = a @ b
        classes = tile_classes(engine, m, k, n)
        # per-class cycle counts via the reference formula (also performs
        # the reference's tile validation, raising the same MappingError)
        per_tile = np.array(
            [engine.tile_cycles(tm, tk, tn) for tm, tk, tn, _ in classes],
            dtype=np.int64,
        )
        tm_ = np.array([c[0] for c in classes], dtype=np.int64)
        tk_ = np.array([c[1] for c in classes], dtype=np.int64)
        tn_ = np.array([c[2] for c in classes], dtype=np.int64)
        cnt = np.array([c[3] for c in classes], dtype=np.int64)

        tiles = int(cnt.sum())
        cycles = LAYER_SETUP_CYCLES + int((cnt * per_tile).sum())
        macs = int((cnt * tm_ * tk_ * tn_).sum())
        # operands hop PE-to-PE: each A value crosses tn PEs, each B value tm
        hops = int(
            (cnt * (tm_ * tk_ * (tn_ - 1) + tk_ * tn_ * (tm_ - 1))).sum()
        )
        outputs_written = int((cnt * tm_ * tn_).sum())
        # GB feeds the array edges once per tile; the same expression is
        # both the DN wire count and the GB read count in the reference
        edge_feeds = int((cnt * (tm_ * tk_ + tk_ * tn_)).sum())

        counters = engine.counters
        counters.add("mn_multiplications", macs)
        counters.add("mn_forwarding_hops", hops)
        counters.add("rn_accumulator_ops", macs)
        counters.add("rn_outputs_written", outputs_written)
        counters.add("dn_wire_traversals", edge_feeds)
        engine.gb.record_reads(edge_feeds)
        engine.gb.record_writes(outputs_written)

        if tracer.enabled:
            _replay_tile_spans(engine, m, k, n, base)

    with obs.profiler.phase("drain"):
        dram_stall = engine._account_dram(m, k, n, cycles)
        if tracer.enabled and dram_stall:
            tracer.span(
                "DRAM:stall", engine.dram.name, base + cycles,
                base + cycles + dram_stall,
            )
        cycles += dram_stall
    ledger = obs.stalls
    if ledger is not None:
        # same charging code, same tile classes as the reference walk:
        # byte-identical ledgers by construction
        engine._charge_stalls(ledger, m, k, n, dram_stall)
    fabric = obs.fabric
    if fabric is not None:
        # fabric decomposition shares the same tile classes
        engine._charge_fabric(fabric, m, k, n)
    engine._current_cycle += cycles
    engine.counters.add("ctrl_cycles", cycles)
    utilization = macs / (engine.config.num_ms * cycles) if cycles else 0.0
    return out, SystolicRunResult(
        cycles=cycles,
        macs=macs,
        outputs=m * n,
        tiles=tiles,
        multiplier_utilization=utilization,
        dram_stall_cycles=dram_stall,
    )
