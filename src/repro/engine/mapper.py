"""The Mapper (paper Fig. 2a).

Given the DNN layer type/shape to be executed and the configured
microarchitecture, the Mapper produces the signals the Configuration Unit
programs into the fabric: the tile (for dense executions) and the derived
cluster layout. Users may force an explicit tile, exactly like the paper's
per-layer tile configuration files; otherwise the mapper generates one
that fills the multiplier network.
"""

from __future__ import annotations

from typing import Optional

from repro.config.hardware import ControllerKind, HardwareConfig
from repro.config.layer import ConvLayerSpec, GemmSpec
from repro.config.tile import TileConfig, generate_conv_tile, generate_gemm_tile
from repro.errors import MappingError


class Mapper:
    """Chooses and validates tiles for the configured accelerator."""

    def __init__(self, config: HardwareConfig) -> None:
        self.config = config

    def tile_for_conv(
        self, layer: ConvLayerSpec, tile: Optional[TileConfig] = None
    ) -> TileConfig:
        if self.config.controller is ControllerKind.SPARSE:
            raise MappingError(
                "sparse accelerators execute convolutions as im2col GEMMs; "
                "use the SpMM path"
            )
        from repro.config.hardware import ReductionKind

        chosen = tile or generate_conv_tile(
            layer,
            self.config.num_ms,
            bandwidth=self.config.dn_bandwidth,
            forwarding=self.config.multiplier.has_forwarding_links,
            power_of_two_clusters=self.config.reduction is ReductionKind.RT,
        )
        chosen.validate_for(layer, self.config.num_ms)
        self._check_reduction(chosen)
        return chosen

    def tile_for_gemm(
        self, gemm: GemmSpec, tile: Optional[TileConfig] = None
    ) -> TileConfig:
        chosen = tile or generate_gemm_tile(
            gemm, self.config.num_ms, bandwidth=self.config.dn_bandwidth
        )
        self._check_reduction(chosen)
        return chosen

    def _check_reduction(self, tile: TileConfig) -> None:
        """Fixed-cluster RNs constrain the shapes a tile may take."""
        from repro.config.hardware import ReductionKind

        size = tile.cluster_size
        if self.config.reduction is ReductionKind.RT and size & (size - 1):
            raise MappingError(
                f"a plain reduction tree cannot reduce a {size}-wide cluster; "
                "choose a power-of-two tile"
            )
