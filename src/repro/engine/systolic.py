"""Cycle-by-cycle output-stationary systolic array (TPU-like).

The engine models the classic OS dataflow the paper validates against
SCALE-Sim's TPU RTL: operands enter skewed at the west (A, the stationary
matrix rows) and north (B, the streaming columns) edges, hop one PE per
cycle over the point-to-point links, and every PE accumulates its output
in place; results drain through the column buses when the wavefront
passes.

For an ``A x A`` array multiplying an ``m x k`` by ``k x n`` tile, the
compute wavefront spans ``k + m + n - 2`` cycles and the fill/drain
pipeline adds a constant :data:`PIPE_OVERHEAD`; larger GEMMs run as a
sequence of such tiles (the RTL of Table V executes tiles back-to-back,
which the engine mirrors). :meth:`SystolicEngine.run_gemm` fast-forwards
through this deterministic schedule by default — producing exactly the
cycle count the explicit per-cycle loop yields, as the test suite checks
against :meth:`simulate_tile_cycle_by_cycle`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.config.hardware import HardwareConfig
from repro.errors import ConfigurationError, MappingError
from repro.memory.dram import Dram
from repro.memory.global_buffer import GlobalBuffer
from repro.noc.base import ClockedComponent
from repro.observability.stalls import StallLedger
from repro.observability.telemetry.scopes import component_scope

#: fixed pipeline fill/drain cycles per tile (weight-feed setup, edge
#: buffers, and the output drain handshake), calibrated against the
#: SCALE-Sim TPU RTL counts of Table V
PIPE_OVERHEAD = 4

#: per-layer configuration cost: zero — the SCALE-Sim TPU RTL of Table V
#: streams tiles back-to-back with no inter-layer gap, and the per-tile
#: PIPE_OVERHEAD already covers the initial fill
LAYER_SETUP_CYCLES = 0


@dataclass(frozen=True)
class SystolicRunResult:
    """Summary of one GEMM executed on the systolic array."""

    cycles: int
    macs: int
    outputs: int
    tiles: int
    multiplier_utilization: float
    dram_stall_cycles: int

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.cycles if self.cycles else 0.0


class SystolicEngine(ClockedComponent):
    """Output-stationary ``A x A`` PE grid with PoPN edge feeding."""

    def __init__(
        self,
        config: HardwareConfig,
        gb: GlobalBuffer,
        dram: Dram,
        name: str = "systolic",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.dim = config.systolic_dim
        self.gb = gb
        self.dram = dram
        from repro.config.hardware import Dataflow

        #: output-stationary (the paper's validated configuration) or
        #: weight-stationary (the TPUv1-style alternative)
        self.weight_stationary = (
            config.dataflow is Dataflow.WEIGHT_STATIONARY
        )

    # ------------------------------------------------------------------
    def tile_cycles(self, m: int, k: int, n: int) -> int:
        """Deterministic cycle count of one ``m x k x n`` tile.

        Output-stationary: operands stream skewed, the wavefront spans
        ``k + m + n - 2``. Weight-stationary (``k x n`` weights pinned,
        ``m`` activation rows streaming, psums flowing south): ``k``
        preload cycles plus the ``m + k + n - 2`` stream/drain span.
        """
        if self.weight_stationary:
            if not (1 <= k <= self.dim and 1 <= n <= self.dim):
                raise MappingError(
                    f"WS tile {k}x{n} exceeds the {self.dim}x{self.dim} array"
                )
            if m < 1:
                raise MappingError("tile stream dimension must be >= 1")
            return k + (m + k + n - 2) + PIPE_OVERHEAD
        if not (1 <= m <= self.dim and 1 <= n <= self.dim):
            raise MappingError(
                f"tile {m}x{n} exceeds the {self.dim}x{self.dim} array"
            )
        if k < 1:
            raise MappingError("tile reduction dimension must be >= 1")
        return k + m + n - 2 + PIPE_OVERHEAD

    def run_gemm(
        self, a: np.ndarray, b: np.ndarray
    ) -> Tuple[np.ndarray, SystolicRunResult]:
        """Execute ``a @ b`` tile by tile; returns (result, summary).

        Depending on :attr:`HardwareConfig.engine_mode` the deterministic
        tile schedule is either walked tile-by-tile (the reference below,
        the oracle of the differential suite) or collapsed into the
        byte-identical closed form of :mod:`repro.engine.vector`.
        """
        from repro.engine.vector.predicate import use_vector_kernels

        if use_vector_kernels(self.config, self.obs):
            from repro.engine.vector.systolic import run_gemm_closed_form

            return run_gemm_closed_form(self, a, b)
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ConfigurationError(
                f"incompatible GEMM operands {a.shape} @ {b.shape}"
            )
        m, k = a.shape
        _, n = b.shape
        out = np.zeros((m, n), dtype=np.float32)

        obs = self.obs
        tracer = obs.tracer
        base = obs.base
        cycles = LAYER_SETUP_CYCLES
        tiles = 0
        macs = 0
        with obs.profiler.phase("compute"), component_scope("engine.systolic"):
            if self.weight_stationary:
                # tiles partition the stationary (K x N) weight matrix; the
                # full M activation rows stream through each tile
                out[:, :] = a @ b
                k_tiles = math.ceil(k / self.dim)
                n_tiles = math.ceil(n / self.dim)
                for ki in range(k_tiles):
                    tk = min(self.dim, k - ki * self.dim)
                    for ni in range(n_tiles):
                        tn = min(self.dim, n - ni * self.dim)
                        tile = self.tile_cycles(m, tk, tn)
                        if tracer.enabled:
                            tracer.span(
                                "PE:tile", self.name, base + cycles,
                                base + cycles + tile,
                                m=m, k=tk, n=tn, macs=m * tk * tn,
                            )
                        cycles += tile
                        tiles += 1
                        macs += m * tk * tn
                        self._account_tile(m, tk, tn)
                        obs.sample(cycles)
            else:
                m_tiles = math.ceil(m / self.dim)
                n_tiles = math.ceil(n / self.dim)
                for mi in range(m_tiles):
                    m_lo, m_hi = mi * self.dim, min((mi + 1) * self.dim, m)
                    for ni in range(n_tiles):
                        n_lo, n_hi = ni * self.dim, min((ni + 1) * self.dim, n)
                        tm, tn = m_hi - m_lo, n_hi - n_lo
                        out[m_lo:m_hi, n_lo:n_hi] = (
                            a[m_lo:m_hi, :] @ b[:, n_lo:n_hi]
                        )
                        tile = self.tile_cycles(tm, k, tn)
                        if tracer.enabled:
                            tracer.span(
                                "PE:tile", self.name, base + cycles,
                                base + cycles + tile,
                                m=tm, k=k, n=tn, macs=tm * k * tn,
                            )
                        cycles += tile
                        tiles += 1
                        macs += tm * k * tn
                        self._account_tile(tm, k, tn)
                        obs.sample(cycles)

        with obs.profiler.phase("drain"):
            dram_stall = self._account_dram(m, k, n, cycles)
            if tracer.enabled and dram_stall:
                tracer.span(
                    "DRAM:stall", self.dram.name, base + cycles,
                    base + cycles + dram_stall,
                )
            cycles += dram_stall
            obs.sample(cycles)
        ledger = obs.stalls
        if ledger is not None:
            self._charge_stalls(ledger, m, k, n, dram_stall)
        fabric = obs.fabric
        if fabric is not None:
            self._charge_fabric(fabric, m, k, n)
        self._current_cycle += cycles
        self.counters.add("ctrl_cycles", cycles)
        utilization = macs / (self.config.num_ms * cycles) if cycles else 0.0
        return out, SystolicRunResult(
            cycles=cycles,
            macs=macs,
            outputs=m * n,
            tiles=tiles,
            multiplier_utilization=utilization,
            dram_stall_cycles=dram_stall,
        )

    # ------------------------------------------------------------------
    def simulate_tile_cycle_by_cycle(
        self, a_tile: np.ndarray, b_tile: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        """Explicit per-cycle simulation of one tile.

        Moves the real operand values through the skewed pipelines one
        clock at a time and returns ``(outputs, cycles)``; used to verify
        that :meth:`tile_cycles` fast-forwarding is cycle-exact.
        """
        a_tile = np.asarray(a_tile, dtype=np.float32)
        b_tile = np.asarray(b_tile, dtype=np.float32)
        m, k = a_tile.shape
        k2, n = b_tile.shape
        if k != k2:
            raise ConfigurationError("tile operand shapes disagree")
        if m > self.dim or n > self.dim:
            raise MappingError("tile exceeds the PE array")

        a_reg = np.zeros((m, n), dtype=np.float32)
        b_reg = np.zeros((m, n), dtype=np.float32)
        a_valid = np.zeros((m, n), dtype=bool)
        b_valid = np.zeros((m, n), dtype=bool)
        acc = np.zeros((m, n), dtype=np.float32)

        span = k + m + n - 2
        rows = np.arange(m)
        cols = np.arange(n)
        for t in range(span):
            # shift east / south (one PoPN hop per cycle)
            a_reg[:, 1:] = a_reg[:, :-1]
            a_valid[:, 1:] = a_valid[:, :-1]
            b_reg[1:, :] = b_reg[:-1, :]
            b_valid[1:, :] = b_valid[:-1, :]
            # inject skewed operands at the edges
            a_k = t - rows
            a_mask = (a_k >= 0) & (a_k < k)
            a_reg[:, 0] = np.where(a_mask, a_tile[rows, np.clip(a_k, 0, k - 1)], 0.0)
            a_valid[:, 0] = a_mask
            b_k = t - cols
            b_mask = (b_k >= 0) & (b_k < k)
            b_reg[0, :] = np.where(b_mask, b_tile[np.clip(b_k, 0, k - 1), cols], 0.0)
            b_valid[0, :] = b_mask
            # multiply-accumulate where both operands are live
            live = a_valid & b_valid
            acc += np.where(live, a_reg * b_reg, 0.0)
            self._current_cycle += 1

        return acc, span + PIPE_OVERHEAD

    # ------------------------------------------------------------------
    def _account_tile(self, tm: int, k: int, tn: int) -> None:
        macs = tm * k * tn
        self.counters.add("mn_multiplications", macs)
        # operands hop PE-to-PE: each A value crosses tn PEs, each B value tm
        self.counters.add("mn_forwarding_hops", tm * k * (tn - 1) + k * tn * (tm - 1))
        # output-stationary accumulate in the PE register file
        self.counters.add("rn_accumulator_ops", macs)
        self.counters.add("rn_outputs_written", tm * tn)
        self.counters.add("dn_wire_traversals", tm * k + k * tn)
        # GB feeds the array edges once per tile
        self.gb.record_reads(tm * k + k * tn)
        self.gb.record_writes(tm * tn)

    def _charge_stalls(
        self, ledger: StallLedger, m: int, k: int, n: int, dram_stall: int
    ) -> None:
        """Attribute one GEMM's cycles to stall buckets.

        Shared by the tile-walking reference and the closed-form vector
        kernel: both charge from the same ``(shape, count)`` tile
        classes, so the engine modes produce byte-identical ledgers by
        construction. Per tile the wavefront formula of
        :meth:`tile_cycles` decomposes exactly — useful MAC waves,
        stationary preload (WS only), the ``+tn-2``-style skew where
        edge PEs idle while the diagonal passes, and the fixed
        fill/drain overhead — so the PE-array row conserves with zero
        idle.
        """
        from repro.engine.vector.systolic import tile_classes

        charge = ledger.charge
        for tm, tk, tn, count in tile_classes(self, m, k, n):
            if self.weight_stationary:
                charge("pe_array", "weight_fill", tk * count)
                charge("pe_array", "compute_busy", tm * count)
                charge(
                    "pe_array", "edge_underutilization", (tk + tn - 2) * count
                )
            else:
                charge("pe_array", "compute_busy", tk * count)
                charge(
                    "pe_array", "edge_underutilization", (tm + tn - 2) * count
                )
            charge("pe_array", "pipeline_drain", PIPE_OVERHEAD * count)
        charge("pe_array", "dram_stall", dram_stall)

    def _charge_fabric(self, fabric, m: int, k: int, n: int) -> None:
        """Decompose one GEMM's activity across the array's fabric tiers.

        Shared by the tile-walking reference and the closed-form vector
        kernel, fed the same ``(shape, count)`` tile classes, so the
        engine modes record byte-identical fabric ledgers. The systolic
        topology is flat: the DN is the 2 x ``dim`` edge-feed bus (west
        activations + north weights, anchored to ``dn_wire_traversals``),
        the MN is the ``dim x dim`` PE grid (``mn_multiplications``), and
        the RN is the in-place accumulator file of the same grid
        (``rn_accumulator_ops``) — one level each.
        """
        from repro.engine.vector.systolic import tile_classes

        edge_feeds = 0
        macs = 0
        for tm, tk, tn, count in tile_classes(self, m, k, n):
            edge_feeds += (tm * tk + tk * tn) * count
            macs += tm * tk * tn * count
        grid = self.dim * self.dim
        fabric.charge_levels(
            "dn", "dn_wire_traversals", [edge_feeds], [2 * self.dim]
        )
        fabric.charge_levels("mn", "mn_multiplications", [macs], [grid])
        fabric.charge_levels("rn", "rn_accumulator_ops", [macs], [grid])

    def _account_dram(self, m: int, k: int, n: int, compute_cycles: int) -> int:
        with component_scope("memory.dram"):
            bpe = self.config.dtype.bytes_per_element
            working_set = m * k + k * n + m * n
            reload_factor = 1
            if not self.gb.fits(working_set):
                reload_factor = math.ceil(
                    working_set / self.gb.half_capacity_elements
                )
            read_bytes = (m * k + k * n) * bpe * reload_factor
            write_bytes = m * n * bpe
            self.dram.record_read(read_bytes)
            self.dram.record_write(write_bytes)
            self.gb.record_fill(m * k + k * n)
            transfer = self.dram.transfer_cycles(read_bytes + write_bytes)
            return self.gb.dram_stall_cycles(transfer, compute_cycles)

    def cycle(self) -> None:
        self._current_cycle += 1
