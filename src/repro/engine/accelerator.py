"""The top-level ``Accelerator`` class (paper Fig. 4).

An ``Accelerator`` composes the building blocks a
:class:`~repro.config.HardwareConfig` selects — distribution / multiplier
/ reduction networks, Global Buffer, DRAM and a memory controller (or the
systolic engine for point-to-point configurations) — and exposes the
operations of the STONNE API: convolutions, GEMMs, sparse GEMMs and
pooling. Every operation is executed *functionally* (producing the real
output tensor, which is what enables full-model evaluation and
data-dependent optimizations) and *microarchitecturally* (producing the
cycle count and per-component activity recorded in the simulation
report).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.config.hardware import ControllerKind, HardwareConfig
from repro.config.layer import ConvLayerSpec, GemmSpec
from repro.config.tile import TileConfig
from repro.engine.mapper import Mapper
from repro.engine.stats import LayerReport, SimulationReport
from repro.engine.systolic import SystolicEngine
from repro.errors import ConfigurationError, MappingError
from repro.memory.dense_controller import DenseController
from repro.memory.dram import Dram
from repro.memory.global_buffer import GlobalBuffer
from repro.memory.sparse_controller import RoundBuilder, SparseController
from repro.noc.base import CounterSet
from repro.observability.context import TRACE_COUNTER_SERIES, Observability
from repro.noc.distribution import build_distribution_network
from repro.noc.multiplier import build_multiplier_network
from repro.noc.reduction import build_reduction_network
from repro.tensors.im2col import col2im_output, im2col
from repro.tensors.sparse import BitmapMatrix, CsrMatrix

# re-exported for convenience
__all__ = [
    "Accelerator",
    "LayerReport",
    "conv_layer_spec",
    "conv_functional",
    "gemm_functional",
    "maxpool_functional",
]


# ----------------------------------------------------------------------
# functional execution helpers
#
# The value-producing half of every operation lives in module-level
# functions so the parallel runner's recording pass (repro.parallel)
# computes bit-identical outputs through the *same* code the serial
# Accelerator uses — the invariant the differential test suite pins.
# ----------------------------------------------------------------------
def conv_layer_spec(
    weights: np.ndarray,
    activations: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
    name: str = "conv",
) -> ConvLayerSpec:
    """Validate conv operands and derive the layer descriptor."""
    if weights.ndim != 4 or activations.ndim != 4:
        raise ConfigurationError("conv expects 4-D weights and activations")
    k_total, c_g, r, s = weights.shape
    n, c_total, x, y = activations.shape
    if c_total != c_g * groups or k_total % groups:
        raise ConfigurationError(
            f"group mismatch: weights {weights.shape}, activations "
            f"{activations.shape}, groups {groups}"
        )
    return ConvLayerSpec(
        r=r, s=s, c=c_g, k=k_total // groups, g=groups, n=n,
        x=x + 2 * padding, y=y + 2 * padding, stride=stride, name=name,
    )


def conv_functional(
    weights: np.ndarray,
    activations: np.ndarray,
    stride: int,
    padding: int,
    groups: int,
    layer: ConvLayerSpec,
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Real-valued convolution via im2col; returns (output, group_cols)."""
    n = activations.shape[0]
    k = layer.k
    output = np.zeros(
        (n, k * groups, layer.x_out, layer.y_out), dtype=np.float32
    )
    group_cols: List[np.ndarray] = []
    c_g = layer.c
    for g in range(groups):
        act_g = activations[:, g * c_g : (g + 1) * c_g]
        cols = im2col(act_g, layer.r, layer.s, stride, padding)
        group_cols.append(cols)
        w2d = weights[g * k : (g + 1) * k].reshape(k, -1)
        out_g = w2d @ cols
        output[:, g * k : (g + 1) * k] = col2im_output(
            out_g, n, layer.x_out, layer.y_out
        )
    return output, group_cols


def gemm_functional(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Real-valued dense matrix multiplication."""
    return (a @ b).astype(np.float32)


def maxpool_functional(
    activations: np.ndarray, pool: int, stride: int
) -> Tuple[np.ndarray, int]:
    """Real-valued max pooling; returns (output, window comparisons)."""
    n, c, x, y = activations.shape
    xo = (x - pool) // stride + 1
    yo = (y - pool) // stride + 1
    cols = im2col(activations.reshape(n * c, 1, x, y), pool, pool, stride, 0)
    output = cols.max(axis=0).reshape(n * c, xo, yo).reshape(n, c, xo, yo)
    return output, int(cols.size)


class Accelerator:
    """One simulated accelerator instance."""

    def __init__(
        self,
        config: HardwareConfig,
        observability: Optional[Observability] = None,
    ) -> None:
        self.config = config
        self.obs = observability if observability is not None else Observability()
        self.obs.bind(self._snapshot)
        self.mapper = Mapper(config)
        self.gb = GlobalBuffer(
            size_kb=config.gb_size_kb,
            banks=config.gb_banks,
            read_bandwidth=config.dn_bandwidth,
            write_bandwidth=config.rn_bandwidth,
            dtype=config.dtype,
        )
        self.dram = Dram(config.dram, config.clock_ghz)
        self.report = SimulationReport(config)

        self.systolic: Optional[SystolicEngine] = None
        self.dense_controller: Optional[DenseController] = None
        self.sparse_controller: Optional[SparseController] = None

        if config.is_systolic:
            self.systolic = SystolicEngine(config, self.gb, self.dram)
            self._components = [self.gb, self.dram, self.systolic]
        else:
            self.dn = build_distribution_network(
                config.distribution, config.num_ms, config.dn_bandwidth
            )
            self.mn = build_multiplier_network(config.multiplier, config.num_ms)
            self.rn = build_reduction_network(
                config.reduction,
                config.num_ms,
                config.rn_bandwidth,
                config.accumulation_buffer,
            )
            if config.controller is ControllerKind.SPARSE:
                self.sparse_controller = SparseController(
                    config, self.dn, self.mn, self.rn, self.gb, self.dram
                )
                controller = self.sparse_controller
            else:
                # SNAPEA configurations use the dense controller as their
                # baseline; the early-termination variant lives in
                # repro.opts.snapea.
                self.dense_controller = DenseController(
                    config, self.dn, self.mn, self.rn, self.gb, self.dram
                )
                controller = self.dense_controller
            self._components = [self.gb, self.dram, self.dn, self.mn, self.rn, controller]
        for component in self._components:
            component.obs = self.obs

    # ------------------------------------------------------------------
    # component iteration (the Fig. 4 cycle loop)
    # ------------------------------------------------------------------
    @property
    def components(self) -> List:
        return list(self._components)

    def cycle(self) -> None:
        """Advance every configured component by one clock."""
        for component in self._components:
            component.cycle()

    def reset(self) -> None:
        for component in self._components:
            component.reset()
        self.report = SimulationReport(self.config)

    def _snapshot(self) -> CounterSet:
        merged = CounterSet()
        for component in self._components:
            merged.merge(component.counters)
        return merged

    def _start_layer(self, name: str, kind: str) -> None:
        """Open the layer's observability window on the cycle timeline."""
        # Per-layer results must not depend on execution order: the DRAM
        # row buffer is the only cross-layer state, so every layer starts
        # cold. This is what lets repro.parallel simulate layers out of
        # order (or replay them from cache) byte-identically.
        self.dram.new_layer()
        self.obs.start_layer(self.report.total_cycles)
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.begin(f"layer:{name}", "accelerator", self.obs.base, kind=kind)

    def _finish_layer(
        self,
        name: str,
        kind: str,
        before: CounterSet,
        cycles: int,
        macs: int,
        outputs: int,
        utilization: float,
        **extra,
    ) -> LayerReport:
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.end(
                self.obs.base + cycles,
                cycles=cycles, macs=macs,
                utilization=round(utilization, 6),
            )
        self.obs.end_layer(cycles)
        if self.obs.metrics is not None:
            extra["metrics"] = [
                {
                    "cycle": sample.cycle,
                    **{
                        key: sample.values[key]
                        for key in TRACE_COUNTER_SERIES if key in sample.values
                    },
                }
                for sample in self.obs.layer_samples()
            ]
        if self.obs.stalls is not None:
            # finalize checks conservation and fills the idle remainder;
            # the ledger rides in `extra` so counters stay byte-identical
            # with attribution off
            extra["stalls"] = self.obs.stalls.finalize(cycles)
        delta = self._snapshot().diff(before)
        if self.obs.fabric is not None:
            # the fabric ledger's consistency invariant needs the layer's
            # counter delta; like stalls, it rides only in `extra`
            extra["fabric"] = self.obs.fabric.finalize(delta.as_dict(), cycles)
        layer = LayerReport(
            name=name,
            kind=kind,
            cycles=cycles,
            macs=macs,
            outputs=outputs,
            multiplier_utilization=utilization,
            counters=delta,
            extra=dict(extra),
        )
        self.report.append(layer)
        return layer

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def run_conv(
        self,
        weights: np.ndarray,
        activations: np.ndarray,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        tile: Optional[TileConfig] = None,
        name: str = "conv",
        round_builder: Optional[RoundBuilder] = None,
    ) -> np.ndarray:
        """Simulate a 2-D convolution; returns the output tensor.

        ``weights``: (K_total, C/groups, R, S); ``activations``:
        (N, C_total, X, Y).
        """
        weights = np.asarray(weights, dtype=np.float32)
        activations = np.asarray(activations, dtype=np.float32)
        layer = conv_layer_spec(
            weights, activations, stride=stride, padding=padding,
            groups=groups, name=name,
        )
        self._start_layer(name, "conv")

        # ---- functional execution (real values) ----
        with self.obs.profiler.phase("functional"):
            output, group_cols = conv_functional(
                weights, activations, stride, padding, groups, layer
            )

        # ---- microarchitectural execution ----
        before = self._snapshot()
        if self.systolic is not None:
            cycles = 0
            macs = 0
            util_acc = 0.0
            for g, cols in enumerate(group_cols):
                w2d = weights[g * layer.k : (g + 1) * layer.k].reshape(layer.k, -1)
                _, result = self.systolic.run_gemm(w2d, cols)
                cycles += result.cycles
                macs += result.macs
                util_acc += result.multiplier_utilization * result.cycles
            utilization = util_acc / cycles if cycles else 0.0
        elif self.sparse_controller is not None:
            result = self._sparse_conv_timing(weights, group_cols, layer, round_builder)
            cycles, macs = result.cycles, result.effective_macs
            utilization = result.multiplier_utilization
        else:
            with self.obs.profiler.phase("map"):
                chosen = self.mapper.tile_for_conv(layer, tile)
            result = self.dense_controller.run_conv(layer, chosen)
            cycles, macs = result.cycles, result.macs
            utilization = result.multiplier_utilization

        self._finish_layer(
            name, "conv", before, cycles, macs, layer.num_outputs, utilization
        )
        return output

    def run_gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        tile: Optional[TileConfig] = None,
        name: str = "gemm",
    ) -> np.ndarray:
        """Simulate a dense matrix multiplication ``a @ b``."""
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ConfigurationError(f"incompatible GEMM operands {a.shape} @ {b.shape}")
        gemm = GemmSpec(m=a.shape[0], n=b.shape[1], k=a.shape[1], name=name)
        self._start_layer(name, "gemm")

        before = self._snapshot()
        if self.systolic is not None:
            # like the conv path: the returned output is always the
            # functional product, the engine contributes the timing —
            # keeps layer outputs identical across engines and paths
            with self.obs.profiler.phase("functional"):
                output = gemm_functional(a, b)
            _, result = self.systolic.run_gemm(a, b)
            cycles, macs = result.cycles, result.macs
            utilization = result.multiplier_utilization
        elif self.sparse_controller is not None:
            with self.obs.profiler.phase("functional"):
                output = gemm_functional(a, b)
            result = self.sparse_controller.run_spmm(a, gemm.n)
            cycles, macs = result.cycles, result.effective_macs
            utilization = result.multiplier_utilization
        else:
            with self.obs.profiler.phase("functional"):
                output = gemm_functional(a, b)
            with self.obs.profiler.phase("map"):
                chosen = self.mapper.tile_for_gemm(gemm, tile)
            result = self.dense_controller.run_gemm(gemm, chosen)
            cycles, macs = result.cycles, result.macs
            utilization = result.multiplier_utilization

        self._finish_layer(
            name, "gemm", before, cycles, macs, gemm.num_outputs, utilization
        )
        return output

    def run_spmm(
        self,
        a: Union[np.ndarray, BitmapMatrix, CsrMatrix],
        b: np.ndarray,
        round_builder: Optional[RoundBuilder] = None,
        name: str = "spmm",
        sparse_streaming: bool = False,
    ) -> np.ndarray:
        """Simulate a sparse-stationary matrix multiplication.

        ``sparse_streaming=True`` additionally exploits zeros in ``b``
        (SIGMA's dual-sided sparsity); the default matches the paper's
        weight-sparsity-only evaluation configuration.
        """
        if self.sparse_controller is None:
            raise MappingError(
                "this accelerator has no sparse controller; configure a "
                "SIGMA-like instance for SpMM"
            )
        b = np.asarray(b, dtype=np.float32)
        dense_a = (
            a.to_dense() if isinstance(a, (BitmapMatrix, CsrMatrix)) else
            np.asarray(a, dtype=np.float32)
        )
        if dense_a.ndim != 2 or b.ndim != 2 or dense_a.shape[1] != b.shape[0]:
            raise ConfigurationError(
                f"incompatible SpMM operands {dense_a.shape} @ {b.shape}"
            )
        self._start_layer(name, "spmm")
        with self.obs.profiler.phase("functional"):
            output = gemm_functional(dense_a.astype(np.float32), b)

        before = self._snapshot()
        result = self.sparse_controller.run_spmm(
            a, b.shape[1], round_builder,
            streaming=b if sparse_streaming else None,
        )
        self._finish_layer(
            name,
            "spmm",
            before,
            result.cycles,
            result.effective_macs,
            result.outputs,
            result.multiplier_utilization,
            rounds=result.rounds,
            mapping_utilization=result.mapping_utilization,
            dense_macs=result.dense_macs,
        )
        return output

    def run_maxpool(
        self, activations: np.ndarray, pool: int, stride: Optional[int] = None,
        name: str = "maxpool",
    ) -> np.ndarray:
        """Simulate a max-pooling layer.

        Pooling maps onto flexible fabrics without dedicated SIMD units
        (paper Section III): windows stream through the multipliers
        configured as comparators, one window element per MS per cycle.
        """
        stride = stride or pool
        activations = np.asarray(activations, dtype=np.float32)
        self._start_layer(name, "maxpool")
        with self.obs.profiler.phase("functional"):
            output, comparisons = maxpool_functional(activations, pool, stride)

        before = self._snapshot()
        cycles = 4 + int(np.ceil(comparisons / self.config.num_ms))
        self.gb.record_reads(comparisons)
        self.gb.record_writes(output.size)
        self.gb.counters.add("gb_pool_comparisons", comparisons)
        if self.obs.stalls is not None:
            # windows stream through the comparators after the fixed
            # configuration cycles
            self.obs.stalls.charge("controller", "weight_fill", 4)
            self.obs.stalls.charge("controller", "compute_busy", cycles - 4)
        self._finish_layer(name, "maxpool", before, cycles, 0, output.size, 0.0)
        return output

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _sparse_conv_timing(
        self, weights, group_cols, layer: ConvLayerSpec, round_builder=None
    ):
        """Time a convolution on the sparse fabric as one block-diagonal
        GEMM so filters from every group can pack into the same rounds."""
        groups = layer.g
        k = layer.k
        dot = layer.filter_size
        block = np.zeros((k * groups, dot * groups), dtype=np.float32)
        for g in range(groups):
            w2d = weights[g * k : (g + 1) * k].reshape(k, -1)
            block[g * k : (g + 1) * k, g * dot : (g + 1) * dot] = w2d
        n_cols = group_cols[0].shape[1]
        return self.sparse_controller.run_spmm(block, n_cols, round_builder)
