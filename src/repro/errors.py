"""Exception hierarchy for the STONNE reproduction.

All errors raised by the library derive from :class:`StonneError`, so
callers can catch a single base class. The subclasses mirror the major
subsystems: configuration, mapping, simulation and the API layer.
"""

from __future__ import annotations


class StonneError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(StonneError):
    """An invalid hardware or tile configuration was supplied.

    Raised when a configuration file cannot be parsed, when parameter
    values are out of range (e.g. a non-power-of-two multiplier count for
    a tree-based network), or when the selected building blocks are
    mutually incompatible (e.g. a sparse controller with a point-to-point
    distribution network).
    """


class MappingError(StonneError):
    """A layer cannot be mapped onto the configured accelerator.

    Raised by the Mapper / Configuration Unit when a tile does not fit the
    hardware (e.g. the tile requires more multipliers than the fabric
    provides) or when the tile shape is inconsistent with the layer shape.
    """


class SimulationError(StonneError):
    """The simulation engine reached an inconsistent state.

    This indicates a bug in a component model (e.g. a FIFO overflow in a
    component that claimed backpressure support) rather than a user error,
    and is raised so problems never pass silently.
    """


class ApiError(StonneError):
    """The STONNE API was driven in an invalid order.

    For example ``RunOperation`` before any ``Configure*`` instruction, or
    ``ConfigureData`` with tensors whose shapes disagree with the
    configured layer.
    """
