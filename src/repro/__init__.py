"""STONNE reproduction: cycle-level simulation of DNN inference accelerators.

A pure-Python reproduction of *STONNE: Enabling Cycle-Level
Microarchitectural Simulation for DNN Inference Accelerators* (IISWC
2021). The package provides:

- the simulation engine (:mod:`repro.engine`) built from the paper's
  configurable network fabrics (:mod:`repro.noc`) and memory hierarchy
  (:mod:`repro.memory`);
- hardware/tile configuration with the Table IV presets
  (:mod:`repro.config`);
- the STONNE API instruction set (:mod:`repro.api`);
- a mini DL framework front-end with simulated layers and the seven
  evaluation models (:mod:`repro.frontend`);
- the analytical models STONNE is compared against (:mod:`repro.analytical`);
- the data-dependent-optimization use cases (:mod:`repro.opts`);
- the experiment harnesses regenerating every figure/table
  (:mod:`repro.experiments`).

Quickstart::

    from repro import Accelerator, maeri_like
    import numpy as np

    acc = Accelerator(maeri_like(num_ms=64, bandwidth=16))
    rng = np.random.default_rng(42)
    out = acc.run_gemm(rng.random((8, 32)), rng.random((32, 8)))
    print(acc.report.total_cycles)
"""

from repro.api import CreateInstance, StonneInstance
from repro.config import (
    ConvLayerSpec,
    GemmSpec,
    HardwareConfig,
    TileConfig,
    load_config,
    maeri_like,
    save_config,
    sigma_like,
    snapea_like,
    tpu_like,
)
from repro.engine import Accelerator, SimulationReport, area_report, energy_report
from repro.errors import (
    ApiError,
    ConfigurationError,
    MappingError,
    SimulationError,
    StonneError,
)
from repro.observability import MetricsRecorder, Observability, Profiler, Tracer
from repro.version import __version__

__all__ = [
    "Accelerator",
    "ApiError",
    "ConfigurationError",
    "ConvLayerSpec",
    "CreateInstance",
    "GemmSpec",
    "HardwareConfig",
    "MappingError",
    "MetricsRecorder",
    "Observability",
    "Profiler",
    "SimulationError",
    "SimulationReport",
    "StonneError",
    "StonneInstance",
    "TileConfig",
    "Tracer",
    "__version__",
    "area_report",
    "energy_report",
    "load_config",
    "maeri_like",
    "save_config",
    "sigma_like",
    "snapea_like",
    "tpu_like",
]
