"""The STONNE API (paper Table III).

The coarse-grained instruction set through which an input module (a DL
framework front-end) drives the simulation platform:

=================  ======================================================
Instruction        Description
=================  ======================================================
CreateInstance     Creates an instance of STONNE.
ConfigureCONV      Configures the accelerator to run a convolution.
ConfigureLinear    Configures a fully-connected layer.
ConfigureDMM       Configures a dense matrix multiplication.
ConfigureSpMM      Configures a sparse matrix multiplication.
ConfigureMaxPool   Configures a max pooling layer.
ConfigureData      Binds weight/input tensors ("addresses") to the
                   accelerator memory.
RunOperation       Launches the simulation of the configured operation.
=================  ======================================================

The API is a state machine: configure an operation, configure its data,
run. Misordered calls raise :class:`~repro.errors.ApiError`. The module
keeps the instruction-style free functions (``CreateInstance(...)``)
alongside the object API (:class:`StonneInstance`) so front-end code reads
like the paper's walk-through example.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.config.hardware import HardwareConfig, load_config
from repro.config.tile import TileConfig
from repro.engine.accelerator import Accelerator
from repro.errors import ApiError
from repro.observability import Observability
from repro.observability.registry import RunRegistry, registry_enabled


@dataclass
class _PendingOperation:
    kind: str
    params: Dict[str, Any]


class StonneInstance:
    """One simulator instance driven through the Table III instructions."""

    def __init__(
        self,
        config: Union[HardwareConfig, str, Path],
        observability: Optional[Observability] = None,
        registry: Optional[Union[RunRegistry, str, Path]] = None,
    ) -> None:
        if not isinstance(config, HardwareConfig):
            config = load_config(config)
        self.accelerator = Accelerator(config, observability=observability)
        if registry is not None and not isinstance(registry, RunRegistry):
            registry = RunRegistry(registry)
        self.registry = registry
        self._operation: Optional[_PendingOperation] = None
        self._data: Dict[str, np.ndarray] = {}
        self._data_configured = False

    # ---- Configure* ------------------------------------------------------
    def configure_conv(
        self,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        tile: Optional[TileConfig] = None,
        name: str = "conv",
    ) -> None:
        self._operation = _PendingOperation(
            "conv",
            {"stride": stride, "padding": padding, "groups": groups,
             "tile": tile, "name": name},
        )

    def configure_linear(
        self, tile: Optional[TileConfig] = None, name: str = "linear"
    ) -> None:
        self._operation = _PendingOperation("linear", {"tile": tile, "name": name})

    def configure_dmm(
        self, tile: Optional[TileConfig] = None, name: str = "gemm"
    ) -> None:
        self._operation = _PendingOperation("dmm", {"tile": tile, "name": name})

    def configure_spmm(self, round_builder=None, name: str = "spmm") -> None:
        self._operation = _PendingOperation(
            "spmm", {"round_builder": round_builder, "name": name}
        )

    def configure_maxpool(
        self, pool: int, stride: Optional[int] = None, name: str = "maxpool"
    ) -> None:
        self._operation = _PendingOperation(
            "maxpool", {"pool": pool, "stride": stride, "name": name}
        )

    # ---- ConfigureData -----------------------------------------------------
    def configure_data(
        self,
        weights: Optional[np.ndarray] = None,
        inputs: Optional[np.ndarray] = None,
    ) -> None:
        if self._operation is None:
            raise ApiError("ConfigureData before any Configure* instruction")
        self._data = {}
        if weights is not None:
            self._data["weights"] = np.asarray(weights)
        if inputs is not None:
            self._data["inputs"] = np.asarray(inputs)
        self._data_configured = True

    # ---- RunOperation ---------------------------------------------------
    def run_operation(self) -> np.ndarray:
        if self._operation is None:
            raise ApiError("RunOperation before any Configure* instruction")
        if not self._data_configured:
            raise ApiError(
                "RunOperation before ConfigureData: bind the operand "
                "tensors with ConfigureData first"
            )
        op = self._operation
        inputs = self._data.get("inputs")
        weights = self._data.get("weights")
        if op.kind == "conv":
            self._require(weights is not None and inputs is not None,
                          "conv needs weights and inputs")
            result = self.accelerator.run_conv(
                weights, inputs, stride=op.params["stride"],
                padding=op.params["padding"], groups=op.params["groups"],
                tile=op.params["tile"], name=op.params["name"],
            )
        elif op.kind in ("linear", "dmm"):
            self._require(weights is not None and inputs is not None,
                          f"{op.kind} needs weights and inputs")
            result = self.accelerator.run_gemm(
                weights, inputs, tile=op.params["tile"], name=op.params["name"]
            )
        elif op.kind == "spmm":
            self._require(weights is not None and inputs is not None,
                          "spmm needs weights and inputs")
            result = self.accelerator.run_spmm(
                weights, inputs, round_builder=op.params["round_builder"],
                name=op.params["name"],
            )
        elif op.kind == "maxpool":
            self._require(inputs is not None, "maxpool needs inputs")
            result = self.accelerator.run_maxpool(
                inputs, pool=op.params["pool"], stride=op.params["stride"],
                name=op.params["name"],
            )
        else:  # pragma: no cover - state machine exhausts the kinds above
            raise ApiError(f"unknown operation kind {op.kind!r}")
        self._operation = None
        self._data = {}
        self._data_configured = False
        return result

    # ---- whole-model execution ------------------------------------------
    def run_model(
        self,
        model,
        inputs: np.ndarray,
        jobs: int = 1,
        cache=None,
        round_builder=None,
        tiles=None,
    ):
        """Simulate every offloaded layer of ``model`` on this instance.

        With ``jobs > 1`` the layers are timed across a process pool, and
        an optional :class:`~repro.parallel.SimCache` reuses previously
        simulated (layer, tile, hardware) results; either way the merged
        report is byte-identical to driving the layers one by one. Layer
        reports accumulate into :attr:`report` exactly as per-operation
        instructions do. Returns a
        :class:`~repro.parallel.runner.ModelRunResult`.
        """
        from repro.parallel import ParallelModelRunner

        runner = ParallelModelRunner(
            self.accelerator.config,
            jobs=jobs,
            cache=cache,
            observability=self.accelerator.obs,
            round_builder=round_builder,
            tiles=tiles,
        )
        result = runner.run_model(
            model, inputs, base_cycle=self.report.total_cycles
        )
        for layer in result.report.layers:
            self.report.append(layer)
        for key, value in result.report.metadata.items():
            if key.startswith("parallel_"):
                self.report.metadata[key] = value
        if self.registry is not None or registry_enabled(default=False):
            self.register_run(
                workload=f"model:{getattr(model, 'name', type(model).__name__)}",
                cached=bool(result.report.metadata.get("parallel_all_cached")),
            )
        return result

    # ---- run registry ---------------------------------------------------
    def register_run(
        self,
        workload: str,
        registry: Optional[Union[RunRegistry, str, Path]] = None,
        source: str = "api",
        wall_clock_s: Optional[float] = None,
        cached: bool = False,
    ) -> str:
        """Append the accumulated report to the run registry.

        Uses ``registry`` if given, else the instance's registry, else
        the default store (``~/.stonne_runs`` / ``$STONNE_RUNS_DIR``).
        Purely an observer of the finished report — never affects the
        simulation. Returns the new run id.
        """
        metrics = self.observability.metrics
        owned = None
        if registry is None:
            registry = self.registry
        if registry is None:
            registry = owned = RunRegistry()
        elif not isinstance(registry, RunRegistry):
            registry = owned = RunRegistry(registry)
        try:
            return registry.record_report(
                self.report,
                workload=workload,
                source=source,
                wall_clock_s=wall_clock_s,
                cached=cached,
                metrics=metrics.summary() if metrics is not None else None,
            )
        finally:
            if owned is not None:
                owned.close()

    @property
    def report(self):
        """The accumulated simulation report (Output Module)."""
        return self.accelerator.report

    @property
    def observability(self) -> Observability:
        """The instance's observability context (tracer/metrics/profiler)."""
        return self.accelerator.obs

    @staticmethod
    def _require(condition: bool, message: str) -> None:
        if not condition:
            raise ApiError(message)


# ---- instruction-style aliases (Table III spelling) -----------------------
def CreateInstance(
    config: Union[HardwareConfig, str, Path],
    observability: Optional[Observability] = None,
) -> StonneInstance:
    return StonneInstance(config, observability=observability)


def ConfigureCONV(instance: StonneInstance, **kwargs) -> None:
    instance.configure_conv(**kwargs)


def ConfigureLinear(instance: StonneInstance, **kwargs) -> None:
    instance.configure_linear(**kwargs)


def ConfigureDMM(instance: StonneInstance, **kwargs) -> None:
    instance.configure_dmm(**kwargs)


def ConfigureSpMM(instance: StonneInstance, **kwargs) -> None:
    instance.configure_spmm(**kwargs)


def ConfigureMaxPool(instance: StonneInstance, pool: int, **kwargs) -> None:
    instance.configure_maxpool(pool, **kwargs)


def ConfigureData(instance: StonneInstance, weights=None, inputs=None) -> None:
    instance.configure_data(weights=weights, inputs=inputs)


def RunOperation(instance: StonneInstance) -> np.ndarray:
    return instance.run_operation()
