"""The simulation-result cache.

Dense-path timing is *value-independent*: the cycles, activity counters
and utilization of a conv/GEMM/maxpool depend only on the layer geometry,
the tile mapping and the hardware configuration — never on what numbers
flow through the multipliers (pinned by the differential suite). So a
(layer descriptor, tile, hardware config) triple fully determines the
:class:`~repro.engine.stats.LayerReport`, and recomputing it for every
identically shaped layer — or every re-run of an experiment sweep — is
pure waste.

:class:`SimCache` memoizes those reports under a canonical SHA-256 key.
Data-dependent paths are **refused by construction**:

- SpMM / any sparse-controller timing (round packing reads the non-zero
  structure of the stationary operand);
- SNAPEA early termination (cut-offs read the running partial sums).

Entries persist to disk (optional) under
``<dir>/v<schema>/<config-hash>/<key>.json``; both the schema version and
the provenance config hash are part of the key *and* the path, so bumping
either invalidates without any deletion logic.

A disk cache can be bounded with ``max_bytes``: when a ``put`` pushes
the on-disk footprint over the limit, least-recently-used entries
(oldest mtime; ``get`` touches mtime) are deleted until it fits.
Eviction only ever drops the *disk* copy — an evicted key simply
misses and re-simulates, so correctness is untouched. Hits, misses,
evictions and bytes-on-disk are reported per config-hash shard through
:mod:`repro.observability.telemetry` when telemetry is enabled.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.config.hardware import HardwareConfig
from repro.observability.provenance import config_hash
from repro.observability.telemetry.facade import telemetry
from repro.parallel.workload import DATA_DEPENDENT_KINDS, LayerWorkload

#: bump when the key layout or the stored payload schema changes — old
#: on-disk entries become unreachable automatically (v2: HardwareConfig
#: grew ``engine_mode``, which flows into the config hash)
CACHE_SCHEMA_VERSION = 2

#: params that describe the *mapping*, per kind — anything else a
#: workload carries (round_builder objects, flags) is not part of the key
_KEY_PARAMS = {
    "conv": ("stride", "padding", "groups", "tile"),
    "gemm": ("tile",),
    "maxpool": ("pool", "stride"),
}

#: How every config-dataclass field reaches the canonical key. The
#: CACHE-KEY lint pass diffs these manifests against the *actual* fields
#: of the classes in ``repro.config``: adding a field without deciding
#: its cache-key fate here fails ``make lint`` instead of becoming a
#: stale-cache bug. When coverage genuinely changes, bump
#: ``CACHE_SCHEMA_VERSION`` in the same commit.
KEY_COVERED_FIELDS = {
    # config_hash() digests dataclasses.asdict(config), so every
    # HardwareConfig field — including the nested DramConfig — flows
    # into the key through the "config" entry of canonical_key_source.
    "HardwareConfig": {
        "num_ms": "via config_hash (asdict digests all fields)",
        "dn_bandwidth": "via config_hash",
        "rn_bandwidth": "via config_hash",
        "controller": "via config_hash",
        "distribution": "via config_hash",
        "multiplier": "via config_hash",
        "reduction": "via config_hash",
        "dataflow": "via config_hash",
        "sparse_format": "via config_hash",
        "dtype": "via config_hash",
        "gb_size_kb": "via config_hash",
        "gb_banks": "via config_hash",
        "ms_fifo_depth": "via config_hash",
        "dn_fifo_depth": "via config_hash",
        "rn_fifo_depth": "via config_hash",
        "accumulation_buffer": "via config_hash",
        "engine_mode": (
            "via config_hash (over-keys on purpose: modes are proven "
            "byte-identical, but a cached cycle-mode entry must never "
            "mask a vector-kernel regression)"
        ),
        "clock_ghz": "via config_hash",
        "technology_nm": "via config_hash",
        "dram": "via config_hash (asdict recurses into DramConfig)",
        "name": "via config_hash (over-keys: renaming re-simulates)",
    },
    "DramConfig": {
        "bandwidth_gbps": "via config_hash through HardwareConfig.dram",
        "size_mb": "via config_hash through HardwareConfig.dram",
        "access_latency_cycles": "via config_hash through HardwareConfig.dram",
        "row_buffer_bytes": "via config_hash through HardwareConfig.dram",
        "row_hit_latency_cycles": "via config_hash through HardwareConfig.dram",
    },
    # the tile travels in params["tile"]; _jsonable_param asdicts it, so
    # all eight dimensions land in the key
    "TileConfig": {
        "t_r": "via params tile asdict",
        "t_s": "via params tile asdict",
        "t_c": "via params tile asdict",
        "t_g": "via params tile asdict",
        "t_k": "via params tile asdict",
        "t_n": "via params tile asdict",
        "t_x": "via params tile asdict",
        "t_y": "via params tile asdict",
    },
    # layer geometry reaches the key through the operand *shapes* the
    # workload carries, and the mapping through _KEY_PARAMS
    "ConvLayerSpec": {
        "r": "weights operand shape (k*g, c, r, s)",
        "s": "weights operand shape",
        "c": "weights and input operand shapes",
        "k": "weights operand shape",
        "g": "params groups and weights shape",
        "n": "input operand shape (n, c*g, x, y)",
        "x": "input operand shape",
        "y": "input operand shape",
        "stride": "params stride",
    },
    "GemmSpec": {
        "m": "stationary operand shape (m, k)",
        "n": "streamed operand shape (k, n)",
        "k": "both operand shapes",
    },
}

KEY_EXEMPT_FIELDS = {
    "ConvLayerSpec": {
        "kind": (
            "descriptive tag only; timing is fully determined by the "
            "geometry and params already in the key"
        ),
        "name": (
            "the key is deliberately name-free so identically shaped "
            "layers share one entry (from_payload re-stamps the name)"
        ),
    },
    "GemmSpec": {
        "name": "deliberately name-free, as for ConvLayerSpec.name",
    },
}


def cacheable(workload: LayerWorkload, config: HardwareConfig) -> bool:
    """Whether this (workload, hardware) pair has value-independent timing."""
    if workload.data_dependent:
        return False
    if workload.kind in DATA_DEPENDENT_KINDS:
        return False
    if config.is_sparse:
        # conv/GEMM on a sparse fabric is timed by the sparse controller
        return False
    return workload.kind in _KEY_PARAMS


def _jsonable_param(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    raise TypeError(
        f"cache key parameter of type {type(value).__name__} is not canonical"
    )


def canonical_key_source(
    workload: LayerWorkload, config: HardwareConfig
) -> str:
    """The canonical JSON text a cache key digests.

    Everything that can change the timing result is in here — and nothing
    else: layer kind, operand shapes and dtypes, the mapping parameters
    for the kind, the cache schema version and the hardware config hash.
    Layer *names* and operand *values* are deliberately absent.
    """
    if not cacheable(workload, config):
        raise ValueError(
            f"workload {workload.name!r} ({workload.kind}) is data-dependent "
            "and has no cache key"
        )
    operands = {}
    for key in sorted(workload.operands):
        array = np.asarray(workload.operands[key])
        operands[key] = {"shape": list(array.shape), "dtype": str(array.dtype)}
    record = {
        "schema": CACHE_SCHEMA_VERSION,
        "config": config_hash(config),
        "kind": workload.kind,
        "operands": operands,
        "params": {
            name: _jsonable_param(workload.params.get(name))
            for name in _KEY_PARAMS[workload.kind]
        },
    }
    return json.dumps(record, sort_keys=True)


def canonical_key(workload: LayerWorkload, config: HardwareConfig) -> str:
    """SHA-256 digest of :func:`canonical_key_source`."""
    return hashlib.sha256(
        canonical_key_source(workload, config).encode("utf-8")
    ).hexdigest()


class SimCache:
    """Memoizes per-layer simulation payloads, optionally on disk."""

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive when set")
        self.directory = Path(directory) if directory is not None else None
        self.max_bytes = max_bytes
        self._memory: Dict[str, Dict] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._disk_scanned = False
        self._disk_bytes = 0
        self._shard_bytes: Dict[str, int] = {}

    # ---- telemetry ----------------------------------------------------
    @staticmethod
    def _shard(config: HardwareConfig) -> str:
        return config_hash(config)[:12]

    def _publish_shard_bytes(self) -> None:
        gauge = telemetry().gauge(
            "stonne_simcache_bytes", "Bytes on disk per cache shard"
        )
        if not gauge.enabled:
            return
        for shard, size in sorted(self._shard_bytes.items()):
            gauge.set(float(size), shard=shard)
        gauge.set(float(self._disk_bytes), shard="all")

    # ---- disk accounting ----------------------------------------------
    def _entry_files(self) -> List[Tuple[float, int, Path]]:
        """(mtime, size, path) for every on-disk entry, oldest first."""
        assert self.directory is not None
        files: List[Tuple[float, int, Path]] = []
        root = self.directory / f"v{CACHE_SCHEMA_VERSION}"
        for path in sorted(root.glob("*/*.json")):
            try:
                stat = path.stat()
            except OSError:
                continue
            files.append((stat.st_mtime, stat.st_size, path))
        files.sort(key=lambda item: (item[0], str(item[2])))
        return files

    def _ensure_disk_scan(self) -> None:
        """Account entries that predate this process (lazy, once)."""
        if self._disk_scanned or self.directory is None:
            self._disk_scanned = True
            return
        self._disk_scanned = True
        self._disk_bytes = 0
        self._shard_bytes = {}
        for _, size, path in self._entry_files():
            shard = path.parent.name[:12]
            self._disk_bytes += size
            self._shard_bytes[shard] = self._shard_bytes.get(shard, 0) + size

    def _evict_to_fit(self) -> None:
        """Delete LRU entries (oldest mtime) until the cap is honored."""
        assert self.directory is not None and self.max_bytes is not None
        if self._disk_bytes <= self.max_bytes:
            return
        counter = telemetry().counter(
            "stonne_simcache_evictions_total",
            "Disk cache entries evicted by the max_bytes LRU policy",
        )
        files = self._entry_files()
        for _, size, path in files[:-1]:  # never evict the newest entry
            if self._disk_bytes <= self.max_bytes:
                break
            shard = path.parent.name[:12]
            try:
                path.unlink()
            except OSError:
                continue
            self.evictions += 1
            self._disk_bytes -= size
            self._shard_bytes[shard] = max(
                self._shard_bytes.get(shard, 0) - size, 0
            )
            counter.inc(shard=shard)

    # ---- keying -------------------------------------------------------
    @staticmethod
    def cacheable(workload: LayerWorkload, config: HardwareConfig) -> bool:
        return cacheable(workload, config)

    @staticmethod
    def key(
        workload: LayerWorkload, config: HardwareConfig
    ) -> Optional[str]:
        """The workload's cache key, or ``None`` when uncacheable."""
        if not cacheable(workload, config):
            return None
        return canonical_key(workload, config)

    # ---- storage ------------------------------------------------------
    def _path(self, key: str, config: HardwareConfig) -> Path:
        assert self.directory is not None
        return (
            self.directory / f"v{CACHE_SCHEMA_VERSION}"
            / config_hash(config) / f"{key}.json"
        )

    def get(self, key: str, config: HardwareConfig) -> Optional[Dict]:
        """Look up a payload; counts a hit or a miss."""
        entry = self._memory.get(key)
        if entry is None and self.directory is not None:
            path = self._path(key, config)
            try:
                stored = json.loads(path.read_text(encoding="utf-8"))
                if (
                    stored.get("schema") == CACHE_SCHEMA_VERSION
                    and stored.get("config_hash") == config_hash(config)
                ):
                    entry = stored["payload"]
                    self._memory[key] = entry
                    os.utime(path)  # LRU touch: disk hits refresh recency
            except (OSError, ValueError, KeyError):
                entry = None  # absent or corrupt: treat as a miss
        registry = telemetry()
        if entry is None:
            self.misses += 1
            registry.counter(
                "stonne_simcache_misses_total",
                "Simulation cache misses per config-hash shard",
            ).inc(shard=self._shard(config))
            return None
        self.hits += 1
        registry.counter(
            "stonne_simcache_hits_total",
            "Simulation cache hits per config-hash shard",
        ).inc(shard=self._shard(config))
        return entry

    def put(self, key: str, payload: Dict, config: HardwareConfig) -> None:
        self._memory[key] = payload
        if self.directory is None:
            return
        self._ensure_disk_scan()
        path = self._path(key, config)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "schema": CACHE_SCHEMA_VERSION,
            "config_hash": config_hash(config),
            "key": key,
            "payload": payload,
        }
        tmp = path.with_suffix(".json.tmp")
        try:
            previous = path.stat().st_size
        except OSError:
            previous = 0
        tmp.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")
        tmp.replace(path)
        shard = self._shard(config)
        size = path.stat().st_size
        self._disk_bytes += size - previous
        self._shard_bytes[shard] = (
            self._shard_bytes.get(shard, 0) + size - previous
        )
        if self.max_bytes is not None:
            self._evict_to_fit()
        self._publish_shard_bytes()

    def __len__(self) -> int:
        return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk entries survive)."""
        self._memory.clear()

    def disk_bytes(self) -> int:
        """Bytes currently on disk (0 for a memory-only cache)."""
        self._ensure_disk_scan()
        return self._disk_bytes

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._memory),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_bytes": self.disk_bytes(),
        }
