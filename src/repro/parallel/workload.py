"""Layer workloads and the recording pass.

Whole-model simulation splits into two halves with very different
dependence structures:

- the **functional** half (real tensor values) is inherently serial —
  each layer consumes its predecessor's output;
- the **microarchitectural** half (cycles, counters) of each layer is
  independent of every other layer (paper Fig. 2d: the framework drives
  the accelerator layer by layer, and per-layer results are
  execution-order independent).

:class:`RecordingAccelerator` exploits this: it duck-types the
:class:`~repro.engine.accelerator.Accelerator` operations an attached
:class:`~repro.frontend.simulated.SimulationContext` calls, computes the
functional outputs through the *same* module-level helpers the real
engine uses (so outputs stay bit-identical), and records one
:class:`LayerWorkload` per offloaded operation. The runner then times the
recorded workloads out of order — across worker processes or from the
simulation cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.config.hardware import HardwareConfig
from repro.engine.accelerator import (
    conv_functional,
    conv_layer_spec,
    gemm_functional,
    maxpool_functional,
)
from repro.errors import ConfigurationError, MappingError
from repro.tensors.sparse import BitmapMatrix, CsrMatrix

#: operation kinds whose timing depends on operand *values*, not just
#: shapes: sparse scheduling packs rounds from the non-zero structure and
#: SNAPEA terminates dot products from the running partial sums
DATA_DEPENDENT_KINDS = frozenset({"spmm", "snapea"})


@dataclass(frozen=True)
class LayerWorkload:
    """One offloaded operation, detached from model execution order."""

    index: int
    kind: str  # conv | gemm | spmm | maxpool | snapea
    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    operands: Dict[str, Any] = field(default_factory=dict)
    #: True when the timing model reads operand values (sparse rounds,
    #: SNAPEA early termination) — such results must never be cached
    data_dependent: bool = False

    def shapes(self) -> Dict[str, Tuple[int, ...]]:
        """Operand name → shape (the value-independent view)."""
        result = {}
        for key, value in self.operands.items():
            if isinstance(value, (BitmapMatrix, CsrMatrix)):
                result[key] = tuple(value.to_dense().shape)
            else:
                result[key] = tuple(np.asarray(value).shape)
        return result


class RecordingAccelerator:
    """Functional-only stand-in for :class:`Accelerator`.

    Runs every operation for real values (bit-identical to the engine's
    functional path) while recording the workload instead of simulating
    its timing. Exposes exactly the surface a
    :class:`~repro.frontend.simulated.SimulationContext` touches.
    """

    def __init__(self, config: HardwareConfig) -> None:
        self.config = config
        #: truthy marker so ``SimulationContext.is_sparse`` dispatches the
        #: way it would on a real sparse accelerator
        self.sparse_controller = object() if config.is_sparse else None
        self.workloads: List[LayerWorkload] = []

    def _record(
        self,
        kind: str,
        name: str,
        params: Dict[str, Any],
        operands: Dict[str, Any],
    ) -> None:
        self.workloads.append(LayerWorkload(
            index=len(self.workloads),
            kind=kind,
            name=name,
            params=params,
            operands=operands,
            data_dependent=(
                kind in DATA_DEPENDENT_KINDS or self.config.is_sparse
            ),
        ))

    # ---- the Accelerator operation surface ---------------------------
    def run_conv(
        self,
        weights: np.ndarray,
        activations: np.ndarray,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        tile=None,
        name: str = "conv",
        round_builder=None,
    ) -> np.ndarray:
        weights = np.asarray(weights, dtype=np.float32)
        activations = np.asarray(activations, dtype=np.float32)
        layer = conv_layer_spec(
            weights, activations, stride=stride, padding=padding,
            groups=groups, name=name,
        )
        output, _ = conv_functional(
            weights, activations, stride, padding, groups, layer
        )
        self._record(
            "conv", name,
            {"stride": stride, "padding": padding, "groups": groups,
             "tile": tile, "round_builder": round_builder},
            {"weights": weights, "inputs": activations},
        )
        return output

    def run_gemm(
        self, a: np.ndarray, b: np.ndarray, tile=None, name: str = "gemm"
    ) -> np.ndarray:
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ConfigurationError(
                f"incompatible GEMM operands {a.shape} @ {b.shape}"
            )
        output = gemm_functional(a, b)
        self._record("gemm", name, {"tile": tile}, {"weights": a, "inputs": b})
        return output

    def run_spmm(
        self, a, b: np.ndarray, round_builder=None, name: str = "spmm",
        sparse_streaming: bool = False,
    ) -> np.ndarray:
        if self.sparse_controller is None:
            raise MappingError(
                "this accelerator has no sparse controller; configure a "
                "SIGMA-like instance for SpMM"
            )
        b = np.asarray(b, dtype=np.float32)
        dense_a = (
            a.to_dense() if isinstance(a, (BitmapMatrix, CsrMatrix)) else
            np.asarray(a, dtype=np.float32)
        )
        if dense_a.ndim != 2 or b.ndim != 2 or dense_a.shape[1] != b.shape[0]:
            raise ConfigurationError(
                f"incompatible SpMM operands {dense_a.shape} @ {b.shape}"
            )
        output = gemm_functional(dense_a.astype(np.float32), b)
        self._record(
            "spmm", name,
            {"round_builder": round_builder,
             "sparse_streaming": sparse_streaming},
            {"weights": a, "inputs": b},
        )
        return output

    def run_maxpool(
        self, activations: np.ndarray, pool: int,
        stride: Optional[int] = None, name: str = "maxpool",
    ) -> np.ndarray:
        stride = stride or pool
        activations = np.asarray(activations, dtype=np.float32)
        output, _ = maxpool_functional(activations, pool, stride)
        self._record(
            "maxpool", name, {"pool": pool, "stride": stride},
            {"inputs": activations},
        )
        return output


def record_model(
    model, x: np.ndarray, config: HardwareConfig,
    round_builder=None, tiles=None,
) -> Tuple[np.ndarray, List[LayerWorkload]]:
    """Run ``model(x)`` functionally, capturing its offloaded layers.

    Returns the (bit-identical) model output and the recorded workloads
    in framework execution order.
    """
    from repro.frontend.simulated import (
        SimulationContext, attach_context, detach_context,
    )

    recorder = RecordingAccelerator(config)
    context = SimulationContext(
        recorder, round_builder=round_builder, tiles=tiles
    )
    attach_context(model, context)
    try:
        output = model(x)
    finally:
        detach_context(model)
    return output, recorder.workloads
