"""Parallel model simulation and the simulation-result cache.

Layer-by-layer execution (paper Fig. 2d) makes whole-model simulation
embarrassingly parallel across layers once the functional pass has
recorded each layer's operands: per-layer timing is independent of
execution order, and for dense paths it is independent of operand values
too. This package exploits both facts:

- :class:`ParallelModelRunner` — records a model's offloaded layers in
  one functional pass, then times them across a process pool with
  deterministic result ordering and per-layer serial fallback;
- :class:`SimCache` — memoizes per-layer timing results under a
  canonical (layer, tile, hardware) key, persisted to disk with
  versioned invalidation; data-dependent paths (SpMM round packing,
  SNAPEA early termination) are refused by construction.

See ``docs/PARALLEL.md`` for the worker model and cache-key semantics.
"""

from repro.parallel.cache import (
    CACHE_SCHEMA_VERSION,
    SimCache,
    cacheable,
    canonical_key,
    canonical_key_source,
)
from repro.parallel.runner import (
    ModelRunResult,
    ParallelModelRunner,
    shutdown_pools,
)
from repro.parallel.workload import (
    DATA_DEPENDENT_KINDS,
    LayerWorkload,
    RecordingAccelerator,
    record_model,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DATA_DEPENDENT_KINDS",
    "LayerWorkload",
    "ModelRunResult",
    "ParallelModelRunner",
    "RecordingAccelerator",
    "SimCache",
    "cacheable",
    "canonical_key",
    "canonical_key_source",
    "record_model",
    "shutdown_pools",
]
