"""Parallel whole-model simulation.

:class:`ParallelModelRunner` drives a model through three phases:

1. **Record** — one serial functional pass through the framework
   (:func:`~repro.parallel.workload.record_model`): real layer outputs,
   plus one :class:`~repro.parallel.workload.LayerWorkload` per offloaded
   operation.
2. **Simulate** — each distinct workload is timed exactly once:
   cache-hit results are reused, duplicate shapes are deduplicated, and
   the remaining misses run on a ``concurrent.futures`` process pool
   (``jobs`` workers, one fresh accelerator per layer). Any failure to
   simulate a layer remotely falls back to in-process serial simulation
   of that layer, so a broken pool degrades to the classic path instead
   of failing the run.
3. **Merge** — per-layer reports are assembled in framework execution
   order into one :class:`~repro.engine.stats.SimulationReport` that is
   byte-identical (cycles, counters, outputs) to a serial run; worker
   trace events and metrics samples are rebased onto the model timeline
   and merged into the parent observability context.

Determinism: results are keyed by workload index, so the report never
depends on worker scheduling.
"""

from __future__ import annotations

import atexit
import dataclasses
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.config.hardware import HardwareConfig, load_config
from repro.engine.accelerator import Accelerator
from repro.engine.stats import LayerReport, SimulationReport
from repro.errors import SimulationError
from repro.observability import Observability
from repro.observability.context import TRACE_COUNTER_SERIES
from repro.observability.metrics import MetricsSample
from repro.observability.telemetry.facade import telemetry
from repro.observability.telemetry.progress import ProgressEmitter
from repro.parallel.cache import SimCache
from repro.parallel.workload import LayerWorkload, record_model


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _simulate_workload(
    config: HardwareConfig,
    workload: LayerWorkload,
    trace: bool = False,
    metrics_every: int = 0,
    stalls: bool = False,
    fabric: bool = False,
) -> Dict:
    """Time one workload on a fresh accelerator; plain-data result.

    Runs in worker processes (everything crossing the boundary is
    picklable) and in the parent for the serial path and fallbacks, so
    every execution mode shares one code path. Workers never open a run
    registry: per-layer fragments are not runs — only the parent's
    merged report is registered, once, by whoever drove the model.
    """
    started = time.perf_counter()
    obs = Observability.create(
        trace=trace, metrics_every=metrics_every, stalls=stalls,
        fabric=fabric,
    )
    acc = Accelerator(config, observability=obs)
    params = workload.params
    if workload.kind == "conv":
        acc.run_conv(
            workload.operands["weights"], workload.operands["inputs"],
            stride=params["stride"], padding=params["padding"],
            groups=params["groups"], tile=params["tile"],
            name=workload.name, round_builder=params.get("round_builder"),
        )
    elif workload.kind == "gemm":
        acc.run_gemm(
            workload.operands["weights"], workload.operands["inputs"],
            tile=params["tile"], name=workload.name,
        )
    elif workload.kind == "spmm":
        acc.run_spmm(
            workload.operands["weights"], workload.operands["inputs"],
            round_builder=params.get("round_builder"), name=workload.name,
            sparse_streaming=bool(params.get("sparse_streaming")),
        )
    elif workload.kind == "maxpool":
        acc.run_maxpool(
            workload.operands["inputs"], pool=params["pool"],
            stride=params["stride"], name=workload.name,
        )
    else:
        raise SimulationError(f"unknown workload kind {workload.kind!r}")
    layer = acc.report.layers[0]
    payload = layer.to_payload()
    # the metrics series is timeline-dependent; the parent rebuilds it
    # from the raw samples below, and the cache must never store it
    payload["extra"].pop("metrics", None)
    return {
        "layer": payload,
        "trace": [dataclasses.asdict(e) for e in obs.tracer.events],
        "metrics_samples": [
            {"cycle": s.cycle, "values": dict(s.values)}
            for s in (obs.metrics.samples if obs.metrics is not None else [])
        ],
        # host wall seconds of this one simulation; the parent feeds it
        # to telemetry (never the cache — only "layer" is ever stored)
        "host_seconds": time.perf_counter() - started,
    }


def _simulate_workload_in_worker(
    config: HardwareConfig,
    workload: LayerWorkload,
    trace: bool,
    metrics_every: int,
    stalls: bool = False,
    fabric: bool = False,
) -> Dict:
    """The function submitted to the pool (separate name so tests can
    fault-inject the remote path without touching the serial fallback)."""
    return _simulate_workload(
        config, workload, trace, metrics_every, stalls, fabric
    )


# ----------------------------------------------------------------------
# shared worker pools
# ----------------------------------------------------------------------
_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _get_pool(jobs: int) -> ProcessPoolExecutor:
    """A process pool with ``jobs`` workers, shared across runners.

    Pool startup dominates small runs, so pools are kept alive for the
    process lifetime (shut down at interpreter exit)."""
    pool = _POOLS.get(jobs)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=jobs)
        _POOLS[jobs] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every shared worker pool (also runs atexit)."""
    for pool in _POOLS.values():
        pool.shutdown(wait=True, cancel_futures=True)
    _POOLS.clear()


atexit.register(shutdown_pools)


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
@dataclass
class ModelRunResult:
    """Output tensor + report + execution accounting of one model run."""

    output: np.ndarray
    report: SimulationReport
    layers: int
    simulated: int        # workloads actually timed (here or in workers)
    cache_hits: int
    deduplicated: int     # repeated shapes folded onto one simulation
    fallbacks: int        # workloads that fell back to serial in-process


class ParallelModelRunner:
    """Simulates a model's offloaded layers across a process pool."""

    def __init__(
        self,
        config: Union[HardwareConfig, str, Path],
        jobs: Optional[int] = 1,
        cache: Optional[SimCache] = None,
        observability: Optional[Observability] = None,
        round_builder=None,
        tiles=None,
        executor=None,
        progress: Optional[ProgressEmitter] = None,
    ) -> None:
        if not isinstance(config, HardwareConfig):
            config = load_config(config)
        self.config = config
        import os

        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.cache = cache
        self.obs = observability if observability is not None else Observability()
        self.round_builder = round_builder
        self.tiles = tiles
        self.progress = progress
        #: injection point for tests; ``None`` uses the shared pool
        self._executor = executor

    # ---- simulation of the distinct workloads -------------------------
    def _worker_flags(self) -> Tuple[bool, int, bool, bool]:
        trace = self.obs.tracer.enabled
        every = self.obs.metrics.every if self.obs.metrics is not None else 0
        stalls = self.obs.stalls is not None
        fabric = self.obs.fabric is not None
        return trace, every, stalls, fabric

    def _emit_progress(self, workload: LayerWorkload, mode: str) -> None:
        if self.progress is not None:
            self.progress.layer_done(
                workload.index, workload.name, workload.kind, mode
            )

    def _note_task(self, bundle: Dict, mode: str) -> None:
        """Feed one finished simulation task into the telemetry facade."""
        registry = telemetry()
        registry.counter(
            "stonne_pool_tasks_total",
            "Simulation tasks by execution mode",
        ).inc(mode=mode)
        seconds = bundle.get("host_seconds")
        if isinstance(seconds, (int, float)):
            registry.histogram(
                "stonne_pool_task_seconds",
                "Host wall seconds per simulated layer task",
            ).observe(float(seconds), mode=mode)

    def _simulate_misses(
        self, misses: List[LayerWorkload]
    ) -> Tuple[Dict[int, Dict], int]:
        """Time the given workloads; returns index→bundle and the number
        that fell back to serial execution."""
        trace, every, stalls, fabric = self._worker_flags()
        results: Dict[int, Dict] = {}
        fallbacks = 0
        if self.jobs == 1 or len(misses) <= 1:
            for workload in misses:
                results[workload.index] = _simulate_workload(
                    self.config, workload, trace, every, stalls, fabric
                )
                self._note_task(results[workload.index], "simulated")
                self._emit_progress(workload, "simulated")
            return results, fallbacks

        executor = self._executor
        if executor is None:
            executor = _get_pool(self.jobs)
        registry = telemetry()
        queue_gauge = registry.gauge(
            "stonne_pool_queue_depth",
            "Simulation tasks submitted and not yet collected",
        )
        futures: Dict[int, Optional[Future]] = {}
        for workload in misses:
            try:
                futures[workload.index] = executor.submit(
                    _simulate_workload_in_worker,
                    self.config, workload, trace, every, stalls, fabric,
                )
            # stonne: lint-ok[EXC-BROAD] submit fails with arbitrary types (pickling, pool state); the serial fallback below retypes real errors
            except Exception:
                futures[workload.index] = None  # unpicklable / broken pool
        pending = len(misses)
        queue_gauge.set(float(pending))
        batch_started = time.perf_counter()
        task_seconds: List[float] = []
        for workload in misses:
            future = futures[workload.index]
            bundle: Optional[Dict] = None
            if future is not None:
                try:
                    bundle = future.result()
                # stonne: lint-ok[EXC-BROAD] a dead pool raises arbitrary types; the serial fallback below reproduces genuine simulation errors typed
                except Exception:
                    bundle = None
            mode = "simulated"
            if bundle is None:
                # per-layer isolation: whatever went wrong out-of-process
                # (pool death, pickling, a worker bug), the layer still
                # simulates — serially, in-process. A genuine simulation
                # error reproduces here and propagates with its real type.
                fallbacks += 1
                mode = "fallback"
                bundle = _simulate_workload(
                    self.config, workload, trace, every, stalls, fabric
                )
            results[workload.index] = bundle
            pending -= 1
            queue_gauge.set(float(pending))
            self._note_task(bundle, mode)
            seconds = bundle.get("host_seconds")
            if isinstance(seconds, (int, float)):
                task_seconds.append(float(seconds))
            self._emit_progress(workload, mode)
        self._note_batch(task_seconds, time.perf_counter() - batch_started)
        return results, fallbacks

    def _note_batch(self, task_seconds: List[float], wall_s: float) -> None:
        """Pool-health gauges for one parallel batch: how well the pool
        was saturated and how unequal the per-task costs were."""
        registry = telemetry()
        if not registry.enabled or not task_seconds:
            return
        registry.gauge(
            "stonne_pool_straggler_spread_s",
            "Slowest minus fastest task seconds in the last batch",
        ).set(max(task_seconds) - min(task_seconds))
        capacity = wall_s * self.jobs
        busy = min(sum(task_seconds) / capacity, 1.0) if capacity > 0 else 0.0
        registry.gauge(
            "stonne_pool_busy_fraction",
            "Aggregate worker busy time over pool capacity, last batch",
        ).set(busy)

    # ---- the whole-model run ------------------------------------------
    def _stage_seconds(self, stage: str, started: float) -> None:
        telemetry().histogram(
            "stonne_stage_seconds",
            "Host wall seconds per model-run stage",
        ).observe(time.perf_counter() - started, stage=stage)

    def run_model(self, model, x: np.ndarray, base_cycle: int = 0) -> ModelRunResult:
        """Simulate ``model(x)``; returns output + merged report."""
        profiler = self.obs.profiler
        stage_started = time.perf_counter()
        with profiler.phase("record"):
            output, workloads = record_model(
                model, x, self.config,
                round_builder=self.round_builder, tiles=self.tiles,
            )
        self._stage_seconds("record", stage_started)

        if self.progress is not None:
            self.progress.total = len(workloads)
            self.progress.model_start()

        stage_started = time.perf_counter()
        with profiler.phase("simulate"):
            # Stall and fabric attribution run uncached: ledgers ride in
            # the layer extras the cache stores verbatim, and replaying
            # ledger-free payloads into an attributed run (or vice versa)
            # would mix the two populations. Cycles/counters are
            # unaffected — only the warm-cache speedup is given up while
            # attributing.
            cache = (
                self.cache
                if self.obs.stalls is None and self.obs.fabric is None
                else None
            )
            keys: Dict[int, Optional[str]] = {
                w.index: (
                    cache.key(w, self.config)
                    if cache is not None else None
                )
                for w in workloads
            }
            bundles: Dict[int, Dict] = {}
            cache_hits = 0
            for workload in workloads:
                key = keys[workload.index]
                if key is None:
                    continue
                payload = cache.get(key, self.config)
                if payload is not None:
                    bundles[workload.index] = {"layer": payload, "cached": True}
                    cache_hits += 1
                    self._note_task(bundles[workload.index], "cached")
                    self._emit_progress(workload, "cached")

            # fold repeated shapes onto one simulation each
            first_for_key: Dict[str, int] = {}
            shared_from: Dict[int, int] = {}
            misses: List[LayerWorkload] = []
            for workload in workloads:
                if workload.index in bundles:
                    continue
                key = keys[workload.index]
                if key is not None and key in first_for_key:
                    shared_from[workload.index] = first_for_key[key]
                    continue
                if key is not None:
                    first_for_key[key] = workload.index
                misses.append(workload)

            simulated, fallbacks = self._simulate_misses(misses)
            bundles.update(simulated)
            by_index = {w.index: w for w in workloads}
            for index, source in shared_from.items():
                bundles[index] = {
                    "layer": simulated[source]["layer"], "cached": True,
                }
                self._note_task(bundles[index], "deduplicated")
                self._emit_progress(by_index[index], "deduplicated")

            if cache is not None:
                for workload in misses:
                    key = keys[workload.index]
                    if key is not None:
                        cache.put(
                            key, simulated[workload.index]["layer"], self.config
                        )
        self._stage_seconds("simulate", stage_started)

        stage_started = time.perf_counter()
        with profiler.phase("merge"):
            report = self._merge(workloads, bundles, base_cycle)
            report.metadata.update({
                "parallel_jobs": self.jobs,
                "parallel_layers": len(workloads),
                "parallel_simulated": len(misses),
                "parallel_cache_hits": cache_hits,
                "parallel_deduplicated": len(shared_from),
                "parallel_fallbacks": fallbacks,
                # run-registry consumers mark fully cache-served runs as
                # cached; carried in metadata (never in layer payloads,
                # which must stay byte-identical to a serial run)
                "parallel_all_cached": bool(workloads) and not misses,
            })
        self._stage_seconds("merge", stage_started)
        if self.progress is not None:
            self.progress.model_end()
        return ModelRunResult(
            output=output,
            report=report,
            layers=len(workloads),
            simulated=len(misses),
            cache_hits=cache_hits,
            deduplicated=len(shared_from),
            fallbacks=fallbacks,
        )

    def _merge(
        self,
        workloads: List[LayerWorkload],
        bundles: Dict[int, Dict],
        base_cycle: int,
    ) -> SimulationReport:
        """Assemble per-layer results, in order, onto one timeline."""
        report = SimulationReport(self.config)
        tracer = self.obs.tracer
        metrics = self.obs.metrics
        base = base_cycle
        running_totals: Dict[str, float] = {}
        for workload in workloads:
            bundle = bundles[workload.index]
            payload = dict(bundle["layer"])
            payload["extra"] = dict(payload.get("extra", {}))
            samples = [
                MetricsSample(cycle=s["cycle"], values=s["values"])
                for s in bundle.get("metrics_samples", [])
            ]
            if metrics is not None and samples:
                metrics.ingest(
                    samples, cycle_offset=base, value_offsets=running_totals
                )
                payload["extra"]["metrics"] = [
                    {
                        "cycle": s.cycle + base,
                        **{k: running_totals.get(k, 0.0) + s.values[k]
                           for k in TRACE_COUNTER_SERIES if k in s.values},
                    }
                    for s in samples
                ]
            layer = LayerReport.from_payload(payload, name=workload.name)
            if tracer.enabled:
                events = bundle.get("trace")
                if events:
                    tracer.extend(events, offset=base)
                else:
                    # cached / deduplicated layers were not re-simulated;
                    # they still get their window on the timeline
                    tracer.span(
                        f"layer:{workload.name}", "accelerator",
                        base, base + layer.cycles,
                        kind=layer.kind, cycles=layer.cycles,
                        cached=bool(bundle.get("cached")),
                    )
            for name, value in layer.counters.as_dict().items():
                running_totals[name] = running_totals.get(name, 0.0) + value
            base += layer.cycles
            report.append(layer)
        return report
