"""Pareto exploration across architecture templates.

Sweeps a ResNet-style convolution over four architecture templates
(TPU- / MAERI- / SIGMA- / Eyeriss-like), two fabric sizes and two
bandwidth points, then reports the cycles-vs-energy Pareto front — the
kind of early-design-stage exploration the paper positions STONNE for.

Run: ``python examples/pareto_exploration.py``
"""

from repro.config import ConvLayerSpec
from repro.experiments.dse import as_rows, pareto_front, sweep
from repro.experiments.runner import format_table

LAYER = ConvLayerSpec(r=3, s=3, c=32, k=32, x=18, y=18, name="resnet-style-conv")


def main() -> None:
    points = sweep(
        LAYER,
        architectures=("tpu", "maeri", "sigma", "eyeriss"),
        sizes=(64, 256),
        bandwidth_fractions=(1.0, 0.25),
    )
    print(f"design space for {LAYER.name} ({LAYER.num_macs} MACs):\n")
    print(format_table(as_rows(points)))

    front = pareto_front(points)
    print("\ncycles-vs-energy Pareto front:")
    print(format_table(as_rows(front)))
    best_edp = min(points, key=lambda p: p.edp)
    print(
        f"\nlowest energy-delay product: {best_edp.arch} with "
        f"{best_edp.num_ms} MSs at bandwidth {best_edp.bandwidth} "
        f"(EDP {best_edp.edp:.1f} uJ x cycles)"
    )


if __name__ == "__main__":
    main()
