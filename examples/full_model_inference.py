"""Full-model evaluation: ResNet-50 on TPU-, MAERI- and SIGMA-like designs.

Mirrors the paper's use case 1 for a single model: the mini DL framework
drives inference layer by layer, offloading every compute-intensive layer
to the simulated accelerator, and the prediction is checked against the
native CPU execution (the paper's functional validation). Per-layer cycle
counts and the energy breakdown are printed for each architecture.

Run: ``python examples/full_model_inference.py``
"""

import numpy as np

from repro import Accelerator, maeri_like, sigma_like, tpu_like
from repro.experiments.runner import format_table
from repro.frontend.models import build_model, model_input
from repro.frontend.simulated import detach_context, simulate

ARCHS = {
    "tpu-like": tpu_like(num_pes=256),
    "maeri-like": maeri_like(num_ms=256, bandwidth=128),
    "sigma-like": sigma_like(num_ms=256, bandwidth=128),
}


def main() -> None:
    model = build_model("resnet50", seed=0)
    images = model_input("resnet50", batch=1, seed=1)
    native_prediction = model(images)
    print(f"native CPU prediction: class {int(np.argmax(native_prediction))}")

    summary = []
    per_layer_maeri = None
    for name, config in ARCHS.items():
        acc = Accelerator(config)
        simulate(model, acc)
        simulated_prediction = model(images)
        detach_context(model)

        matches = np.allclose(
            simulated_prediction, native_prediction, atol=1e-2, rtol=1e-3
        )
        energy = acc.report.total_energy()
        summary.append(
            {
                "architecture": name,
                "cycles": acc.report.total_cycles,
                "energy_uj": round(energy.total_uj, 3),
                "rn_energy_share": round(energy.share_of("RN"), 3),
                "functional_match": matches,
            }
        )
        if name == "maeri-like":
            per_layer_maeri = [
                {"layer": layer.name, "kind": layer.kind, "cycles": layer.cycles,
                 "utilization": round(layer.multiplier_utilization, 3)}
                for layer in acc.report.layers
            ]

    print("\narchitecture comparison:")
    print(format_table(summary))
    print("\nper-layer breakdown on the MAERI-like instance:")
    print(format_table(per_layer_maeri[:12]))
    print(f"... ({len(per_layer_maeri)} layers total)")

    # the Fig. 2b view: layers execute back-to-back on the accelerator clock
    acc = Accelerator(ARCHS["maeri-like"])
    simulate(model, acc)
    model(images)
    detach_context(model)
    print("\nexecution timeline (first layers):")
    print(format_table(acc.report.timeline()[:6]))


if __name__ == "__main__":
    main()
