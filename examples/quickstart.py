"""Quickstart: simulate single layers on the three Table IV accelerators.

Builds a MAERI-like instance, offloads a convolution and a GEMM through
the STONNE API, verifies the simulated outputs against NumPy, and prints
the two output-module artifacts (JSON summary + counter file). Then
repeats the GEMM on TPU-like and SIGMA-like instances for a first
cross-architecture comparison.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import CreateInstance, maeri_like, sigma_like, tpu_like
from repro.api import ConfigureCONV, ConfigureData, ConfigureDMM, RunOperation

rng = np.random.default_rng(42)


def main() -> None:
    # --- 1. create a simulator instance from a hardware description -----
    instance = CreateInstance(maeri_like(num_ms=64, bandwidth=16))

    # --- 2. offload a convolution through the STONNE API ----------------
    weights = rng.standard_normal((8, 4, 3, 3)).astype(np.float32)
    images = rng.standard_normal((1, 4, 10, 10)).astype(np.float32)
    ConfigureCONV(instance, stride=1, name="demo-conv")
    ConfigureData(instance, weights=weights, inputs=images)
    conv_out = RunOperation(instance)
    print(f"conv output shape: {conv_out.shape}")

    # --- 3. offload a GEMM ------------------------------------------------
    a = rng.standard_normal((16, 32)).astype(np.float32)
    b = rng.standard_normal((32, 8)).astype(np.float32)
    ConfigureDMM(instance, name="demo-gemm")
    ConfigureData(instance, weights=a, inputs=b)
    gemm_out = RunOperation(instance)
    assert np.allclose(gemm_out, a @ b, atol=1e-4), "functional mismatch!"
    print("gemm output matches NumPy reference")

    # --- 4. the output module: JSON summary + counter file ----------------
    report = instance.report
    print(f"\ntotal cycles: {report.total_cycles}")
    print(f"total energy: {report.total_energy().total_uj:.4f} uJ")
    print(f"total area:   {report.area().total_mm2:.4f} mm^2")
    print("\ncounter file (first lines):")
    print("\n".join(report.to_counter_file().splitlines()[:8]))

    # --- 5. the same GEMM on the other two reference designs --------------
    print("\nsame GEMM across architectures:")
    for config in (tpu_like(num_pes=64), maeri_like(64, 16), sigma_like(64, 16)):
        other = CreateInstance(config)
        ConfigureDMM(other, name="demo-gemm")
        ConfigureData(other, weights=a, inputs=b)
        out = RunOperation(other)
        assert np.allclose(out, a @ b, atol=1e-4)
        print(f"  {config.name:12s} -> {other.report.total_cycles:5d} cycles")


if __name__ == "__main__":
    main()
