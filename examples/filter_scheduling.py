"""Use case 3: static filter scheduling on a sparse accelerator.

Part 1 recreates the paper's Fig. 8 worked example: four sparse 1x5
filters on an 8-multiplier SIGMA-like fabric, where reordering the filters
(Largest Filter First) turns a 3-round schedule into a balanced 2-round
one. Part 2 runs a whole pruned model with the NS / RDM / LFF policies and
reports the runtime and utilization differences.

Run: ``python examples/filter_scheduling.py``
"""

import numpy as np

from repro import Accelerator, sigma_like
from repro.experiments.runner import format_table
from repro.frontend.models import build_model, model_input
from repro.frontend.simulated import detach_context, simulate
from repro.opts.scheduling import (
    SchedulingPolicy,
    largest_filter_first_rounds,
    natural_order_rounds,
    policy_round_builder,
)


def fig8_example() -> None:
    # F0 and F2 have 4 nonzeros; F1 and F3 have 2 (the paper's Fig. 8)
    row_nnz = np.array([4, 2, 4, 2])
    capacity = 8

    ns = natural_order_rounds(row_nnz, capacity)
    lff = largest_filter_first_rounds(row_nnz, capacity)

    def describe(rounds):
        return [
            "{" + ", ".join(f"F{chunk.row}({chunk.length})" for chunk in chunks) + "}"
            for chunks in rounds
        ]

    print("Fig. 8 example (4 filters, 8-MS fabric):")
    print(f"  natural order (NS):        {describe(ns)}  -> {len(ns)} rounds")
    print(f"  largest filter first (LFF): {describe(lff)}  -> {len(lff)} rounds")
    print()


def whole_model(model_name: str = "squeezenet") -> None:
    model = build_model(model_name, seed=0)
    x = model_input(model_name, batch=1, seed=1)

    rows = []
    baseline_cycles = None
    for policy in (SchedulingPolicy.NS, SchedulingPolicy.RDM, SchedulingPolicy.LFF):
        acc = Accelerator(sigma_like(num_ms=256, bandwidth=128))
        simulate(model, acc, round_builder=policy_round_builder(policy, seed=0))
        model(x)
        detach_context(model)
        cycles = acc.report.total_cycles
        if baseline_cycles is None:
            baseline_cycles = cycles
        rows.append(
            {
                "policy": policy.name,
                "cycles": cycles,
                "normalized_runtime": round(cycles / baseline_cycles, 4),
                "energy_uj": round(acc.report.total_energy().total_uj, 3),
            }
        )
    print(f"{model_name} on a 256-MS SIGMA-like accelerator:")
    print(format_table(rows))


def main() -> None:
    fig8_example()
    whole_model()


if __name__ == "__main__":
    main()
