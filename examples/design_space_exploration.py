"""Design-space exploration: the use case the simulator exists for.

Sweeps fabric size and Global Buffer bandwidth for a ResNet-style
convolution on MAERI-like hardware, comparing the cycle-level result
against the analytical model at every point — a miniature of the paper's
Fig. 1b showing exactly where analytical estimates stop being trustworthy.

Run: ``python examples/design_space_exploration.py``
"""

from repro import Accelerator, ConvLayerSpec, maeri_like
from repro.analytical import maeri_analytical_cycles
from repro.experiments.runner import format_table

LAYER = ConvLayerSpec(r=3, s=3, c=32, k=32, x=18, y=18, name="resnet-style-conv")


def main() -> None:
    rows = []
    for num_ms in (64, 128, 256):
        for bandwidth in (num_ms, num_ms // 2, num_ms // 4):
            acc = Accelerator(maeri_like(num_ms=num_ms, bandwidth=bandwidth))
            tile = acc.mapper.tile_for_conv(LAYER)
            result = acc.dense_controller.run_conv(LAYER, tile)
            analytical = maeri_analytical_cycles(LAYER, tile, num_ms, bandwidth)
            rows.append(
                {
                    "num_ms": num_ms,
                    "bandwidth": bandwidth,
                    "tile": f"cs={tile.cluster_size} x nc={tile.num_clusters}",
                    "cycle_level": result.cycles,
                    "analytical": analytical,
                    "am_error_pct": round(
                        100 * (result.cycles - analytical) / result.cycles, 1
                    ),
                    "utilization": round(result.multiplier_utilization, 3),
                }
            )
    print(f"layer: {LAYER.name} "
          f"(R=3 S=3 C=32 K=32 -> {LAYER.num_macs} MACs)\n")
    print(format_table(rows))
    print(
        "\nNote how the analytical model tracks the cycle-level simulator at "
        "full bandwidth\nbut underestimates more and more as the GB ports "
        "starve the fabric (Fig. 1b)."
    )


if __name__ == "__main__":
    main()
