"""Datatype sensitivity: the same model at FP32 / FP16 / FP8 / INT8.

The paper notes that the output module's energy and area figures "depend
on the particular data format (e.g., FP16 or INT8)". This example makes
that concrete: SqueezeNet runs on the same MAERI-like fabric configured
for each datatype, with the weights fake-quantized to match, reporting
the prediction drift and the energy/area scaling side by side.

Run: ``python examples/quantized_inference.py``
"""

import numpy as np

from repro import Accelerator, maeri_like
from repro.config.hardware import DataType
from repro.experiments.runner import format_table
from repro.frontend.models import build_model, model_input
from repro.frontend.simulated import detach_context, simulate
from repro.tensors.quantize import quantize_model


def main() -> None:
    x = model_input("squeezenet", batch=2, seed=1)
    reference = build_model("squeezenet", seed=0)(x)

    rows = []
    for dtype in (DataType.FP32, DataType.FP16, DataType.FP8, DataType.INT8):
        model = build_model("squeezenet", seed=0)
        quantize_model(model, dtype)

        acc = Accelerator(maeri_like(num_ms=256, bandwidth=128, dtype=dtype))
        simulate(model, acc)
        prediction = model(x)
        detach_context(model)

        drift = float(np.abs(prediction - reference).max())
        same_class = bool(
            np.array_equal(np.argmax(prediction, 1), np.argmax(reference, 1))
        )
        energy = acc.report.total_energy()
        rows.append(
            {
                "dtype": dtype.value,
                "cycles": acc.report.total_cycles,
                "energy_uj": round(energy.total_uj, 3),
                "area_mm2": round(acc.report.area().total_mm2, 4),
                "max_output_drift": round(drift, 5),
                "prediction_preserved": same_class,
            }
        )

    print("SqueezeNet on a 256-MS MAERI-like fabric, per datatype:\n")
    print(format_table(rows))
    print(
        "\nTiming is datatype-independent (same dataflow); energy and area "
        "scale with\noperand width, and quantization drift stays far below "
        "the decision margin."
    )


if __name__ == "__main__":
    main()
