"""Use case 2: the SNAPEA data-dependent optimization.

Runs SqueezeNet (dense, BN-folded) on the 64-PE SNAPEA architecture with
and without the early-termination logic, validating both against native
CPU inference and reporting the paper's four metrics: speedup, normalized
energy, computed operations and memory accesses. This is the experiment
that *requires* full-model simulation with real values — termination
points depend on the actual weights and activations.

Run: ``python examples/snapea_early_termination.py``
"""

import numpy as np

from repro.experiments.runner import format_table
from repro.frontend.folding import fold_batchnorms
from repro.frontend.models import build_model, model_input
from repro.frontend.simulated import attach_context, detach_context
from repro.opts.snapea import SnapeaContext


def main() -> None:
    model = build_model("squeezenet", seed=0, prune=False)
    folded = fold_batchnorms(model)
    print(f"folded {folded} conv+BN pairs (SNAPEA's prior-simulation pass)")

    images = model_input("squeezenet", batch=4, seed=1)
    native = model(images)

    contexts = {}
    for label, early in (("baseline", False), ("snapea", True)):
        ctx = SnapeaContext(num_pes=64, bandwidth=64, early_termination=early)
        attach_context(model, ctx)
        out = model(images)
        detach_context(model)
        assert np.allclose(out, native, atol=1e-2, rtol=1e-3), "validation failed"
        contexts[label] = ctx

    base, snapea = contexts["baseline"], contexts["snapea"]
    print("functional validation: simulated predictions match native CPU\n")
    print(format_table([
        {
            "metric": "cycles",
            "baseline": base.total_cycles,
            "snapea": snapea.total_cycles,
            "ratio": round(snapea.total_cycles / base.total_cycles, 3),
        },
        {
            "metric": "operations",
            "baseline": base.total_ops,
            "snapea": snapea.total_ops,
            "ratio": round(snapea.total_ops / base.total_ops, 3),
        },
        {
            "metric": "memory accesses",
            "baseline": base.total_mem_accesses,
            "snapea": snapea.total_mem_accesses,
            "ratio": round(snapea.total_mem_accesses / base.total_mem_accesses, 3),
        },
        {
            "metric": "energy (uJ)",
            "baseline": round(base.total_energy_uj(), 3),
            "snapea": round(snapea.total_energy_uj(), 3),
            "ratio": round(snapea.total_energy_uj() / base.total_energy_uj(), 3),
        },
    ]))
    print(f"\nspeedup: {base.total_cycles / snapea.total_cycles:.2f}x")
    per_layer = [
        {"layer": s.name, "ops_saved": f"{s.ops_saved_fraction:.1%}",
         "terminated_outputs": s.terminated_outputs}
        for s in snapea.layers if s.dense_ops
    ]
    print("\nper-layer termination detail:")
    print(format_table(per_layer))


if __name__ == "__main__":
    main()
