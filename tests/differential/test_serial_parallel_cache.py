"""Differential suite: serial vs parallel vs cached execution.

Every execution mode of the simulator must produce *byte-identical*
results — same model outputs, same per-layer cycles and activity
counters, same layer names — because the parallel runner and the
simulation cache are pure execution strategies, not approximations.
This suite drives Fig. 5 golden workloads through all three paths and
compares them field by field, cross-checking the serial path against
``tests/regression/golden.json`` so a drift in *any* path is caught.

Run with ``--jobs N`` (repo-root pytest option) to put N worker
processes behind the parallel path; the CI parallel-safety job uses
``--jobs 4``.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.engine.accelerator import Accelerator
from repro.experiments.fig5 import architecture_config
from repro.frontend.models import build_model, model_input
from repro.frontend.simulated import detach_context, simulate
from repro.observability import Observability
from repro.parallel import ParallelModelRunner, SimCache

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "regression" / "golden.json")
    .read_text(encoding="utf-8")
)

#: fig5 golden workloads: grouped convs (mobilenets), conv+pool mixes
#: (squeezenet), GEMM-heavy attention (bert), on all three Table IV archs
CASES = [
    (model, arch)
    for model in ("squeezenet", "mobilenets", "bert")
    for arch in ("tpu", "maeri", "sigma")
]


def _workload(model_name):
    model = build_model(model_name, seed=0)
    x = model_input(model_name, batch=1, seed=1)
    return model, x


def _serial_run(arch, model_name, observability=None):
    model, x = _workload(model_name)
    acc = Accelerator(architecture_config(arch), observability=observability)
    simulate(model, acc)
    output = model(x)
    detach_context(model)
    return output, acc.report


def _parallel_run(arch, model_name, jobs, cache=None, observability=None):
    model, x = _workload(model_name)
    runner = ParallelModelRunner(
        architecture_config(arch), jobs=jobs, cache=cache,
        observability=observability,
    )
    return runner.run_model(model, x)


def _layer_fingerprint(report):
    """Every per-layer field the paper's output module reports."""
    return [
        {
            "name": layer.name,
            "kind": layer.kind,
            "cycles": layer.cycles,
            "macs": layer.macs,
            "outputs": layer.outputs,
            "utilization": layer.multiplier_utilization,
            "counters": layer.counters.as_dict(),
        }
        for layer in report.layers
    ]


def _assert_identical(reference, candidate, ref_output, cand_output):
    assert ref_output.tobytes() == cand_output.tobytes()
    assert candidate.total_cycles == reference.total_cycles
    assert _layer_fingerprint(candidate) == _layer_fingerprint(reference)


@pytest.mark.parametrize("model_name,arch", CASES)
def test_serial_parallel_cached_identical(model_name, arch, jobs, tmp_path):
    ref_output, ref_report = _serial_run(arch, model_name)
    assert ref_report.total_cycles == \
        GOLDEN["fig5_cycles"][f"{model_name}/{arch}"]

    cache = SimCache(tmp_path / "simcache")
    cold = _parallel_run(arch, model_name, jobs, cache=cache)
    assert cold.fallbacks == 0
    _assert_identical(ref_report, cold.report, ref_output, cold.output)

    warm = _parallel_run(arch, model_name, jobs, cache=SimCache(
        tmp_path / "simcache"
    ))
    _assert_identical(ref_report, warm.report, ref_output, warm.output)

    if arch == "sigma":
        # data-dependent timing: the cache must refuse every layer
        assert cold.cache_hits == warm.cache_hits == 0
        assert not any((tmp_path / "simcache").rglob("*.json"))
    else:
        assert warm.cache_hits == warm.layers
        assert warm.simulated == 0


@pytest.mark.parametrize("arch", ["tpu", "sigma"])
def test_observability_survives_workers(arch, jobs):
    """Spans and metrics from workers merge onto the parent timeline."""
    obs = Observability.create(trace=True, metrics_every=32)
    result = _parallel_run(arch, "squeezenet", jobs, observability=obs)

    spans = [e for e in obs.tracer.events if e.name.startswith("layer:")]
    assert len(spans) == result.layers
    # layer windows tile the model timeline in execution order
    expected_start = 0
    for span, layer in zip(spans, result.report.layers):
        assert span.name == f"layer:{layer.name}"
        assert span.start == expected_start
        assert span.end == expected_start + layer.cycles
        expected_start = span.end
    assert expected_start == result.report.total_cycles

    if obs.metrics is not None and len(obs.metrics):
        cycles = [s.cycle for s in obs.metrics.samples]
        assert cycles == sorted(cycles)
        assert cycles[-1] <= result.report.total_cycles

    _, ref_report = _serial_run(arch, "squeezenet")
    assert result.report.total_cycles == ref_report.total_cycles


def test_cache_shared_across_models(jobs, tmp_path):
    """One cache directory serves any mix of models on one config."""
    cache = SimCache(tmp_path)
    first = _parallel_run("maeri", "squeezenet", jobs, cache=cache)
    again = _parallel_run("maeri", "squeezenet", jobs, cache=SimCache(tmp_path))
    assert again.simulated == 0
    assert again.report.total_cycles == first.report.total_cycles
    # a different model only reuses entries for genuinely shared shapes
    other = _parallel_run("maeri", "mobilenets", jobs, cache=SimCache(tmp_path))
    _, ref = _serial_run("maeri", "mobilenets")
    assert other.report.total_cycles == ref.total_cycles
