"""Differential suite: the fabric observatory is exact, neutral, engine-agnostic.

The fabric ledger makes the same three falsifiable promises the stall
ledger does, pinned the same way:

1. **consistency** — on every zoo model on every Table IV architecture,
   every charged tier's per-level busy sums equal the layer's aggregate
   NoC counter exactly, and every FIFO's anchored push/pop total equals
   its ``ctrl_fifo_*`` counter;
2. **engine agnosticism** — the ``cycle`` and ``vector`` engines produce
   *byte-identical* fabric payloads (both charge through the same shared
   NoC recording methods with the same aggregate inputs, and per-link
   spreads happen once at finalize, so this is identity by construction,
   verified anyway);
3. **neutrality** — turning the observatory on changes nothing but
   ``extra["fabric"]``: outputs, cycles, counters and (hence) energy
   payloads stay byte-identical, serial and through the parallel runner.
"""

import json

import pytest

from repro.config import EngineMode
from repro.engine.accelerator import Accelerator
from repro.engine.vector.predicate import ENGINE_MODE_ENV
from repro.experiments.fig5 import architecture_config
from repro.frontend.models import MODEL_NAMES, build_model, model_input
from repro.frontend.simulated import detach_context, simulate
from repro.observability import Observability
from repro.observability.fabric import FABRIC_TIERS, validate_fabric
from repro.parallel import ParallelModelRunner, SimCache


@pytest.fixture(autouse=True)
def _pin_configured_mode(monkeypatch):
    """Both engine modes are driven explicitly below; a CI-level
    ``STONNE_ENGINE_MODE`` override would make the comparison vacuous."""
    monkeypatch.delenv(ENGINE_MODE_ENV, raising=False)


ZOO_ALL = [
    (model, arch)
    for model in MODEL_NAMES
    for arch in ("tpu", "maeri", "sigma")
]

ZOO_DENSE = [
    (model, arch) for model in MODEL_NAMES for arch in ("tpu", "maeri")
]

#: the neutrality subset: one model per family, all archs
NEUTRALITY_CASES = [
    (model, arch)
    for model in ("squeezenet", "mobilenets", "bert")
    for arch in ("tpu", "maeri", "sigma")
]


def _run(arch, model_name, mode=None, fabric=False):
    config = architecture_config(arch)
    if mode is not None:
        config = config.with_updates(engine_mode=mode)
    obs = Observability.create(fabric=True) if fabric else None
    acc = Accelerator(config, observability=obs)
    model = build_model(model_name, seed=0)
    x = model_input(model_name, batch=1, seed=1)
    simulate(model, acc)
    output = model(x)
    detach_context(model)
    return output, acc.report


def _payloads(report):
    return json.dumps(
        [layer.to_payload() for layer in report.layers], sort_keys=True
    )


def _payloads_without_fabric(report):
    rows = []
    for layer in report.layers:
        payload = layer.to_payload()
        payload["extra"].pop("fabric")
        rows.append(payload)
    return json.dumps(rows, sort_keys=True)


# ---------------------------------------------------------------------------
# consistency: per-level sums reproduce the aggregate counters exactly
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("model_name,arch", ZOO_ALL)
def test_zoo_consistency(model_name, arch):
    _, report = _run(arch, model_name, fabric=True)
    assert report.layers
    charged_layers = 0
    for layer in report.layers:
        fabric = layer.extra.get("fabric")
        assert fabric is not None, f"{layer.name}: no fabric payload"
        problems = validate_fabric(
            fabric, layer.counters.as_dict(), layer.cycles
        )
        assert not problems, f"{layer.name}: {problems}"
        # NoC activity the ledger never saw is flagged, never silent —
        # the full zoo must have none
        assert "uninstrumented" not in fabric, layer.name
        tiers = fabric.get("tiers") or {}
        assert set(tiers) <= set(FABRIC_TIERS)
        if tiers:
            charged_layers += 1
    assert charged_layers, "no layer charged any fabric tier"


# ---------------------------------------------------------------------------
# engine agnosticism: cycle and vector fabric payloads are byte-identical
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("model_name,arch", ZOO_DENSE)
def test_zoo_cycle_vector_fabric_byte_identical(model_name, arch):
    _, ref = _run(arch, model_name, mode=EngineMode.CYCLE, fabric=True)
    _, vec = _run(arch, model_name, mode=EngineMode.VECTOR, fabric=True)
    assert _payloads(vec) == _payloads(ref)


def test_fabric_does_not_force_reference_walk(monkeypatch):
    """The observatory must not silently disable the vector engine — the
    closed-form kernels charge the same ledger through the shared code."""
    calls = {"n": 0}
    from repro.engine.vector import systolic as vec_systolic

    real = vec_systolic.run_gemm_closed_form

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(
        "repro.engine.vector.systolic.run_gemm_closed_form", counting
    )
    _, report = _run("tpu", "squeezenet", mode=EngineMode.VECTOR, fabric=True)
    assert calls["n"] > 0
    assert all("fabric" in l.extra for l in report.layers)


# ---------------------------------------------------------------------------
# neutrality: the observatory on/off leaves everything else byte-identical
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("model_name,arch", NEUTRALITY_CASES)
def test_fabric_on_off_payloads_byte_identical(model_name, arch):
    off_out, off = _run(arch, model_name, fabric=False)
    on_out, on = _run(arch, model_name, fabric=True)
    assert on_out.tobytes() == off_out.tobytes()
    assert on.total_cycles == off.total_cycles
    assert _payloads_without_fabric(on) == _payloads(off)


def test_parallel_runner_threads_fabric_and_bypasses_cache(jobs, tmp_path):
    model = build_model("squeezenet", seed=0)
    x = model_input("squeezenet", batch=1, seed=1)
    config = architecture_config("tpu")
    cache = SimCache(tmp_path / "cache")

    _, serial = _run("tpu", "squeezenet", fabric=True)
    run = ParallelModelRunner(
        config, jobs=jobs, cache=cache,
        observability=Observability.create(fabric=True),
    ).run_model(model, x)
    assert _payloads(run.report) == _payloads(serial)
    # the cache was bypassed: nothing was stored under the observatory,
    # so a later ledger-free run cannot replay instrumented payloads
    # (or miss ledgers it expected)
    assert len(cache) == 0 and cache.disk_bytes() == 0

    plain = ParallelModelRunner(config, jobs=jobs, cache=cache).run_model(
        model, x
    )
    assert all("fabric" not in l.extra for l in plain.report.layers)
    assert _payloads_without_fabric(run.report) == _payloads(plain.report)
