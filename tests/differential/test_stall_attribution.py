"""Differential suite: stall attribution is exact, neutral, engine-agnostic.

The stall ledger makes three falsifiable promises, each pinned here the
same way the vector-equivalence and telemetry-neutrality suites pin
theirs:

1. **conservation** — on every zoo model on every Table IV architecture,
   every component's bucket sums equal its layer's cycles exactly;
2. **engine agnosticism** — the ``cycle`` and ``vector`` engines produce
   *byte-identical* ledgers (both charge through the same shared code
   with the same aggregate inputs, so this is identity by construction,
   verified anyway);
3. **neutrality** — turning attribution on changes nothing but
   ``extra["stalls"]``: cycles, counters and (hence) energy payloads
   stay byte-identical, serial and through the parallel runner.
"""

import json

import pytest

from repro.config import EngineMode
from repro.engine.accelerator import Accelerator
from repro.engine.vector.predicate import ENGINE_MODE_ENV
from repro.experiments.fig5 import architecture_config
from repro.frontend.models import MODEL_NAMES, build_model, model_input
from repro.frontend.simulated import detach_context, simulate
from repro.observability import Observability
from repro.observability.stalls import STALL_BUCKETS, validate_ledger
from repro.parallel import ParallelModelRunner, SimCache


@pytest.fixture(autouse=True)
def _pin_configured_mode(monkeypatch):
    """Both engine modes are driven explicitly below; a CI-level
    ``STONNE_ENGINE_MODE`` override would make the comparison vacuous."""
    monkeypatch.delenv(ENGINE_MODE_ENV, raising=False)


ZOO_ALL = [
    (model, arch)
    for model in MODEL_NAMES
    for arch in ("tpu", "maeri", "sigma")
]

ZOO_DENSE = [
    (model, arch) for model in MODEL_NAMES for arch in ("tpu", "maeri")
]

#: the telemetry-neutrality subset: one model per family, all archs
NEUTRALITY_CASES = [
    (model, arch)
    for model in ("squeezenet", "mobilenets", "bert")
    for arch in ("tpu", "maeri", "sigma")
]


def _run(arch, model_name, mode=None, stalls=False):
    config = architecture_config(arch)
    if mode is not None:
        config = config.with_updates(engine_mode=mode)
    obs = Observability.create(stalls=True) if stalls else None
    acc = Accelerator(config, observability=obs)
    model = build_model(model_name, seed=0)
    x = model_input(model_name, batch=1, seed=1)
    simulate(model, acc)
    output = model(x)
    detach_context(model)
    return output, acc.report


def _payloads(report):
    return json.dumps(
        [layer.to_payload() for layer in report.layers], sort_keys=True
    )


def _payloads_without_stalls(report):
    rows = []
    for layer in report.layers:
        payload = layer.to_payload()
        payload["extra"].pop("stalls")
        rows.append(payload)
    return json.dumps(rows, sort_keys=True)


# ---------------------------------------------------------------------------
# conservation: every cycle of every component lands in exactly one bucket
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("model_name,arch", ZOO_ALL)
def test_zoo_conservation(model_name, arch):
    _, report = _run(arch, model_name, stalls=True)
    assert report.layers
    for layer in report.layers:
        stalls = layer.extra.get("stalls")
        assert stalls, f"{layer.name}: no ledger recorded"
        problems = validate_ledger(stalls, layer.cycles)
        assert not problems, f"{layer.name}: {problems}"
        for buckets in stalls.values():
            assert set(buckets) <= set(STALL_BUCKETS)


# ---------------------------------------------------------------------------
# engine agnosticism: cycle and vector ledgers are byte-identical
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("model_name,arch", ZOO_DENSE)
def test_zoo_cycle_vector_ledgers_byte_identical(model_name, arch):
    _, ref = _run(arch, model_name, mode=EngineMode.CYCLE, stalls=True)
    _, vec = _run(arch, model_name, mode=EngineMode.VECTOR, stalls=True)
    assert _payloads(vec) == _payloads(ref)


def test_stalls_do_not_force_reference_walk(monkeypatch):
    """Attribution must not silently disable the vector engine — the
    closed-form kernels charge the same ledger through the shared code."""
    calls = {"n": 0}
    from repro.engine.vector import systolic as vec_systolic

    real = vec_systolic.run_gemm_closed_form

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(
        "repro.engine.vector.systolic.run_gemm_closed_form", counting
    )
    _, report = _run("tpu", "squeezenet", mode=EngineMode.VECTOR, stalls=True)
    assert calls["n"] > 0
    assert all(l.extra.get("stalls") for l in report.layers)


# ---------------------------------------------------------------------------
# neutrality: attribution on/off leaves everything else byte-identical
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("model_name,arch", NEUTRALITY_CASES)
def test_stalls_on_off_payloads_byte_identical(model_name, arch):
    off_out, off = _run(arch, model_name, stalls=False)
    on_out, on = _run(arch, model_name, stalls=True)
    assert on_out.tobytes() == off_out.tobytes()
    assert on.total_cycles == off.total_cycles
    assert _payloads_without_stalls(on) == _payloads(off)


def test_parallel_runner_threads_stalls_and_bypasses_cache(jobs, tmp_path):
    model = build_model("squeezenet", seed=0)
    x = model_input("squeezenet", batch=1, seed=1)
    config = architecture_config("tpu")
    cache = SimCache(tmp_path / "cache")

    _, serial = _run("tpu", "squeezenet", stalls=True)
    run = ParallelModelRunner(
        config, jobs=jobs, cache=cache,
        observability=Observability.create(stalls=True),
    ).run_model(model, x)
    assert _payloads(run.report) == _payloads(serial)
    # the cache was bypassed: nothing was stored under attribution, so a
    # later ledger-free run cannot replay attributed payloads (or miss
    # ledgers it expected)
    assert len(cache) == 0 and cache.disk_bytes() == 0

    plain = ParallelModelRunner(config, jobs=jobs, cache=cache).run_model(
        model, x
    )
    assert all("stalls" not in l.extra for l in plain.report.layers)
    assert _payloads_without_stalls(run.report) == _payloads(plain.report)
