"""Differential suite: cycle-stepped reference vs closed-form vector engine.

``repro.engine.vector`` is a pure execution strategy, not an
approximation: for every dense workload it must produce *byte-identical*
reports — same cycles, same activity counters, same energy, same trace
spans — as the per-cycle reference it replaces. This suite is the safety
net that makes that claim falsifiable:

- every zoo model on every dense architecture, compared layer by layer
  through the full ``to_payload()`` serialization;
- Hypothesis-generated (geometry, tile, preset) triples for GEMMs and
  convolutions, so shapes nobody hand-picked get the same guarantee;
- trace-span equality under the tracer (the vector kernels *replay* the
  reference schedule's spans closed-form);
- refusal-path checks: sparse (SIGMA) and SNAPEA workloads must never
  reach a vector kernel, metrics sampling must force the stepped walk,
  and the ``STONNE_ENGINE_MODE`` override must win over the config.

The reference engine is the oracle; whenever this file disagrees with
``repro.engine.vector``, the vector kernel is the one that is wrong.
"""

import json

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.config import EngineMode, maeri_like, tpu_like
from repro.config.hardware import Dataflow
from repro.config.tile import TileConfig
from repro.engine.accelerator import Accelerator
from repro.engine.vector.predicate import (
    ENGINE_MODE_ENV,
    resolve_engine_mode,
    use_vector_kernels,
)
from repro.errors import ConfigurationError, MappingError
from repro.experiments.fig5 import architecture_config
from repro.frontend.models import MODEL_NAMES, build_model, model_input
from repro.frontend.simulated import attach_context, detach_context, simulate
from repro.observability import Observability

@pytest.fixture(autouse=True)
def _pin_configured_mode(monkeypatch):
    """This file drives both engines explicitly via ``engine_mode``; a
    CI-level ``STONNE_ENGINE_MODE`` override would make the comparisons
    vacuous (both sides vector), so clear it for these tests."""
    monkeypatch.delenv(ENGINE_MODE_ENV, raising=False)


#: all zoo models on both dense Table IV architectures (sigma is sparse:
#: the vector predicate refuses it, covered separately below)
ZOO_CASES = [
    (model, arch) for model in MODEL_NAMES for arch in ("tpu", "maeri")
]

#: hardware presets the Hypothesis triples draw from — both dense
#: controller families, multiple sizes, both systolic dataflows
PRESETS = {
    "tpu16": lambda: tpu_like(num_pes=16),
    "tpu64": lambda: tpu_like(num_pes=64),
    "tpu64-ws": lambda: tpu_like(
        num_pes=64, dataflow=Dataflow.WEIGHT_STATIONARY
    ),
    "maeri16": lambda: maeri_like(num_ms=16, bandwidth=8),
    "maeri64": lambda: maeri_like(num_ms=64, bandwidth=32),
}


def _with_mode(config, mode):
    return config.with_updates(engine_mode=mode)


def _payloads(report):
    """The byte-exact serialization the output module writes to disk."""
    return json.dumps(
        [layer.to_payload() for layer in report.layers], sort_keys=True
    )


def _run_zoo(arch, model_name, mode, observability=None):
    model = build_model(model_name, seed=0)
    x = model_input(model_name, batch=1, seed=1)
    acc = Accelerator(
        _with_mode(architecture_config(arch), mode),
        observability=observability,
    )
    simulate(model, acc)
    output = model(x)
    detach_context(model)
    return output, acc


def _assert_reports_identical(ref_acc, vec_acc):
    assert vec_acc.report.total_cycles == ref_acc.report.total_cycles
    assert _payloads(vec_acc.report) == _payloads(ref_acc.report)


# ---------------------------------------------------------------------------
# zoo sweep: every dense layer in the model zoo, byte for byte
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("model_name,arch", ZOO_CASES)
def test_zoo_layers_byte_identical(model_name, arch):
    ref_out, ref_acc = _run_zoo(arch, model_name, EngineMode.CYCLE)
    vec_out, vec_acc = _run_zoo(arch, model_name, EngineMode.VECTOR)
    assert vec_out.tobytes() == ref_out.tobytes()
    _assert_reports_identical(ref_acc, vec_acc)


# ---------------------------------------------------------------------------
# Hypothesis triples: (geometry, tile, preset)
# ---------------------------------------------------------------------------

@st.composite
def gemm_triples(draw):
    m = draw(st.integers(1, 96))
    k = draw(st.integers(1, 64))
    n = draw(st.integers(1, 96))
    preset = draw(st.sampled_from(sorted(PRESETS)))
    seed = draw(st.integers(0, 2**16))
    return m, k, n, preset, seed


@given(gemm_triples())
@settings(max_examples=40, deadline=None)
def test_random_gemm_byte_identical(triple):
    m, k, n, preset, seed = triple
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    config = PRESETS[preset]()

    ref = Accelerator(_with_mode(config, EngineMode.CYCLE))
    vec = Accelerator(_with_mode(config, EngineMode.VECTOR))
    ref_out = ref.run_gemm(a, b)
    vec_out = vec.run_gemm(a, b)

    assert vec_out.tobytes() == ref_out.tobytes()
    _assert_reports_identical(ref, vec)


@st.composite
def conv_triples(draw):
    c = draw(st.integers(1, 8))
    k = draw(st.integers(1, 8))
    x = draw(st.integers(3, 12))
    r = draw(st.integers(1, 3))
    stride = draw(st.integers(1, 2))
    padding = draw(st.integers(0, 1))
    assume(x + 2 * padding >= r)
    preset = draw(st.sampled_from(sorted(PRESETS)))
    # half the triples force an explicit (possibly awkward) tile through
    # the dense controller; the rest take the mapper's choice
    explicit_tile = draw(st.booleans())
    tc = draw(st.integers(1, c))
    tk = draw(st.integers(1, k))
    ty = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**16))
    return c, k, x, r, stride, padding, preset, explicit_tile, (tc, tk, ty), seed


@given(conv_triples())
@settings(max_examples=25, deadline=None)
def test_random_conv_byte_identical(triple):
    c, k, x, r, stride, padding, preset, explicit_tile, tile_dims, seed = triple
    rng = np.random.default_rng(seed)
    weights = rng.standard_normal((k, c, r, r)).astype(np.float32)
    activations = rng.standard_normal((1, c, x, x)).astype(np.float32)
    config = PRESETS[preset]()

    tile = None
    if explicit_tile and not preset.startswith("tpu"):
        from repro.engine.accelerator import conv_layer_spec

        layer = conv_layer_spec(
            weights, activations, stride=stride, padding=padding, groups=1
        )
        tc, tk, ty = tile_dims
        candidate = TileConfig(t_c=tc, t_k=tk, t_y=min(ty, layer.y_out))
        try:
            Accelerator(config).mapper.tile_for_conv(layer, candidate)
        except MappingError:
            assume(False)
        tile = candidate

    ref = Accelerator(_with_mode(config, EngineMode.CYCLE))
    vec = Accelerator(_with_mode(config, EngineMode.VECTOR))
    ref_out = ref.run_conv(
        weights, activations, stride=stride, padding=padding, tile=tile
    )
    vec_out = vec.run_conv(
        weights, activations, stride=stride, padding=padding, tile=tile
    )

    assert vec_out.tobytes() == ref_out.tobytes()
    _assert_reports_identical(ref, vec)


# ---------------------------------------------------------------------------
# observability: traces replay exactly, metrics force the stepped walk
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("arch", ["tpu", "maeri"])
def test_vector_trace_spans_byte_identical(arch):
    """VECTOR mode replays the reference schedule's spans closed-form."""
    ref_obs = Observability.create(trace=True)
    vec_obs = Observability.create(trace=True)
    _, ref_acc = _run_zoo(arch, "squeezenet", EngineMode.CYCLE, ref_obs)
    _, vec_acc = _run_zoo(arch, "squeezenet", EngineMode.VECTOR, vec_obs)
    _assert_reports_identical(ref_acc, vec_acc)
    assert list(vec_obs.tracer.events) == list(ref_obs.tracer.events)


@pytest.mark.parametrize("mode", [EngineMode.VECTOR, EngineMode.AUTO])
def test_metrics_sampling_forces_reference_walk(mode, monkeypatch):
    """Metrics snapshots need the stepped walk's intermediate state."""
    def boom(*args, **kwargs):  # pragma: no cover - must never run
        raise AssertionError("vector kernel reached under metrics sampling")

    monkeypatch.setattr(
        "repro.engine.vector.systolic.run_gemm_closed_form", boom
    )
    monkeypatch.setattr(
        "repro.engine.vector.dense.run_layer_closed_form", boom
    )
    obs = Observability.create(metrics_every=64)
    _, acc = _run_zoo("tpu", "squeezenet", mode, obs)
    assert acc.report.total_cycles > 0
    assert obs.metrics is not None and len(obs.metrics)


def test_auto_falls_back_under_tracing(monkeypatch):
    def boom(*args, **kwargs):  # pragma: no cover - must never run
        raise AssertionError("vector kernel reached in AUTO under tracing")

    monkeypatch.setattr(
        "repro.engine.vector.systolic.run_gemm_closed_form", boom
    )
    monkeypatch.setattr(
        "repro.engine.vector.dense.run_layer_closed_form", boom
    )
    obs = Observability.create(trace=True)
    _, acc = _run_zoo("tpu", "squeezenet", EngineMode.AUTO, obs)
    assert acc.report.total_cycles > 0


# ---------------------------------------------------------------------------
# refusal paths: sparse and SNAPEA never reach a vector kernel
# ---------------------------------------------------------------------------

def test_sparse_sigma_never_reaches_vector_kernels(monkeypatch):
    def boom(*args, **kwargs):  # pragma: no cover - must never run
        raise AssertionError("vector kernel reached on the sparse path")

    monkeypatch.setattr(
        "repro.engine.vector.systolic.run_gemm_closed_form", boom
    )
    monkeypatch.setattr(
        "repro.engine.vector.dense.run_layer_closed_form", boom
    )
    _, acc = _run_zoo("sigma", "bert", EngineMode.VECTOR)
    assert acc.report.total_cycles > 0


def test_snapea_never_reaches_vector_kernels(monkeypatch):
    from repro.frontend.layers import Conv2d
    from repro.opts.snapea import SnapeaContext

    def boom(*args, **kwargs):  # pragma: no cover - must never run
        raise AssertionError("vector kernel reached on the SNAPEA path")

    monkeypatch.setattr(
        "repro.engine.vector.systolic.run_gemm_closed_form", boom
    )
    monkeypatch.setattr(
        "repro.engine.vector.dense.run_layer_closed_form", boom
    )
    monkeypatch.setenv(ENGINE_MODE_ENV, "vector")
    rng = np.random.default_rng(7)
    conv = Conv2d(4, 8, 3, rng=rng)
    x = np.abs(rng.standard_normal((1, 4, 8, 8))).astype(np.float32)
    ctx = SnapeaContext(early_termination=True)
    attach_context(conv, ctx)
    conv(x)
    detach_context(conv)
    assert ctx.layers and ctx.layers[0].ops > 0


# ---------------------------------------------------------------------------
# predicate unit checks (mode resolution and env override)
# ---------------------------------------------------------------------------

def test_predicate_mode_matrix():
    off = Observability()
    tpu = tpu_like(num_pes=16)
    assert not use_vector_kernels(
        _with_mode(tpu, EngineMode.CYCLE), off
    )
    assert use_vector_kernels(_with_mode(tpu, EngineMode.VECTOR), off)
    assert use_vector_kernels(_with_mode(tpu, EngineMode.AUTO), off)

    tracing = Observability.create(trace=True)
    assert not use_vector_kernels(_with_mode(tpu, EngineMode.AUTO), tracing)
    assert use_vector_kernels(_with_mode(tpu, EngineMode.VECTOR), tracing)

    sampling = Observability.create(metrics_every=32)
    assert not use_vector_kernels(_with_mode(tpu, EngineMode.VECTOR), sampling)

    from repro.config import sigma_like

    assert not use_vector_kernels(
        _with_mode(sigma_like(num_ms=16, bandwidth=8), EngineMode.VECTOR), off
    )


def test_env_override_wins(monkeypatch):
    tpu = tpu_like(num_pes=16)
    monkeypatch.setenv(ENGINE_MODE_ENV, "cycle")
    assert resolve_engine_mode(
        _with_mode(tpu, EngineMode.VECTOR)
    ) is EngineMode.CYCLE
    monkeypatch.setenv(ENGINE_MODE_ENV, "vector")
    assert resolve_engine_mode(
        _with_mode(tpu, EngineMode.CYCLE)
    ) is EngineMode.VECTOR
    monkeypatch.setenv(ENGINE_MODE_ENV, "warp-speed")
    with pytest.raises(ConfigurationError):
        resolve_engine_mode(tpu)
