"""Differential suite: telemetry must be arithmetically invisible.

Host-side telemetry (counters, gauges, histograms, progress events, the
hotspot sampler) observes the simulator — it must never *be* part of it.
This suite runs the same workloads with telemetry fully off and fully on
(global registry enabled, a live progress emitter attached, the stack
sampler running) and asserts the outputs, per-layer cycle reports and
counter sets are byte-identical, exactly like the serial/parallel/cache
differential next door.
"""

import io

import pytest

from repro.engine.accelerator import Accelerator
from repro.experiments.fig5 import architecture_config
from repro.frontend.models import build_model, model_input
from repro.frontend.simulated import detach_context, simulate
from repro.observability.telemetry import (
    HotspotSampler,
    ProgressEmitter,
    enable_telemetry,
    telemetry,
)
from repro.parallel import ParallelModelRunner, SimCache

CASES = [
    (model, arch)
    for model in ("squeezenet", "mobilenets", "bert")
    for arch in ("tpu", "maeri", "sigma")
]


def _workload(model_name):
    model = build_model(model_name, seed=0)
    x = model_input(model_name, batch=1, seed=1)
    return model, x


def _serial_run(arch, model_name):
    model, x = _workload(model_name)
    acc = Accelerator(architecture_config(arch))
    simulate(model, acc)
    output = model(x)
    detach_context(model)
    return output, acc.report


def _parallel_run(arch, model_name, jobs, cache=None, progress=None):
    model, x = _workload(model_name)
    runner = ParallelModelRunner(
        architecture_config(arch), jobs=jobs, cache=cache, progress=progress,
    )
    return runner.run_model(model, x)


def _layer_fingerprint(report):
    return [
        {
            "name": layer.name,
            "kind": layer.kind,
            "cycles": layer.cycles,
            "macs": layer.macs,
            "outputs": layer.outputs,
            "utilization": layer.multiplier_utilization,
            "counters": layer.counters.as_dict(),
        }
        for layer in report.layers
    ]


def _assert_identical(reference, candidate, ref_output, cand_output):
    assert ref_output.tobytes() == cand_output.tobytes()
    assert candidate.total_cycles == reference.total_cycles
    assert _layer_fingerprint(candidate) == _layer_fingerprint(reference)


@pytest.mark.parametrize("model_name,arch", CASES)
def test_telemetry_on_off_identical_serial(model_name, arch):
    off_output, off_report = _serial_run(arch, model_name)
    enable_telemetry(True)
    telemetry().reset()
    try:
        with HotspotSampler(interval_s=0.005):
            on_output, on_report = _serial_run(arch, model_name)
    finally:
        enable_telemetry(False)
        telemetry().reset()
    _assert_identical(off_report, on_report, off_output, on_output)


@pytest.mark.parametrize("model_name,arch", [
    ("squeezenet", "tpu"), ("mobilenets", "maeri"), ("bert", "sigma"),
])
def test_telemetry_on_off_identical_parallel(model_name, arch, jobs, tmp_path):
    off = _parallel_run(
        arch, model_name, jobs, cache=SimCache(tmp_path / "off")
    )
    enable_telemetry(True)
    telemetry().reset()
    try:
        progress = ProgressEmitter(
            f"model:{model_name}:b1", total=0,
            stream=io.StringIO(), live=True,
            jsonl_path=tmp_path / "progress.jsonl",
        )
        on = _parallel_run(
            arch, model_name, jobs,
            cache=SimCache(tmp_path / "on"), progress=progress,
        )
        # telemetry actually observed the run it must not perturb
        pool_tasks = telemetry().get("stonne_pool_tasks_total")
        assert pool_tasks is not None and pool_tasks.total() == on.layers
        assert (tmp_path / "progress.jsonl").exists()
    finally:
        enable_telemetry(False)
        telemetry().reset()
    _assert_identical(off.report, on.report, off.output, on.output)

    # warm pass over the telemetry-on cache, telemetry now off: the cache
    # contents written under telemetry are byte-compatible too
    warm = _parallel_run(
        arch, model_name, jobs, cache=SimCache(tmp_path / "on")
    )
    _assert_identical(off.report, warm.report, off.output, warm.output)
