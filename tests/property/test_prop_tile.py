"""Property tests: auto-generated tiles are always valid mappings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.layer import ConvLayerSpec
from repro.config.tile import generate_conv_tile, generate_gemm_tile
from repro.config.layer import GemmSpec


@st.composite
def conv_layers(draw):
    r = draw(st.integers(1, 5))
    s = draw(st.integers(1, 5))
    c = draw(st.integers(1, 32))
    k = draw(st.integers(1, 32))
    g = draw(st.sampled_from([1, 1, 1, 2, 4]))
    stride = draw(st.integers(1, 2))
    x = r + stride * draw(st.integers(0, 10))
    y = s + stride * draw(st.integers(0, 10))
    return ConvLayerSpec(r=r, s=s, c=c, k=k, g=g, x=x, y=y, stride=stride)


fabric_sizes = st.sampled_from([8, 16, 32, 64, 128, 256])


@given(conv_layers(), fabric_sizes)
@settings(max_examples=100, deadline=None)
def test_generated_tile_is_valid(layer, num_ms):
    tile = generate_conv_tile(layer, num_ms)
    tile.validate_for(layer, num_ms)  # raises on violation
    assert 1 <= tile.multipliers_used <= num_ms


@given(conv_layers(), fabric_sizes, st.sampled_from([2, 8, 32]))
@settings(max_examples=60, deadline=None)
def test_bandwidth_aware_tiles_still_valid(layer, num_ms, bandwidth):
    tile = generate_conv_tile(layer, num_ms, bandwidth=min(bandwidth, num_ms))
    tile.validate_for(layer, num_ms)


@given(conv_layers(), fabric_sizes)
@settings(max_examples=60, deadline=None)
def test_tile_covers_all_work(layer, num_ms):
    """iterations x folds x cluster work >= total MACs (with padding)."""
    tile = generate_conv_tile(layer, num_ms)
    steps = tile.iterations_for(layer) * tile.folds_for(layer)
    assert steps * tile.cluster_size * tile.num_clusters >= layer.num_macs


@given(
    st.integers(1, 256), st.integers(1, 64), st.integers(1, 512), fabric_sizes
)
@settings(max_examples=80, deadline=None)
def test_gemm_tiles_valid(m, n, k, num_ms):
    tile = generate_gemm_tile(GemmSpec(m=m, n=n, k=k), num_ms)
    assert 1 <= tile.multipliers_used <= num_ms
    assert tile.cluster_size <= k or tile.cluster_size == 1
