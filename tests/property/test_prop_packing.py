"""Property tests: scheduling round builders preserve the work exactly."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.sparse_controller import natural_order_rounds, pack_rows_in_order
from repro.opts.scheduling import largest_filter_first_rounds, random_rounds

row_sizes = st.lists(st.integers(0, 80), min_size=1, max_size=40).map(np.array)
capacities = st.integers(4, 64)


def _check_invariants(rounds, sizes, capacity):
    covered = {}
    for chunks in rounds:
        used = sum(chunk.length for chunk in chunks)
        assert 0 < used <= capacity
        for chunk in chunks:
            assert chunk.length >= 1
            covered.setdefault(chunk.row, []).append(chunk)
    for row, nnz in enumerate(int(v) for v in sizes):
        chunks = covered.get(row, [])
        assert sum(c.length for c in chunks) == nnz
        if chunks:
            finals = [c for c in chunks if c.is_final]
            assert len(finals) == 1
            # chunk offsets partition [0, nnz)
            spans = sorted((c.start, c.start + c.length) for c in chunks)
            assert spans[0][0] == 0 and spans[-1][1] == nnz
            for (_, end), (start, _) in zip(spans, spans[1:]):
                assert end == start


@given(row_sizes, capacities)
@settings(max_examples=80, deadline=None)
def test_natural_order_invariants(sizes, capacity):
    _check_invariants(natural_order_rounds(sizes, capacity), sizes, capacity)


@given(row_sizes, capacities, st.integers(0, 5))
@settings(max_examples=80, deadline=None)
def test_random_order_invariants(sizes, capacity, seed):
    _check_invariants(random_rounds(sizes, capacity, seed), sizes, capacity)


@given(row_sizes, capacities)
@settings(max_examples=80, deadline=None)
def test_lff_invariants(sizes, capacity):
    _check_invariants(largest_filter_first_rounds(sizes, capacity), sizes, capacity)


@given(row_sizes, capacities)
@settings(max_examples=60, deadline=None)
def test_lff_close_to_first_fit_decreasing_bound(sizes, capacity):
    """LFF is first-fit decreasing: within the classic 11/9 OPT + 1 bound
    (for fabric-fitting rows; oversized rows add their mandatory folds)."""
    fitting = np.minimum(sizes, capacity)
    extra_fold_rounds = sum(
        max(0, (int(v) - 1) // capacity) for v in sizes
    )
    total = int(fitting.sum())
    if total == 0:
        return
    ideal = -(-total // capacity)
    lff = largest_filter_first_rounds(sizes, capacity)
    assert len(lff) <= (11 * ideal) // 9 + 1 + extra_fold_rounds


@given(row_sizes.filter(lambda s: len(s) > 0), capacities)
@settings(max_examples=60, deadline=None)
def test_lff_not_worse_than_natural_order_for_fitting_rows(sizes, capacity):
    """Without folding, first-fit decreasing needs at most one round more
    than any first-fit order (and usually fewer)."""
    sizes = np.minimum(sizes, capacity)
    lff = largest_filter_first_rounds(sizes, capacity)
    ns = natural_order_rounds(sizes, capacity)
    assert len(lff) <= len(ns) + 1


@given(row_sizes, capacities)
@settings(max_examples=60, deadline=None)
def test_round_count_at_least_ideal(sizes, capacity):
    """No schedule beats the perfect-packing lower bound."""
    total = int(sizes.sum())
    if total == 0:
        return
    ideal = -(-total // capacity)  # ceil
    for rounds in (
        natural_order_rounds(sizes, capacity),
        largest_filter_first_rounds(sizes, capacity),
    ):
        assert len(rounds) >= ideal


@given(row_sizes, capacities)
@settings(max_examples=40, deadline=None)
def test_identity_order_matches_natural(sizes, capacity):
    explicit = pack_rows_in_order(sizes, capacity, order=range(len(sizes)))
    default = natural_order_rounds(sizes, capacity)
    assert [[(c.row, c.start, c.length) for c in r] for r in explicit] == [
        [(c.row, c.start, c.length) for c in r] for r in default
    ]
