"""Property tests: Benes routing and ART allocation hold for arbitrary
inputs — the fabrics' non-blocking claims as universal statements."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.art_allocation import allocate_virtual_trees, reduce_with_allocation
from repro.noc.benes_routing import apply_routing, route_permutation


@st.composite
def permutations(draw):
    size = draw(st.sampled_from([4, 8, 16, 32]))
    seed = draw(st.integers(0, 2**16))
    perm = list(range(size))
    np.random.default_rng(seed).shuffle(perm)
    return [int(p) for p in perm]


@given(permutations())
@settings(max_examples=100, deadline=None)
def test_any_permutation_routes(perm):
    routing = route_permutation(perm)
    outputs = apply_routing(routing, list(range(len(perm))))
    for source, destination in enumerate(perm):
        assert outputs[destination] == source


@given(permutations())
@settings(max_examples=60, deadline=None)
def test_switch_count_is_topology_constant(perm):
    import math

    n = len(perm)
    stages = 2 * int(math.log2(n)) - 1
    assert route_permutation(perm).num_switch_settings == (n // 2) * stages


@st.composite
def partitions(draw):
    num_leaves = draw(st.sampled_from([16, 64, 256]))
    sizes = []
    total = 0
    while True:
        size = draw(st.integers(1, max(1, num_leaves // 4)))
        if total + size > num_leaves:
            break
        sizes.append(size)
        total += size
        if draw(st.booleans()) and sizes:
            break
    if not sizes:
        sizes = [1]
    return sizes, num_leaves


@given(partitions())
@settings(max_examples=100, deadline=None)
def test_any_partition_embeds_non_blocking(case):
    sizes, num_leaves = case
    # allocate_virtual_trees raises if any physical adder is shared or a
    # cluster exceeds the block bound — constructing it IS the assertion
    trees = allocate_virtual_trees(sizes, num_leaves)
    assert len(trees) == len(sizes)


@given(partitions(), st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_embedded_reduction_is_exact(case, seed):
    sizes, num_leaves = case
    trees = allocate_virtual_trees(sizes, num_leaves)
    values = np.random.default_rng(seed).standard_normal(num_leaves)
    psums = reduce_with_allocation(trees, values)
    cursor = 0
    for size, psum in zip(sizes, psums):
        assert abs(psum - values[cursor : cursor + size].sum()) < 1e-6
        cursor += size
