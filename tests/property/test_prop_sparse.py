"""Property tests: sparse format round-trips and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensors.sparse import from_dense, to_dense


def sparse_matrices(max_rows=8, max_cols=12):
    shapes = st.tuples(
        st.integers(1, max_rows), st.integers(1, max_cols)
    )
    return shapes.flatmap(
        lambda shape: arrays(
            np.float32,
            shape,
            elements=st.sampled_from([0.0, 0.0, 0.0, 1.5, -2.25, 3.0]),
        )
    )


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_bitmap_round_trip(dense):
    assert np.array_equal(to_dense(from_dense(dense, "bitmap")), dense)


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_csr_round_trip(dense):
    assert np.array_equal(to_dense(from_dense(dense, "csr")), dense)


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_formats_agree_on_nnz_and_rows(dense):
    bitmap = from_dense(dense, "bitmap")
    csr = from_dense(dense, "csr")
    assert bitmap.nnz == csr.nnz == np.count_nonzero(dense)
    assert np.array_equal(bitmap.row_nnz(), csr.row_nnz())


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_row_nnz_sums_to_nnz(dense):
    csr = from_dense(dense, "csr")
    assert csr.row_nnz().sum() == csr.nnz


@given(sparse_matrices())
@settings(max_examples=40, deadline=None)
def test_csr_rows_sorted_and_valid(dense):
    csr = from_dense(dense, "csr")
    for i in range(dense.shape[0]):
        cols, vals = csr.row(i)
        assert np.all(np.diff(cols) > 0)  # strictly increasing columns
        assert np.all(vals != 0)
