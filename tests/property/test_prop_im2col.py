"""Property tests: im2col lowering agrees with direct convolution."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import functional as F
from repro.tensors.im2col import col2im_output, im2col


@st.composite
def conv_cases(draw):
    n = draw(st.integers(1, 2))
    c = draw(st.integers(1, 4))
    k = draw(st.integers(1, 4))
    r = draw(st.integers(1, 3))
    stride = draw(st.integers(1, 2))
    padding = draw(st.integers(0, 1))
    extra = draw(st.integers(0, 4))
    x = r + stride * extra  # guarantees a valid output size
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    activations = rng.standard_normal((n, c, x + 2, x)).astype(np.float32)
    weights = rng.standard_normal((k, c, r, r)).astype(np.float32)
    return activations, weights, stride, padding


@given(conv_cases())
@settings(max_examples=60, deadline=None)
def test_im2col_gemm_equals_direct_conv(case):
    activations, weights, stride, padding = case
    n, c, h, w = activations.shape
    k, _, r, _ = weights.shape
    xo = (h + 2 * padding - r) // stride + 1
    yo = (w + 2 * padding - r) // stride + 1

    cols = im2col(activations, r, r, stride, padding)
    lowered = col2im_output(weights.reshape(k, -1) @ cols, n, xo, yo)
    direct = F.conv2d(activations, weights, stride=stride, padding=padding)
    assert np.allclose(lowered, direct, atol=1e-3)


@given(conv_cases())
@settings(max_examples=40, deadline=None)
def test_im2col_column_count(case):
    activations, weights, stride, padding = case
    n, c, h, w = activations.shape
    r = weights.shape[2]
    xo = (h + 2 * padding - r) // stride + 1
    yo = (w + 2 * padding - r) // stride + 1
    cols = im2col(activations, r, r, stride, padding)
    assert cols.shape == (c * r * r, n * xo * yo)
