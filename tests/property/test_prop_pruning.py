"""Property tests: magnitude pruning invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensors.pruning import magnitude_prune, sparsity_of


@st.composite
def weight_tensors(draw):
    size = draw(st.integers(1, 400))
    seed = draw(st.integers(0, 2**16))
    return np.random.default_rng(seed).standard_normal(size).astype(np.float32)


sparsities = st.floats(0.0, 0.95, allow_nan=False)


@given(weight_tensors(), sparsities)
@settings(max_examples=80, deadline=None)
def test_achieves_at_least_target(weights, sparsity):
    pruned = magnitude_prune(weights, sparsity)
    expected_zeros = int(round(weights.size * sparsity))
    assert np.count_nonzero(pruned == 0) >= expected_zeros


@given(weight_tensors(), sparsities)
@settings(max_examples=80, deadline=None)
def test_survivors_unchanged(weights, sparsity):
    pruned = magnitude_prune(weights, sparsity)
    mask = pruned != 0
    assert np.array_equal(pruned[mask], weights[mask])


@given(weight_tensors(), sparsities)
@settings(max_examples=80, deadline=None)
def test_survivors_dominate_pruned(weights, sparsity):
    """No kept weight has smaller magnitude than any pruned weight."""
    pruned = magnitude_prune(weights, sparsity)
    kept = np.abs(pruned[pruned != 0])
    removed = np.abs(weights[pruned == 0])
    if kept.size and removed.size:
        assert kept.min() >= removed.max()


@given(weight_tensors())
@settings(max_examples=40, deadline=None)
def test_monotone_in_sparsity(weights):
    low = sparsity_of(magnitude_prune(weights, 0.3))
    high = sparsity_of(magnitude_prune(weights, 0.8))
    assert high >= low
