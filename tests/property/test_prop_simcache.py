"""Property tests: SimCache key canonicalization and invalidation.

The cache is only sound if its keys capture *exactly* the timing-relevant
inputs: layer geometry, mapping parameters, hardware configuration and
the payload schema version — and nothing else (names, operand values).
These properties pin both directions, plus the no-stale-hits guarantee
when the schema version or the hardware config hash moves.
"""

import json
import string

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TileConfig, maeri_like, tpu_like
from repro.parallel import (
    CACHE_SCHEMA_VERSION,
    LayerWorkload,
    SimCache,
    canonical_key,
    canonical_key_source,
)
from repro.parallel import cache as cache_module

dims = st.integers(1, 24)
names = st.text(alphabet=string.ascii_lowercase + "-_", min_size=1,
                max_size=12)
seeds = st.integers(0, 2**31 - 1)
tiles = st.one_of(
    st.none(),
    st.builds(TileConfig, t_k=st.integers(1, 4), t_n=st.integers(1, 4)),
)
maeri_sizes = st.sampled_from([16, 32, 64])
configs = st.one_of(
    st.builds(maeri_like, num_ms=maeri_sizes,
              bandwidth=st.sampled_from([4, 8, 16])),
    st.builds(tpu_like, num_pes=st.sampled_from([16, 64])),
)


def _gemm(m, k, n, name, seed, tile):
    rng = np.random.default_rng(seed)
    return LayerWorkload(
        index=0, kind="gemm", name=name, params={"tile": tile},
        operands={
            "weights": rng.standard_normal((m, k)).astype(np.float32),
            "inputs": rng.standard_normal((k, n)).astype(np.float32),
        },
    )


@given(dims, dims, dims, names, names, seeds, seeds, tiles, configs)
@settings(max_examples=60, deadline=None)
def test_key_ignores_names_and_operand_values(
    m, k, n, name_a, name_b, seed_a, seed_b, tile, config
):
    a = _gemm(m, k, n, name_a, seed_a, tile)
    b = _gemm(m, k, n, name_b, seed_b, tile)
    assert canonical_key(a, config) == canonical_key(b, config)


@given(dims, dims, dims, names, seeds, tiles, configs)
@settings(max_examples=60, deadline=None)
def test_key_source_is_canonical_and_value_free(m, k, n, name, seed, tile,
                                                config):
    workload = _gemm(m, k, n, name, seed, tile)
    source = canonical_key_source(workload, config)
    record = json.loads(source)
    # canonical: re-serializing reproduces the digested text exactly
    assert json.dumps(record, sort_keys=True) == source
    assert record["schema"] == CACHE_SCHEMA_VERSION
    # value-free: only shapes/dtypes of the operands appear
    assert set(record["operands"]) == {"weights", "inputs"}
    for operand in record["operands"].values():
        assert set(operand) == {"shape", "dtype"}
    # name-free: renaming the layer leaves the key material untouched
    # (a substring check would false-fail when the generated name
    # collides with a structural key like "operands" or "schema")
    renamed = _gemm(m, k, n, name + "-renamed", seed, tile)
    assert canonical_key_source(renamed, config) == source
    key = canonical_key(workload, config)
    assert len(key) == 64 and set(key) <= set("0123456789abcdef")


@given(st.tuples(dims, dims, dims), st.tuples(dims, dims, dims),
       names, seeds, configs)
@settings(max_examples=60, deadline=None)
def test_distinct_shapes_get_distinct_keys(shape_a, shape_b, name, seed,
                                           config):
    a = _gemm(*shape_a, name, seed, None)
    b = _gemm(*shape_b, name, seed, None)
    if shape_a == shape_b:
        assert canonical_key(a, config) == canonical_key(b, config)
    else:
        assert canonical_key(a, config) != canonical_key(b, config)


@given(dims, dims, dims, names, seeds, maeri_sizes, maeri_sizes)
@settings(max_examples=40, deadline=None)
def test_config_change_never_reuses_entries(m, k, n, name, seed, ms_a, ms_b):
    config_a = maeri_like(num_ms=ms_a, bandwidth=4)
    config_b = maeri_like(num_ms=ms_b, bandwidth=4)
    workload = _gemm(m, k, n, name, seed, None)
    cache = SimCache()
    key_a = SimCache.key(workload, config_a)
    cache.put(key_a, {"cycles": 1}, config_a)
    key_b = SimCache.key(workload, config_b)
    if ms_a == ms_b:
        assert key_b == key_a
        assert cache.get(key_b, config_b) == {"cycles": 1}
    else:
        # the provenance config hash is in the key: a reconfigured
        # machine can never alias onto the old machine's entries
        assert key_b != key_a
        assert cache.get(key_b, config_b) is None


@given(dims, dims, dims, names, seeds, configs)
@settings(max_examples=40, deadline=None)
def test_schema_bump_never_hits_stale_entries(m, k, n, name, seed, config):
    workload = _gemm(m, k, n, name, seed, None)
    cache = SimCache()
    old_key = SimCache.key(workload, config)
    cache.put(old_key, {"cycles": 1}, config)
    original = cache_module.CACHE_SCHEMA_VERSION
    cache_module.CACHE_SCHEMA_VERSION = original + 1
    try:
        new_key = SimCache.key(workload, config)
        assert new_key != old_key
        assert cache.get(new_key, config) is None
    finally:
        cache_module.CACHE_SCHEMA_VERSION = original
