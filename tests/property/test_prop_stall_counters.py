"""Property tests: the counter universe is closed in both directions.

``KNOWN_COUNTERS`` claims to be *the* universe of activity names: the
lint pass rejects literals missing from it, and the energy model prices
from it. That claim has two failure modes — an engine inventing a name
behind the registry's back (a phantom that prices at zero energy), and
a registered name nothing ever increments (dead weight that lint keeps
alive). Both are pinned here against the real simulator:

- a full zoo × {tpu, maeri, sigma} sweep **with stall attribution and
  the fabric observatory on** must increment only registered names
  (counters, ledger buckets mapped through ``BUCKET_COUNTERS``, fabric
  tiers through ``FABRIC_COUNTERS``/``FIFO_OCCUPANCY_COUNTERS``), and —
  together with one targeted narrow-RN workload for
  ``fifo_backpressure`` — must reach *every* registered name;
- Hypothesis-drawn GEMMs on sampled presets must stay inside the
  universe and keep ledger conservation, whatever the shape.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import maeri_like, sigma_like, tpu_like
from repro.engine.accelerator import Accelerator
from repro.engine.stats import KNOWN_COUNTERS
from repro.experiments.fig5 import architecture_config
from repro.frontend.models import MODEL_NAMES, build_model, model_input
from repro.frontend.simulated import detach_context, simulate
from repro.observability import Observability
from repro.observability.fabric import (
    FABRIC_COUNTERS,
    FIFO_OCCUPANCY_COUNTERS,
)
from repro.observability.stalls import (
    BUCKET_COUNTERS,
    STALL_BUCKETS,
    validate_ledger,
)

ARCHS = ("tpu", "maeri", "sigma")


def _observed_names(report):
    """Counter names plus ledger/fabric payloads as registered names."""
    names = set()
    for layer in report.layers:
        names |= set(layer.counters.as_dict())
        for buckets in layer.extra.get("stalls", {}).values():
            names |= {BUCKET_COUNTERS[bucket] for bucket in buckets}
        fabric = layer.extra.get("fabric") or {}
        names |= {
            FABRIC_COUNTERS[tier] for tier in fabric.get("tiers", {})
        }
        if fabric.get("fifos"):
            # every FIFO cell carries depth windows and a high-watermark
            names |= set(FIFO_OCCUPANCY_COUNTERS.values())
    return names


@pytest.fixture(scope="module")
def zoo_observed():
    """Every name incremented across the attributed zoo sweep."""
    observed = set()
    for arch in ARCHS:
        for model_name in MODEL_NAMES:
            obs = Observability.create(stalls=True, fabric=True)
            acc = Accelerator(architecture_config(arch), observability=obs)
            model = build_model(model_name, seed=0)
            x = model_input(model_name, batch=1, seed=1)
            simulate(model, acc)
            model(x)
            detach_context(model)
            observed |= _observed_names(acc.report)
    # fifo_backpressure needs a deliberately starved output drain: the
    # Table IV presets are balanced enough that no zoo layer is bound by
    # the psum FIFO, which is itself worth knowing
    rng = np.random.default_rng(7)
    acc = Accelerator(
        maeri_like(num_ms=16, bandwidth=8, rn_bandwidth=1),
        observability=Observability.create(stalls=True),
    )
    acc.run_gemm(
        rng.standard_normal((16, 4)).astype(np.float32),
        rng.standard_normal((4, 16)).astype(np.float32),
    )
    observed |= _observed_names(acc.report)
    return observed


def test_sweep_increments_only_registered_names(zoo_observed):
    phantom = zoo_observed - set(KNOWN_COUNTERS)
    assert not phantom, f"unregistered counter(s) incremented: {sorted(phantom)}"


def test_every_registered_name_is_reachable(zoo_observed):
    dead = set(KNOWN_COUNTERS) - zoo_observed
    assert not dead, f"registered but never incremented: {sorted(dead)}"


# ---------------------------------------------------------------------------
# Hypothesis: arbitrary GEMM shapes stay inside the universe, conserved
# ---------------------------------------------------------------------------

_PRESETS = {
    "tpu16": lambda: tpu_like(num_pes=16),
    "maeri16": lambda: maeri_like(num_ms=16, bandwidth=8),
    "maeri16-rn1": lambda: maeri_like(num_ms=16, bandwidth=8, rn_bandwidth=1),
    "sigma16": lambda: sigma_like(num_ms=16, bandwidth=8),
}


@st.composite
def gemm_cases(draw):
    m = draw(st.integers(1, 48))
    k = draw(st.integers(1, 32))
    n = draw(st.integers(1, 48))
    preset = draw(st.sampled_from(sorted(_PRESETS)))
    seed = draw(st.integers(0, 2**16))
    return m, k, n, preset, seed


@given(gemm_cases())
@settings(max_examples=30, deadline=None)
def test_random_gemm_universe_and_conservation(case):
    m, k, n, preset, seed = case
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    acc = Accelerator(
        _PRESETS[preset](), observability=Observability.create(stalls=True)
    )
    acc.run_gemm(a, b)
    (layer,) = acc.report.layers
    assert set(layer.counters.as_dict()) <= set(KNOWN_COUNTERS)
    stalls = layer.extra["stalls"]
    assert not validate_ledger(stalls, layer.cycles)
    for buckets in stalls.values():
        assert set(buckets) <= set(STALL_BUCKETS)
