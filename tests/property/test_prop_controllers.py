"""Property tests: controller timing invariants over random workloads."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytical.sigma_model import uniform_sparse_matrix
from repro.config import ConvLayerSpec, maeri_like, sigma_like
from repro.engine.accelerator import Accelerator


@st.composite
def small_layers(draw):
    r = draw(st.integers(1, 3))
    c = draw(st.integers(1, 8))
    k = draw(st.integers(1, 8))
    x = r + draw(st.integers(0, 6))
    y = r + draw(st.integers(0, 6))
    return ConvLayerSpec(r=r, s=r, c=c, k=k, x=x, y=y)


@given(small_layers(), st.sampled_from([4, 8, 16, 32]))
@settings(max_examples=50, deadline=None)
def test_dense_cycles_lower_bound(layer, bandwidth):
    """Cycles can never beat MACs / multipliers (physical throughput)."""
    acc = Accelerator(maeri_like(32, bandwidth))
    tile = acc.mapper.tile_for_conv(layer)
    result = acc.dense_controller.run_conv(layer, tile)
    assert result.cycles >= layer.num_macs / 32
    assert result.macs == layer.num_macs
    assert 0 < result.multiplier_utilization <= 1


@given(small_layers())
@settings(max_examples=30, deadline=None)
def test_dense_bandwidth_monotonicity(layer):
    acc_lo = Accelerator(maeri_like(32, 2))
    acc_hi = Accelerator(maeri_like(32, 32))
    tile_lo = acc_lo.mapper.tile_for_conv(layer)
    tile_hi = acc_hi.mapper.tile_for_conv(layer)
    lo = acc_lo.dense_controller.run_conv(layer, tile_lo).cycles
    hi = acc_hi.dense_controller.run_conv(layer, tile_hi).cycles
    assert lo >= hi


@given(
    st.integers(1, 16), st.integers(2, 32), st.integers(1, 16),
    st.floats(0.0, 0.9), st.integers(0, 100),
)
@settings(max_examples=50, deadline=None)
def test_sparse_cycles_lower_bound(m, k, n, sparsity, seed):
    matrix = uniform_sparse_matrix(m, k, sparsity, seed=seed)
    acc = Accelerator(sigma_like(32, 16))
    result = acc.sparse_controller.run_spmm(matrix, n)
    nnz = np.count_nonzero(matrix)
    assert result.effective_macs == nnz * n
    # each round streams at least one cycle per column
    assert result.cycles >= result.rounds * n if nnz else True
    assert 0 <= result.mapping_utilization <= 1


@given(st.integers(1, 12), st.integers(2, 24), st.integers(1, 8),
       st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_sparse_never_slower_than_its_dense_self(m, k, n, seed):
    dense = uniform_sparse_matrix(m, k, 0.0, seed=seed)
    sparse = uniform_sparse_matrix(m, k, 0.7, seed=seed)
    acc_d = Accelerator(sigma_like(32, 16))
    acc_s = Accelerator(sigma_like(32, 16))
    dense_cycles = acc_d.sparse_controller.run_spmm(dense, n).cycles
    sparse_cycles = acc_s.sparse_controller.run_spmm(sparse, n).cycles
    assert sparse_cycles <= dense_cycles
